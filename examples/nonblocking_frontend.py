"""Exploring the paper's §6 future work: a non-blocking front end.

Run:  python examples/nonblocking_frontend.py [benchmark]

The paper's Figure 2 shows Resume losing its advantage at long miss
latencies: a single wrong-path fill monopolises the one memory channel
and the one resume buffer.  The paper closes by asking whether
"non-blocking I-caches and pipelining miss requests" would fix that.
This example sweeps both knobs and answers: buffers alone make things
*worse* (more wrong-path traffic on the same serial channel); buffers
plus a pipelined channel restore — and extend — Resume's advantage.
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import FetchPolicy, SimConfig, SimulationRunner
from repro.report import Table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    runner = SimulationRunner(trace_length=100_000)
    base = replace(
        SimConfig(policy=FetchPolicy.RESUME), miss_penalty_cycles=20
    )

    table = Table(
        headers=["Configuration", "ISPI", "bus", "wrong fills", "mem"],
        title=f"{benchmark} @ 20-cycle penalty: towards a non-blocking "
        "front end",
        float_format="{:.3f}",
    )
    configs = [
        ("Pessimistic (reference)",
         replace(base, policy=FetchPolicy.PESSIMISTIC)),
        ("Resume, 1 buffer, serial bus (the paper)", base),
        ("Resume, 2 buffers, serial bus", replace(base, fill_buffers=2)),
        ("Resume, 2 buffers, pipelined bus",
         replace(base, fill_buffers=2, bus_interleave_cycles=2)),
        ("Resume, 4 buffers, pipelined bus",
         replace(base, fill_buffers=4, bus_interleave_cycles=2)),
        ("Resume, 4 buffers, pipelined + prefetch",
         replace(base, fill_buffers=4, bus_interleave_cycles=2,
                 prefetch=True)),
    ]
    for label, config in configs:
        result = runner.run(benchmark, config)
        table.add_row(
            label,
            result.total_ispi,
            result.ispi("bus"),
            result.counters.wrong_fills,
            result.counters.memory_accesses,
        )
    print(table.render())


if __name__ == "__main__":
    main()
