"""Free-form parameter sweeps with the Sweep utility.

Run:  python examples/custom_sweep.py [benchmark]

Explores a configuration plane the paper never ran: fetch policy x miss
penalty, locating the latency at which the Resume/Pessimistic crossover
happens for one benchmark — the quantitative version of the paper's
"policy of choice depends on the latency" conclusion.
"""

from __future__ import annotations

import sys

from repro import FetchPolicy, SimConfig, SimulationRunner
from repro.experiments.sweeps import Sweep


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "li"
    runner = SimulationRunner(trace_length=100_000)

    sweep = Sweep(
        base=SimConfig(),
        axes={
            "policy": [FetchPolicy.RESUME, FetchPolicy.PESSIMISTIC],
            "miss_penalty_cycles": [2, 5, 8, 12, 16, 20, 30],
        },
        metrics=("total_ispi", "memory_accesses"),
    )
    points = sweep.run(runner, benchmarks=[benchmark])
    print(sweep.table(points, metric="total_ispi").render())

    # Locate the crossover.
    by_penalty: dict[int, dict[str, float]] = {}
    for point in points:
        penalty = point.parameter("miss_penalty_cycles")
        policy = point.parameter("policy").label
        by_penalty.setdefault(penalty, {})[policy] = point.metrics["total_ispi"]
    crossover = None
    for penalty in sorted(by_penalty):
        row = by_penalty[penalty]
        if row["Pess"] < row["Res"]:
            crossover = penalty
            break
    print()
    if crossover is None:
        print(f"{benchmark}: Resume wins at every tested latency.")
    else:
        print(f"{benchmark}: Pessimistic overtakes Resume at a miss "
              f"penalty of ~{crossover} cycles — the paper's two regimes, "
              "located.")


if __name__ == "__main__":
    main()
