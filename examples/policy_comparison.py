"""Policy comparison: the paper's Figure 1 for any benchmark.

Run:  python examples/policy_comparison.py [benchmark] [miss_penalty_cycles]

Simulates all five I-cache fetch policies (Oracle, Optimistic, Resume,
Pessimistic, Decode) and renders a stacked ISPI-component bar chart, at
either the paper's small (5-cycle, default) or large (20-cycle) miss
penalty — switching between them reproduces the Figure 1 -> Figure 2
flip where the conservative policies catch up.
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import ALL_POLICIES, SimConfig, SimulationRunner
from repro.report import Table, breakdown_chart


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "groff"
    penalty = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    runner = SimulationRunner(trace_length=100_000)
    config = replace(SimConfig(), miss_penalty_cycles=penalty)

    table = Table(
        headers=["Policy", "ISPI", "miss%", "wrong fills", "mem accesses"],
        title=f"{benchmark} @ {penalty}-cycle miss penalty",
        float_format="{:.3f}",
    )
    bars = []
    for policy in ALL_POLICIES:
        result = runner.run(benchmark, config.with_policy(policy))
        table.add_row(
            policy.label,
            result.total_ispi,
            round(result.miss_rate_percent, 2),
            result.counters.wrong_fills,
            result.counters.memory_accesses,
        )
        bars.append((policy.label, result.ispi_breakdown()))

    print(table.render())
    print()
    chart = breakdown_chart(
        f"ISPI breakdown: {benchmark} ({penalty}-cycle penalty)",
        [(benchmark, bars)],
    )
    print(chart.render())


if __name__ == "__main__":
    main()
