"""Speculation-depth study (the paper's Table 5, interactively).

Run:  python examples/speculation_depth.py [benchmark ...]

Sweeps the number of unresolved conditional branches the front end may
carry (1, 2, 4, 8 — one past the paper's range) and shows how the
branch_full stall component trades against deeper wrong paths.
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import FetchPolicy, SimConfig, SimulationRunner
from repro.report import Table

DEPTHS = (1, 2, 4, 8)


def main() -> None:
    benchmarks = sys.argv[1:] or ["doduc", "gcc", "groff"]
    runner = SimulationRunner(trace_length=100_000)

    for benchmark in benchmarks:
        table = Table(
            headers=["Depth", "ISPI", "branch_full", "branch", "wrong_icache"],
            title=f"{benchmark}: Resume policy vs speculation depth",
            float_format="{:.3f}",
        )
        for depth in DEPTHS:
            config = replace(
                SimConfig(policy=FetchPolicy.RESUME), max_unresolved=depth
            )
            result = runner.run(benchmark, config)
            breakdown = result.ispi_breakdown()
            table.add_row(
                depth,
                result.total_ispi,
                breakdown["branch_full"],
                breakdown["branch"],
                breakdown["wrong_icache"],
            )
        print(table.render())
        print()
    print("The paper's §5.2.2 trade-off: shallow speculation stalls on the")
    print("unresolved-branch limit (branch_full), deep speculation trades")
    print("that for more wrong-path fetch work — and wins.")


if __name__ == "__main__":
    main()
