"""Building a custom workload with the public program-construction API.

Run:  python examples/custom_workload.py

Constructs a small interpreter-like program by hand — a dispatch loop over
"opcode handlers" with a biased guard and a shared helper — then traces it
and compares the five fetch policies on a deliberately tiny (2K) I-cache
so the policy effects are visible even for a small program.
"""

from __future__ import annotations

from dataclasses import replace

from repro import (
    ALL_POLICIES,
    CacheConfig,
    ProgramBuilder,
    SimConfig,
    generate_trace,
    simulate,
)
from repro.program import (
    BiasedBehaviour,
    IndirectBehaviour,
    LoopBehaviour,
    PatternBehaviour,
)
from repro.report import Table


#: Opcode handlers: (name, body size, calls the shared helper?).  Twelve
#: handlers of 24-56 instructions put the interpreter's working set well
#: past a 2K I-cache, so the dispatch loop continually misses.
_OPCODES = [
    (f"op{i}", 24 + (i * 7) % 33, i % 3 == 0) for i in range(12)
]


def build_interpreter():
    builder = ProgramBuilder("tiny-interp")

    main = builder.function("main")
    main.block("init", 6)
    main.cond(
        "loop", 4, target="loop_body",
        behaviour=LoopBehaviour(mean_trips=64, jitter=8),
    )
    main.jump("restart", 2, target="init")
    main.block("loop_body", 3)
    # Dispatch: two indirect call sites, each choosing among six handlers
    # (models a split opcode table).
    names = [name for name, _, _ in _OPCODES]
    main.icall(
        "dispatch_lo", 2, callees=names[:6],
        behaviour=IndirectBehaviour(6, repeat_prob=0.3),
    )
    main.block("between", 2)
    main.icall(
        "dispatch_hi", 2, callees=names[6:],
        behaviour=IndirectBehaviour(6, repeat_prob=0.3),
    )
    main.jump("back", 1, target="loop")

    # A shared helper, called from several handlers (return-target churn).
    helper = builder.function("helper")
    helper.cond("h_guard", 5, target="h_done", behaviour=BiasedBehaviour(0.8))
    helper.block("h_slow", 9)
    helper.block("h_done", 2)
    helper.ret("h_ret", 1)

    for name, body, call_helper in _OPCODES:
        handler = builder.function(name)
        handler.cond(
            f"{name}_fast", body, target=f"{name}_out",
            behaviour=PatternBehaviour((True, True, True, False)),
        )
        handler.block(f"{name}_slow", body // 2)
        if call_helper:
            handler.call(f"{name}_help", 1, callee="helper")
        handler.block(f"{name}_out", 2)
        handler.ret(f"{name}_ret", 1)

    return builder.build()


def main() -> None:
    program = build_interpreter()
    print(f"built {program!r}, footprint {program.footprint_bytes} bytes")
    trace = generate_trace(program, 50_000, seed=2026)
    print(f"traced {trace.n_instructions} instructions "
          f"({trace.n_blocks} basic blocks)\n")

    config = replace(
        SimConfig(),
        cache=CacheConfig(size_bytes=2048),  # tiny cache: visible effects
        miss_penalty_cycles=10,
    )
    table = Table(
        headers=["Policy", "ISPI", "rt_icache", "wrong_icache",
                 "bus", "force_resolve"],
        title="tiny-interp on a 2K I-cache, 10-cycle penalty",
        float_format="{:.3f}",
    )
    for policy in ALL_POLICIES:
        result = simulate(
            program, trace, config.with_policy(policy), warmup=10_000
        )
        breakdown = result.ispi_breakdown()
        table.add_row(
            policy.label,
            result.total_ispi,
            breakdown["rt_icache"],
            breakdown["wrong_icache"],
            breakdown["bus"],
            breakdown["force_resolve"],
        )
    print(table.render())


if __name__ == "__main__":
    main()
