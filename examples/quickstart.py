"""Quickstart: simulate one benchmark under two fetch policies.

Run:  python examples/quickstart.py [benchmark]

Builds the synthetic 'gcc' workload (or another of the paper's 13
benchmarks), generates a dynamic trace, and compares the Resume and
Pessimistic I-cache fetch policies on the paper's baseline front end.
"""

from __future__ import annotations

import sys

from repro import FetchPolicy, SimulationRunner, paper_baseline


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    runner = SimulationRunner(trace_length=100_000)
    print(f"benchmark: {benchmark}")
    print(f"trace: {runner.trace_length} instructions "
          f"({runner.warmup} warmup)\n")

    for policy in (FetchPolicy.RESUME, FetchPolicy.PESSIMISTIC):
        result = runner.run(benchmark, paper_baseline(policy))
        print(f"policy = {policy.label}")
        print(f"  total penalty ISPI : {result.total_ispi:.3f}")
        print(f"  I-cache miss rate  : {result.miss_rate_percent:.2f}%")
        print(f"  memory accesses    : {result.counters.memory_accesses}")
        print("  breakdown:")
        for component, value in result.ispi_breakdown().items():
            if value:
                print(f"    {component:<14} {value:.3f}")
        print()

    print("Expected (the paper's headline at a 5-cycle miss penalty):")
    print("Resume beats Pessimistic — it keeps running while wrong-path")
    print("fills complete in the resume buffer, instead of taxing every")
    print("right-path miss with a wait for branch resolution.")


if __name__ == "__main__":
    main()
