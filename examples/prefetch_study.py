"""Prefetch study: when does next-line prefetching stop paying off?

Run:  python examples/prefetch_study.py [benchmark]

Sweeps the I-cache miss penalty and compares Oracle / Resume / Pessimistic
with and without the paper's "maximal fetchahead, first-time-referenced"
next-line prefetcher.  Reproduces the §5.3 conclusion: prefetching helps
at small latencies and turns harmful at large ones, while always costing
substantial extra memory traffic.
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import FetchPolicy, SimConfig, SimulationRunner
from repro.report import Table

POLICIES = (FetchPolicy.ORACLE, FetchPolicy.RESUME, FetchPolicy.PESSIMISTIC)
PENALTIES = (2, 5, 10, 20, 40)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    runner = SimulationRunner(trace_length=100_000)

    table = Table(
        headers=["Penalty(cyc)"]
        + [p.label for p in POLICIES]
        + [f"{p.label}+Pref" for p in POLICIES]
        + ["TrafficRatio(Res+Pref)"],
        title=f"Prefetch study on {benchmark} (total penalty ISPI)",
        float_format="{:.3f}",
    )
    for penalty in PENALTIES:
        base = replace(SimConfig(), miss_penalty_cycles=penalty)
        plain = {
            p: runner.run(benchmark, base.with_policy(p)) for p in POLICIES
        }
        pref = {
            p: runner.run(
                benchmark, replace(base.with_policy(p), prefetch=True)
            )
            for p in POLICIES
        }
        denominator = plain[FetchPolicy.ORACLE].counters.memory_accesses
        traffic = (
            pref[FetchPolicy.RESUME].counters.memory_accesses / denominator
        )
        table.add_row(
            penalty,
            *(plain[p].total_ispi for p in POLICIES),
            *(pref[p].total_ispi for p in POLICIES),
            traffic,
        )
    print(table.render())
    print()
    print("Reading the table: at small penalties every +Pref column beats")
    print("its plain column; as the penalty grows the advantage shrinks or")
    print("reverses (prefetches monopolise the channel right when demand")
    print("misses need it), while the traffic ratio stays well above 1.")


if __name__ == "__main__":
    main()
