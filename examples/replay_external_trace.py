"""Replaying an external basic-block trace through the fetch engine.

Run:  python examples/replay_external_trace.py

The paper replayed ATOM traces of real Alpha binaries.  This example
shows the equivalent workflow for this library: export a trace in the
human-readable interchange format (one basic block per line), inspect
it, and replay it through the engine.  Any external tracer that can
produce this format can drive the simulator the same way.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import FetchPolicy, SimConfig, build_workload, generate_trace, simulate
from repro.trace.text_format import load_text_trace, save_text_trace


def main() -> None:
    # 1. Produce a trace (stand-in for an external tracer's output).
    program = build_workload("li")
    trace = generate_trace(program, 50_000, seed=42)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "li.trace"
        save_text_trace(trace, path)
        size_kb = path.stat().st_size / 1024
        print(f"exported {trace.n_blocks} blocks "
              f"({trace.n_instructions} instructions) to {path.name}, "
              f"{size_kb:.0f} KB")

        # 2. Show the format.
        print("\nfirst lines of the interchange format:")
        for line in path.read_text().splitlines()[:8]:
            print(f"  {line}")

        # 3. Reload and replay.
        replayed = load_text_trace(path)

    print("\nreplaying through the engine (Resume vs Pessimistic):")
    for policy in (FetchPolicy.RESUME, FetchPolicy.PESSIMISTIC):
        result = simulate(
            program, replayed, SimConfig(policy=policy), warmup=10_000
        )
        print(f"  {policy.label:<5} ISPI={result.total_ispi:.3f} "
              f"miss={result.miss_rate_percent:.2f}%")

    print("\nNote: replaying still needs the program image (wrong-path")
    print("fetch walks the static code); an external trace must come with")
    print("its code image, just as ATOM traces came from real binaries.")


if __name__ == "__main__":
    main()
