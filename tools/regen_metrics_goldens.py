"""Regenerate the golden metrics snapshots under tests/goldens/.

One small, fixed-seed, warmup-free run per fetch policy; the deterministic
``MetricsRegistry.as_dict`` snapshot is written as pretty-printed JSON.
The regression test (tests/core/test_golden_metrics.py) replays the same
spec and compares byte-for-byte.

Regenerate (only after an intentional behaviour change) with:

    PYTHONPATH=src python tools/regen_metrics_goldens.py

and review the diff before committing.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.config import ALL_POLICIES, FetchPolicy, SimConfig  # noqa: E402
from repro.core.engine import simulate  # noqa: E402
from repro.core.runner import SimulationRunner  # noqa: E402
from repro.obs import Observer  # noqa: E402

#: The golden run spec.  Warmup must stay 0: the prefetch partition
#: invariant is exact only for warmup-free runs.
BENCHMARK = "li"
TRACE_LENGTH = 8_000
SEED = 42
WARMUP = 0

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "tests", "goldens"
)


def golden_config(policy: FetchPolicy) -> SimConfig:
    """The configuration snapshotted for *policy*."""
    return SimConfig(policy=policy, prefetch=True)


def golden_metrics(policy: FetchPolicy) -> dict:
    """Run the golden spec for *policy* and return the metrics snapshot."""
    runner = SimulationRunner(
        trace_length=TRACE_LENGTH, warmup=WARMUP, seed=SEED
    )
    run = runner.prepared(BENCHMARK)
    observer = Observer()
    simulate(
        run.program,
        run.trace,
        golden_config(policy),
        warmup=WARMUP,
        observer=observer,
    )
    return observer.metrics_dict()


def golden_path(policy: FetchPolicy) -> str:
    return os.path.join(GOLDEN_DIR, f"metrics_{policy.name.lower()}.json")


def main() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for policy in ALL_POLICIES:
        path = golden_path(policy)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(golden_metrics(policy), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {os.path.relpath(path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
