"""Regenerate the golden metrics snapshots under tests/goldens/.

One small, fixed-seed, warmup-free run per fetch policy; the deterministic
``MetricsRegistry.as_dict`` snapshot is written as pretty-printed JSON.
The regression test (tests/core/test_golden_metrics.py) replays the same
spec and compares byte-for-byte.

Regenerate (only after an intentional behaviour change) with:

    PYTHONPATH=src python tools/regen_metrics_goldens.py

and review the diff before committing.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.config import ALL_POLICIES, FetchPolicy, SimConfig  # noqa: E402
from repro.core.engine import simulate  # noqa: E402
from repro.core.runner import SimulationRunner  # noqa: E402
from repro.obs import Observer  # noqa: E402

#: The golden run spec.  Warmup must stay 0: the prefetch partition
#: invariant is exact only for warmup-free runs.
BENCHMARK = "li"
TRACE_LENGTH = 8_000
SEED = 42
WARMUP = 0

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "tests", "goldens"
)


def golden_config(policy: FetchPolicy) -> SimConfig:
    """The configuration snapshotted for *policy*."""
    return SimConfig(policy=policy, prefetch=True)


def golden_metrics(policy: FetchPolicy) -> dict:
    """Run the golden spec for *policy* and return the metrics snapshot."""
    runner = SimulationRunner(
        trace_length=TRACE_LENGTH, warmup=WARMUP, seed=SEED
    )
    run = runner.prepared(BENCHMARK)
    observer = Observer()
    simulate(
        run.program,
        run.trace,
        golden_config(policy),
        warmup=WARMUP,
        observer=observer,
    )
    return observer.metrics_dict()


def golden_path(policy: FetchPolicy) -> str:
    return os.path.join(GOLDEN_DIR, f"metrics_{policy.name.lower()}.json")


def _metrics_hash(metrics: dict) -> str:
    canonical = json.dumps(metrics, indent=2, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def parity_config(policy: FetchPolicy) -> SimConfig:
    """The replay-eligible variant of the golden spec for *policy*.

    The golden config itself (timing schedule + prefetch) is
    vector-ineligible by design, so backend parity is asserted on its
    nearest eligible sibling: same policy, architectural branch
    schedule, prefetch off.
    """
    from dataclasses import replace

    return replace(
        golden_config(policy), prefetch=False, branch_schedule="architectural"
    )


def verify_backend_parity() -> None:
    """Assert both engine backends hash-identically on the golden spec.

    Runs the replay-eligible variant of every policy's golden config
    through ``engine_backend="event"`` and ``"vector"`` and compares the
    sha256 of the canonical metrics JSON — the same serialization the
    goldens use, so there is never a second golden set to keep in sync.
    """
    from dataclasses import replace

    from repro.branch.stream import build_stream
    from repro.core.vector import vector_eligible

    runner = SimulationRunner(
        trace_length=TRACE_LENGTH, warmup=WARMUP, seed=SEED
    )
    run = runner.prepared(BENCHMARK)
    for policy in ALL_POLICIES:
        config = parity_config(policy)
        assert vector_eligible(config), (
            f"parity_config({policy.name}) must be vector-eligible"
        )
        stream = build_stream(run.program, run.trace, config)
        hashes = {}
        for backend in ("event", "vector"):
            observer = Observer()
            simulate(
                run.program,
                run.trace,
                replace(config, engine_backend=backend),
                warmup=WARMUP,
                observer=observer,
                stream=stream,
            )
            snapshot = json.loads(json.dumps(observer.metrics_dict()))
            hashes[backend] = _metrics_hash(snapshot)
        if hashes["event"] != hashes["vector"]:
            raise SystemExit(
                f"backend parity violated for {policy.name}: "
                f"event={hashes['event'][:16]} "
                f"vector={hashes['vector'][:16]}"
            )
        print(f"backend parity ok for {policy.name}: {hashes['event'][:16]}")


def main() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    verify_backend_parity()
    for policy in ALL_POLICIES:
        path = golden_path(policy)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(golden_metrics(policy), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {os.path.relpath(path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
