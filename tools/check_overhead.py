"""Null-sink overhead check for the observability layer.

Measures engine throughput (instructions/second) on the gcc workload in
two modes — ``observer=None`` (the uninstrumented fast path) and
``Observer()`` with the default NullSink — and asserts that

* the instrumented-but-disabled mode is within ``--tolerance`` (default
  3%) of the uninstrumented mode, and
* the uninstrumented mode has not regressed more than ``--tolerance``
  against the stored pre-change baseline
  (benchmarks/results/overhead_baseline.json).

Usage::

    PYTHONPATH=src python tools/check_overhead.py
    PYTHONPATH=src python tools/check_overhead.py --update-baseline

The benchmark harness runs this as a subprocess (see
benchmarks/bench_engine_speed.py), so `pytest benchmarks/` enforces the
budget too.  Throughput is best-of-N wall-clock, which is machine
dependent: refresh the baseline with ``--update-baseline`` when moving to
new hardware.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.config import FetchPolicy, SimConfig  # noqa: E402
from repro.core.engine import simulate  # noqa: E402
from repro.obs import Observer  # noqa: E402
from repro.program.workloads import build_workload  # noqa: E402
from repro.trace.generator import generate_trace  # noqa: E402

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..", "benchmarks", "results", "overhead_baseline.json",
)

#: The measured configurations: the cheapest policy and the heaviest one.
CONFIGS = {
    "oracle": SimConfig(policy=FetchPolicy.ORACLE),
    "resume_prefetch": SimConfig(policy=FetchPolicy.RESUME, prefetch=True),
}

TRACE_LENGTH = 100_000
SEED = 3


def _one_rate(program, trace, config, observer) -> float:
    """Instructions/second for a single run."""
    started = time.perf_counter()
    result = simulate(program, trace, config, observer=observer)
    elapsed = time.perf_counter() - started
    return result.counters.instructions / elapsed


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def measure(repeats: int) -> dict[str, dict[str, float]]:
    """Throughput per config, with and without a null-sink observer.

    Bare and null-sink runs are *interleaved* and compared pairwise: the
    reported ratio is the median of per-pair ratios, which cancels the
    machine-wide throughput drift (CPU frequency, co-tenants) that makes
    absolute best-of-N numbers jump by tens of percent between
    invocations.
    """
    program = build_workload("gcc")
    trace = generate_trace(program, TRACE_LENGTH, seed=SEED)
    out: dict[str, dict[str, float]] = {}
    for name, config in CONFIGS.items():
        bare_rates: list[float] = []
        null_rates: list[float] = []
        ratios: list[float] = []
        for _ in range(repeats):
            bare = _one_rate(program, trace, config, None)
            null = _one_rate(program, trace, config, Observer())
            bare_rates.append(bare)
            null_rates.append(null)
            ratios.append(null / bare)
        out[name] = {
            "bare": _median(bare_rates),
            "null_sink": _median(null_rates),
            "ratio": _median(ratios),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.03,
        help="allowed fractional slowdown (default 0.03 = 3%%)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=9,
        help="interleaved bare/null-sink measurement pairs (default 9; "
        "the median pair ratio needs several samples to be stable on "
        "shared machines)",
    )
    parser.add_argument(
        "--baseline-tolerance",
        type=float,
        default=0.20,
        help="allowed fractional slowdown vs the stored absolute baseline "
        "(default 0.20; wall-clock across invocations is far noisier than "
        "the interleaved pair ratio, so this guards only gross regressions)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="store the bare throughput as the new baseline and exit",
    )
    args = parser.parse_args(argv)

    rates = measure(args.repeats)
    failures: list[str] = []

    for name, rate in rates.items():
        ratio = rate["ratio"]
        print(
            f"{name:>16}: bare {rate['bare']:>10.0f} i/s | "
            f"null-sink {rate['null_sink']:>10.0f} i/s | "
            f"median pair ratio {ratio:.4f}"
        )
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{name}: null-sink path is {(1.0 - ratio) * 100:.1f}% slower "
                f"than observer=None (budget {args.tolerance * 100:.0f}%)"
            )

    if args.update_baseline:
        baseline = {name: round(rate["bare"]) for name, rate in rates.items()}
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {baseline}")
        return 0

    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, encoding="utf-8") as handle:
            baseline = json.load(handle)
        for name, reference in baseline.items():
            if name not in rates:
                continue
            ratio = rates[name]["bare"] / reference
            print(f"{name:>16}: vs stored baseline {reference} i/s: {ratio:.4f}")
            if ratio < 1.0 - args.baseline_tolerance:
                failures.append(
                    f"{name}: bare engine is {(1.0 - ratio) * 100:.1f}% slower "
                    f"than the stored baseline ({reference} i/s); if the "
                    "machine changed, refresh with --update-baseline"
                )
    else:
        print(f"no stored baseline at {BASELINE_PATH}; skipping that check")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("overhead check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
