"""Inspect a synthetic workload: structure, profile, and a listing head.

Usage:
    python tools/dump_workload.py gcc
    python tools/dump_workload.py gcc --listing 40
    python tools/dump_workload.py --all
"""

from __future__ import annotations

import argparse

from repro.isa.disasm import format_instruction
from repro.program.reorder import function_heat
from repro.program.workloads import PAPER_REFERENCE, SUITE, build_workload, get_spec
from repro.trace.generator import generate_trace
from repro.trace.stats import compute_stats


def dump(name: str, listing: int, trace_length: int) -> None:
    spec = get_spec(name)
    program = build_workload(name)
    trace = generate_trace(program, trace_length, seed=1995)
    stats = compute_stats(trace)
    ref = PAPER_REFERENCE[name]

    print(f"== {name} ({spec.language}) ==")
    print(spec.description)
    print(f"  static: {program.image.n_instructions} instructions "
          f"({program.footprint_bytes / 1024:.1f} KB), "
          f"{len(program.function_entries)} functions, "
          f"{len(program.behaviours)} behaviour models")
    print(f"  tiers: hot {spec.hot.n_functions}x{spec.hot.function_instrs}, "
          f"warm {spec.warm.n_functions}x{spec.warm.function_instrs}/"
          f"p{spec.warm.period}, "
          f"cold {spec.cold.n_functions}x{spec.cold.function_instrs}/"
          f"p{spec.cold.period}")
    print(f"  dynamic ({stats.n_instructions} instrs): "
          f"{stats.pct_branches:.1f}% branches "
          f"(paper {ref['pct_branches']}%), "
          f"block len {stats.avg_block_length:.1f}, "
          f"taken {stats.taken_fraction:.0%}, "
          f"touched {stats.footprint_bytes / 1024:.1f} KB")
    heat = function_heat(program, trace)
    hottest = sorted(heat.items(), key=lambda kv: -kv[1])[:5]
    total = sum(heat.values())
    print("  hottest functions: " + ", ".join(
        f"{fn} {count / total:.0%}" for fn, count in hottest
    ))
    if listing:
        print(f"  first {listing} instructions:")
        for instr in list(program.image.iter_instructions())[:listing]:
            print(f"    {format_instruction(instr)}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmarks", nargs="*", help="benchmark names")
    parser.add_argument("--all", action="store_true", help="dump the suite")
    parser.add_argument("--listing", type=int, default=0,
                        help="print the first N instructions")
    parser.add_argument("--trace-length", type=int, default=50_000)
    args = parser.parse_args()
    names = list(SUITE) if args.all else (args.benchmarks or ["gcc"])
    for name in names:
        dump(name, args.listing, args.trace_length)


if __name__ == "__main__":
    main()
