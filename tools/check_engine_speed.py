"""Engine hot-loop and stream-replay speed guard.

Re-measures serial engine throughput (same protocol as the trajectory
emitter in ``benchmarks/bench_engine_speed.py``: gcc, 200k instructions,
best-of-N) and fails if any measured configuration is more than
``--tolerance`` (default 10%) slower than the ``serial_ips`` numbers
recorded in ``BENCH_engine.json``.

When the trajectory records a ``stream_replay`` section, the replay
sweep is also re-measured: the warm replayed multi-policy sweep must
stay at least ``--replay-floor`` (default 1.5) times faster than the
live sweep, and must not be more than ``--tolerance`` slower than the
stored warm timing.

When the trajectory records a ``vector_backend`` section, the
vector-vs-event sweep is also re-measured: the vectorized backend must
stay at least ``--vector-floor`` (default 5.0) times faster than the
event loop on perfect-cache cells and at least ``--real-floor``
(default 3.5) times faster on real-cache cells — the miss-path kernels
(batched wrong-path walker, fill-station timeline, miss-run batcher)
carry that floor; ``auto`` routes eligible sweep cells through them.

When the trajectory records a ``static_schedule`` section, the
PolicySchedule seam's bookkeeping is also re-measured: running a static
configuration with interval accounting enabled must cost less than
``--schedule-tolerance`` (default 2%) over the plain static run.

Usage::

    PYTHONPATH=src python tools/check_engine_speed.py
    PYTHONPATH=src python tools/check_engine_speed.py --tolerance 0.2

Refresh the stored numbers by re-emitting the trajectory file::

    PYTHONPATH=src python benchmarks/bench_engine_speed.py

Wall-clock throughput is machine dependent: re-emit when moving to new
hardware rather than loosening the tolerance.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))
sys.path.insert(0, _ROOT)

BASELINE_PATH = os.path.join(_ROOT, "BENCH_engine.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown vs BENCH_engine.json "
        "(default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=7,
        help="serial measurement repeats, best-of (default 7)",
    )
    parser.add_argument(
        "--baseline",
        default=BASELINE_PATH,
        metavar="PATH",
        help="trajectory file to guard against (default %(default)s)",
    )
    parser.add_argument(
        "--replay-floor",
        type=float,
        default=1.5,
        help="minimum warm replay-sweep speedup over the live sweep "
        "(default 1.5)",
    )
    parser.add_argument(
        "--vector-floor",
        type=float,
        default=5.0,
        help="minimum vector-backend speedup over the event loop on "
        "fully-vectorizable (perfect-cache) replay-eligible cells "
        "(default 5.0)",
    )
    parser.add_argument(
        "--real-floor",
        type=float,
        default=3.5,
        help="minimum vector-backend speedup over the event loop on "
        "real-cache replay-eligible cells (default 3.5; carried by the "
        "miss-path kernels — walker, station timeline, miss-run batcher)",
    )
    parser.add_argument(
        "--replay-tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown of the warm replay sweep vs "
        "BENCH_engine.json (default 0.25; looser than --tolerance because "
        "the sweep is sub-second and noisier — the speedup floor is the "
        "primary replay invariant)",
    )
    parser.add_argument(
        "--schedule-tolerance",
        type=float,
        default=0.02,
        help="allowed fractional overhead of interval bookkeeping on a "
        "static run (default 0.02 = 2%%; the PolicySchedule seam must be "
        "invisible when nothing switches)",
    )
    args = parser.parse_args(argv)

    if not os.path.exists(args.baseline):
        print(
            f"no baseline at {args.baseline}; emit it first:\n"
            "    PYTHONPATH=src python benchmarks/bench_engine_speed.py",
            file=sys.stderr,
        )
        return 2
    with open(args.baseline, encoding="utf-8") as handle:
        trajectory = json.load(handle)
    baseline = trajectory["serial_ips"]

    from benchmarks.bench_engine_speed import (
        _replay_sweep,
        _serial_rates,
        _vector_sweep,
    )

    rates = _serial_rates(repeats=args.repeats)
    failures = []
    for name, reference in sorted(baseline.items()):
        measured = rates.get(name)
        if measured is None:
            continue
        ratio = measured / reference
        print(
            f"{name:>16}: {measured:>10,} i/s vs stored {reference:>10,} i/s "
            f"({ratio:.3f}x)"
        )
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{name}: engine is {(1.0 - ratio) * 100:.1f}% slower than "
                f"BENCH_engine.json ({reference:,} i/s); if this slowdown is "
                "intended (or the machine changed), re-emit the trajectory "
                "with: PYTHONPATH=src python benchmarks/bench_engine_speed.py"
            )

    stored_replay = trajectory.get("stream_replay")
    if stored_replay is not None:
        replay = _replay_sweep(repeats=3)
        print(
            f"{'replay_sweep':>16}: live {replay['live_s']:.3f}s, warm "
            f"{replay['warm_s']:.3f}s ({replay['speedup']:.2f}x; stored "
            f"{stored_replay['speedup']:.2f}x)"
        )
        if replay["speedup"] < args.replay_floor:
            failures.append(
                f"replay sweep speedup {replay['speedup']:.2f}x is below the "
                f"{args.replay_floor:.2f}x floor; the replay path has lost "
                "its reason to exist — profile ReplayBranchUnit.predict"
            )
        warm_ratio = replay["warm_s"] / stored_replay["warm_s"]
        if warm_ratio > 1.0 + args.replay_tolerance:
            failures.append(
                f"warm replay sweep is {(warm_ratio - 1.0) * 100:.1f}% slower "
                f"than BENCH_engine.json ({stored_replay['warm_s']}s); "
                "re-emit the trajectory if this is intended"
            )

    stored_vector = trajectory.get("vector_backend")
    if stored_vector is not None:
        vector = _vector_sweep(repeats=3)
        for group in ("perfect_cache", "real_cache"):
            measured = vector[group]
            stored = stored_vector[group]
            detail = ""
            if "scalar_fraction" in measured:
                detail = (
                    f", threshold {measured['scalar_threshold']}, "
                    f"scalar fraction {measured['scalar_fraction']:.1%}"
                )
            print(
                f"{'vector_' + group:>16}: event {measured['event_s']:.3f}s, "
                f"vector {measured['vector_s']:.3f}s "
                f"({measured['speedup']:.2f}x; stored {stored['speedup']:.2f}x"
                f"{detail})"
            )
        if vector["perfect_cache"]["speedup"] < args.vector_floor:
            failures.append(
                f"vector backend speedup "
                f"{vector['perfect_cache']['speedup']:.2f}x on perfect-cache "
                f"cells is below the {args.vector_floor:.2f}x floor; the "
                "vectorized backend has lost its reason to exist — profile "
                "VectorEngine._run_perfect"
            )
        if vector["real_cache"]["speedup"] < args.real_floor:
            failures.append(
                f"vector backend speedup "
                f"{vector['real_cache']['speedup']:.2f}x on real-cache cells "
                f"is below the {args.real_floor:.2f}x floor; the miss-path "
                "kernels have regressed (check scalar_fraction in "
                "BENCH_engine.json) — profile VectorEngine._run_probes and "
                "VectorEngine._walk"
            )

    stored_schedule = trajectory.get("static_schedule")
    if stored_schedule is not None:
        from benchmarks.bench_engine_speed import _schedule_overhead

        schedule = _schedule_overhead(repeats=5)
        print(
            f"{'static_schedule':>16}: plain {schedule['plain_s']:.3f}s, "
            f"intervalled {schedule['interval_s']:.3f}s "
            f"({schedule['overhead'] * 100:+.2f}%; stored "
            f"{stored_schedule['overhead'] * 100:+.2f}%)"
        )
        if schedule["overhead"] > args.schedule_tolerance:
            failures.append(
                f"static-schedule interval bookkeeping costs "
                f"{schedule['overhead'] * 100:.2f}% on a static run, above "
                f"the {args.schedule_tolerance * 100:.0f}% budget; the "
                "PolicySchedule seam must stay invisible when nothing "
                "switches — profile FetchEngine._run_intervals"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("engine speed check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
