"""Fault-tolerance smoke check for the sweep layer.

Runs a small parallel sweep under an injected-fault barrage (worker
crash, hard process exit, delay, artifact-cache corruption) and asserts
that

* the sweep completes despite the faults (retries + pool rebuilds),
* every result is bit-identical to a fault-free serial run, and
* the recovery machinery actually engaged (faults fired, retries spent).

Usage::

    PYTHONPATH=src python tools/check_robustness.py
    PYTHONPATH=src python tools/check_robustness.py --trace-length 5000

The benchmark harness runs this as a subprocess (see
benchmarks/bench_robustness.py), so `pytest benchmarks/` enforces the
recovery guarantee alongside the performance budgets.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.config import FetchPolicy, SimConfig  # noqa: E402
from repro.core.faults import FaultPlan, FaultSpec  # noqa: E402
from repro.core.parallel import ParallelRunner  # noqa: E402
from repro.core.runner import SimulationRunner  # noqa: E402

SEED = 7


def _jobs():
    return [
        ("li", SimConfig(policy=FetchPolicy.ORACLE)),
        ("li", SimConfig(policy=FetchPolicy.RESUME)),
        ("doduc", SimConfig(policy=FetchPolicy.ORACLE)),
        ("doduc", SimConfig(policy=FetchPolicy.PESSIMISTIC)),
    ]


def _plan(state_dir: str) -> FaultPlan:
    return FaultPlan(
        faults=[
            FaultSpec(phase="simulate", kind="crash", benchmark="li"),
            FaultSpec(phase="build", kind="exit", benchmark="doduc"),
            FaultSpec(phase="generate", kind="delay", seconds=0.01),
            FaultSpec(phase="cache_load", kind="corrupt", benchmark="li"),
        ],
        state_dir=state_dir,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-length",
        type=int,
        default=3_000,
        help="dynamic instructions per benchmark (default %(default)s; "
        "the check is about recovery, not simulation scale)",
    )
    args = parser.parse_args(argv)
    trace_length = args.trace_length
    warmup = trace_length // 5

    serial = SimulationRunner(
        trace_length=trace_length, warmup=warmup, seed=SEED
    )
    reference = [serial.run(name, config) for name, config in _jobs()]

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as scratch:
        plan = _plan(os.path.join(scratch, "faults"))
        runner = ParallelRunner(
            trace_length=trace_length, warmup=warmup, seed=SEED,
            max_workers=2, retries=3, backoff_base=0.0,
            cache_dir=os.path.join(scratch, "cache"), fault_plan=plan,
        )
        results = runner.run_jobs(_jobs())
        fired = plan.fired_total()
        retries = runner.metrics.value("sweep.retries")
        rebuilds = runner.metrics.value("sweep.pool_rebuilds")

    print(
        f"faulted sweep: {len(results)} cells | {fired} faults fired | "
        f"{retries} retries | {rebuilds} pool rebuild(s)"
    )
    if fired < 3:
        failures.append(
            f"only {fired} faults fired; the barrage did not engage"
        )
    if retries < 1:
        failures.append("no retries were spent; recovery path never ran")
    for index, (mine, theirs) in enumerate(zip(results, reference)):
        if (
            mine.penalties.as_dict() != theirs.penalties.as_dict()
            or mine.total_ispi != theirs.total_ispi
            or mine.counters.instructions != theirs.counters.instructions
        ):
            failures.append(
                f"cell {index} ({theirs.program}) diverged from the "
                f"fault-free serial reference"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("robustness check passed: faulted sweep is bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
