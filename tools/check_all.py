"""Aggregate quality gate: run every repo check in one command.

Runs the tooling gates in sequence and reports a one-line verdict
per gate plus an overall summary:

* ``check_lint``         — simlint static analysis over ``src/``;
* ``check_overhead``     — zero-overhead observability budget;
* ``check_engine_speed`` — hot-loop throughput + stream-replay speedup
  guard against ``BENCH_engine.json``, with the vector backend held to
  its perfect-cache (``--vector-floor``) and real-cache
  (``--real-floor 3.5``) speedup floors;
* ``check_robustness``   — fault-injected sweep recovery smoke test;
* ``check_service``      — job-server end-to-end: faulted sweep is
  bit-identical and the warm re-request is all store hits.

Exit codes follow the shared convention: 0 every gate passed, 1 at least
one gate failed, 2 a gate could not run at all (missing baseline,
internal error).  Failures never short-circuit — every gate runs so one
invocation reports the full picture.

Usage::

    PYTHONPATH=src python tools/check_all.py
    PYTHONPATH=src python tools/check_all.py --skip check_robustness
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The gates, in execution order (cheapest first), with the arguments
#: the aggregate gate pins (the per-tool defaults already match; pinning
#: them here makes the enforced floors visible in one place).
CHECK_ARGS = {
    "check_engine_speed": ("--real-floor", "3.5"),
}

CHECKS = (
    "check_lint",
    "check_overhead",
    "check_engine_speed",
    "check_robustness",
    "check_service",
)


def run_check(name: str) -> tuple[int, float, str]:
    """Run one gate as a subprocess; (exit code, seconds, combined output)."""
    env = dict(os.environ, PYTHONPATH=os.path.join(_ROOT, "src"))
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, os.path.join(_ROOT, "tools", f"{name}.py")]
        + list(CHECK_ARGS.get(name, ())),
        env=env,
        cwd=_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    elapsed = time.perf_counter() - started
    output = (proc.stdout or "") + (proc.stderr or "")
    return proc.returncode, elapsed, output


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip",
        action="append",
        default=[],
        choices=CHECKS,
        metavar="CHECK",
        help="gate to skip (repeatable)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print each gate's full output, not just failures'",
    )
    args = parser.parse_args(argv)

    worst = 0
    lines = []
    for name in CHECKS:
        if name in args.skip:
            lines.append(f"{name:>20}: SKIPPED")
            continue
        code, elapsed, output = run_check(name)
        verdict = {0: "ok"}.get(code, "FAIL" if code == 1 else f"ERROR ({code})")
        lines.append(f"{name:>20}: {verdict} ({elapsed:.1f}s)")
        if code != 0 or args.verbose:
            indented = "\n".join(f"    {line}" for line in output.splitlines())
            lines.append(indented)
        elif name == "check_lint":
            # Surface the cold/warm cache timing even when the gate is
            # quiet — it is the one latency number worth watching.
            for line in output.splitlines():
                if line.startswith("lint timing:"):
                    lines.append(f"    {line}")
        # An un-runnable gate (2) outranks a failing one (1).
        worst = max(worst, min(code, 2)) if code else worst
    print("\n".join(lines))
    print(f"overall: {'ok' if worst == 0 else 'FAIL' if worst == 1 else 'ERROR'}")
    return worst


if __name__ == "__main__":
    sys.exit(main())
