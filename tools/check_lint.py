"""Static-analysis gate: run simlint (per-file + flow) over the tree.

With arguments this stays a thin wrapper over ``python -m repro.lint``
(same flags, same exit codes).  With *no* arguments it runs the full
gate the way CI wants it:

* a **cold** run against a fresh flow-summary cache, then a **warm**
  run against the same cache — the pair proves the cache is sound
  (warm findings must be byte-identical to cold) and that warm runs
  re-index nothing when no file changed;
* a **wall-clock budget** on the warm run (``SIMLINT_WARM_BUDGET``
  seconds, default 20): the whole point of caching phase 1 is that the
  warm pre-commit loop stays interactive, so a regression here is a
  gate failure, not a shrug;
* one ``lint timing: cold Xs warm Ys`` line that
  ``tools/check_all.py`` surfaces even when the gate passes.

Exit codes follow the shared convention: 0 clean, 1 findings (or a
busted budget / cache divergence), 2 internal error.

Usage::

    PYTHONPATH=src python tools/check_lint.py
    PYTHONPATH=src python tools/check_lint.py --format json src tools
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.lint.cli import main as cli_main  # noqa: E402
from repro.lint.report import render_json, render_text  # noqa: E402
from repro.lint.runner import run_lint  # noqa: E402

#: Paths the gate lints (the self-clean surface).
GATE_PATHS = ("src", "tools", "benchmarks", "examples")

#: Warm-run wall-clock budget in seconds (override for slow machines).
WARM_BUDGET_SECONDS = float(os.environ.get("SIMLINT_WARM_BUDGET", "20"))


def _findings_payload(result) -> dict:
    """The report payload minus cache statistics (must not vary)."""
    payload = json.loads(render_json(result))
    payload.pop("flow", None)
    return payload


def run_gate() -> int:
    """Cold + warm lint with cache-soundness and latency checks."""
    with tempfile.TemporaryDirectory(prefix="simflow-gate-") as cache_dir:
        started = time.perf_counter()
        cold = run_lint(list(GATE_PATHS), root=".", flow_cache=cache_dir)
        cold_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_lint(list(GATE_PATHS), root=".", flow_cache=cache_dir)
        warm_elapsed = time.perf_counter() - started
    print(render_text(cold))
    reindexed = warm.flow_stats.files_indexed if warm.flow_stats else 0
    print(
        f"lint timing: cold {cold_elapsed:.2f}s warm {warm_elapsed:.2f}s "
        f"({cold.files_checked} files, {reindexed} re-indexed warm)"
    )
    failed = cold.exit_code()
    if _findings_payload(cold) != _findings_payload(warm):
        print(
            "error: warm (cached) lint run diverged from the cold run; "
            "the flow summary cache is unsound",
            file=sys.stderr,
        )
        failed = 1
    if reindexed != 0:
        print(
            f"error: warm run re-indexed {reindexed} file(s) although "
            f"nothing changed; cache keys are unstable",
            file=sys.stderr,
        )
        failed = 1
    if warm_elapsed > WARM_BUDGET_SECONDS:
        print(
            f"error: warm lint run took {warm_elapsed:.2f}s, over the "
            f"{WARM_BUDGET_SECONDS:.0f}s budget (SIMLINT_WARM_BUDGET)",
            file=sys.stderr,
        )
        failed = 1
    return failed


if __name__ == "__main__":
    repo_root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    os.chdir(repo_root)
    if sys.argv[1:]:
        sys.exit(cli_main(sys.argv[1:]))
    try:
        sys.exit(run_gate())
    except Exception as exc:  # pragma: no cover - defensive
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        sys.exit(2)
