"""Static-analysis gate: run simlint over the source tree.

Thin wrapper over ``python -m repro.lint`` so the lint gate slots into
the same tooling row as ``check_overhead.py`` / ``check_engine_speed.py``
/ ``check_robustness.py``.  Exit codes follow the shared convention:
0 clean, 1 findings, 2 internal error.

Usage::

    PYTHONPATH=src python tools/check_lint.py
    PYTHONPATH=src python tools/check_lint.py --format json
    PYTHONPATH=src python tools/check_lint.py src tools benchmarks

The same pass also runs inside tier-1 pytest via
``tests/lint/test_self_clean.py``, so CI needs no extra plumbing; this
script exists for pre-commit use and for machines that want the JSON
report.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.lint.cli import main  # noqa: E402

if __name__ == "__main__":
    repo_root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    os.chdir(repo_root)
    sys.exit(main(sys.argv[1:] or ["src"]))
