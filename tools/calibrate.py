"""Workload calibration report.

Compares each synthetic benchmark against its paper targets (Tables 2/3):
dynamic branch percentage, 8K/32K direct-mapped miss rates (Oracle policy),
and the branch-architecture ISPI decomposition at speculation depths 1
and 4.  Run after any change to the workload specs:

    python tools/calibrate.py [benchmark ...]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.config import CacheConfig, FetchPolicy, SimConfig
from repro.core.runner import SimulationRunner
from repro.program.workloads import PAPER_REFERENCE, SUITE
from repro.trace.stats import compute_stats


def calibrate(names: list[str], trace_length: int = 200_000) -> None:
    runner = SimulationRunner(trace_length=trace_length)
    header = (
        f"{'bench':>8} {'%br':>5}({'tgt':>4}) {'m8':>5}({'tgt':>4}) "
        f"{'m32':>5}({'tgt':>4}) {'pht1':>5} {'pht4':>5}({'tgt':>4}) "
        f"{'mft4':>5}({'tgt':>4}) {'bmp4':>5}({'tgt':>4}) {'foot':>5}"
    )
    print(header)
    for name in names:
        ref = PAPER_REFERENCE[name]
        trace = runner.trace(name)
        stats = compute_stats(trace)
        oracle8 = SimConfig(policy=FetchPolicy.ORACLE)
        oracle32 = replace(oracle8, cache=CacheConfig(size_bytes=32768))
        perfect4 = SimConfig(policy=FetchPolicy.ORACLE, perfect_cache=True)
        perfect1 = replace(perfect4, max_unresolved=1)
        r8 = runner.run(name, oracle8)
        r32 = runner.run(name, oracle32)
        p4 = runner.run(name, perfect4)
        p1 = runner.run(name, perfect1)
        # Table 3 references for the branch columns.
        tgt = _TABLE3[name]
        print(
            f"{name:>8} {stats.pct_branches:5.1f}({ref['pct_branches']:4.1f}) "
            f"{r8.miss_rate_percent:5.2f}({ref['miss_8k']:4.2f}) "
            f"{r32.miss_rate_percent:5.2f}({ref['miss_32k']:4.2f}) "
            f"{p1.branch_ispi('pht_mispredict'):5.2f} "
            f"{p4.branch_ispi('pht_mispredict'):5.2f}({tgt[0]:4.2f}) "
            f"{p4.branch_ispi('btb_misfetch'):5.2f}({tgt[1]:4.2f}) "
            f"{p4.branch_ispi('btb_mispredict'):5.2f}({tgt[2]:4.2f}) "
            f"{runner.program(name).image.n_instructions * 4 // 1024:4}K"
        )


#: Paper Table 3: (PHT ISPI B4, BTB misfetch ISPI B4, BTB mispredict ISPI B4).
_TABLE3 = {
    "doduc": (0.37, 0.04, 0.00),
    "fpppp": (0.12, 0.01, 0.00),
    "su2cor": (0.10, 0.00, 0.00),
    "ditroff": (0.64, 0.22, 0.00),
    "gcc": (0.63, 0.28, 0.05),
    "li": (0.54, 0.24, 0.04),
    "tex": (0.36, 0.11, 0.03),
    "cfront": (0.56, 0.34, 0.05),
    "db++": (0.41, 0.13, 0.01),
    "groff": (0.57, 0.38, 0.06),
    "idl": (0.49, 0.10, 0.05),
    "lic": (0.56, 0.27, 0.00),
    "porky": (0.48, 0.20, 0.04),
}


if __name__ == "__main__":
    chosen = sys.argv[1:] or list(SUITE)
    calibrate(chosen)
