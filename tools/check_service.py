"""End-to-end smoke check for the sweep job server.

Boots a real ``python -m repro.service`` subprocess with an injected
worker-crash fault, drives a sweep through the blocking client, and
asserts that

* the faulted sweep completes and is bit-identical to a fault-free
  serial run (retries engaged, every cell simulated exactly once),
* a warm re-request is served entirely from the content-addressed
  result store (zero simulations — a 100% hit rate), and
* ``POST /v1/shutdown`` stops the server with exit status 0.

Usage::

    PYTHONPATH=src python tools/check_service.py
    PYTHONPATH=src python tools/check_service.py --trace-length 5000

``tools/check_all.py`` runs this as the ``check_service`` gate.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.config import FetchPolicy, SimConfig  # noqa: E402
from repro.core.runner import SimulationRunner  # noqa: E402
from repro.service import RemoteRunner, ServiceClient  # noqa: E402

SEED = 7
ANNOUNCE = "repro-service listening on "


def _jobs():
    return [
        ("li", SimConfig(policy=FetchPolicy.ORACLE)),
        ("li", SimConfig(policy=FetchPolicy.RESUME)),
        ("doduc", SimConfig(policy=FetchPolicy.ORACLE)),
        ("doduc", SimConfig(policy=FetchPolicy.PESSIMISTIC)),
    ]


def _start_server(scratch: str) -> tuple[subprocess.Popen, str]:
    """Boot a faulted server subprocess; returns (process, address)."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (os.path.join(root, "src"), env.get("PYTHONPATH", ""))
        if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--data-dir", os.path.join(scratch, "data"),
            "--listen", "127.0.0.1:0",
            "--max-workers", "2",
            "--retries", "3",
            "--backoff-base", "0.0",
            "--inject-faults", "simulate:crash:li",
            "--fault-state", os.path.join(scratch, "faults"),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    for line in proc.stdout:
        if line.startswith(ANNOUNCE):
            return proc, line[len(ANNOUNCE):].strip()
    raise RuntimeError(
        f"server exited (status {proc.wait()}) before announcing an address"
    )


def _identical(mine, theirs) -> bool:
    return (
        mine.penalties.as_dict() == theirs.penalties.as_dict()
        and mine.total_ispi == theirs.total_ispi
        and mine.counters.instructions == theirs.counters.instructions
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-length",
        type=int,
        default=3_000,
        help="dynamic instructions per benchmark (default %(default)s; "
        "the check is about service recovery, not simulation scale)",
    )
    args = parser.parse_args(argv)
    trace_length = args.trace_length
    warmup = trace_length // 5

    serial = SimulationRunner(
        trace_length=trace_length, warmup=warmup, seed=SEED
    )
    reference = [serial.run(name, config) for name, config in _jobs()]

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as scratch:
        proc, address = _start_server(scratch)
        try:
            cold = RemoteRunner(
                ServiceClient(address, backoff_base=0.0),
                trace_length=trace_length, warmup=warmup, seed=SEED,
                client_id="check-cold",
            )
            results = cold.run_jobs(_jobs())
            warm = RemoteRunner(
                ServiceClient(address, backoff_base=0.0),
                trace_length=trace_length, warmup=warmup, seed=SEED,
                client_id="check-warm",
            )
            warm_results = warm.run_jobs(_jobs())
            counters = ServiceClient(address).healthz()["counters"]
            ServiceClient(address).shutdown()
            exit_status = proc.wait(timeout=30)
        finally:
            proc.kill()
            proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()

    print(
        f"faulted service sweep: {len(results)} cells | "
        f"{counters['service.retries']} retries | "
        f"{counters['service.cells_simulated']} simulated | "
        f"{warm.stats['store_hits']} warm store hits"
    )
    if counters["service.retries"] < 1:
        failures.append("no retries were spent; the injected crash never fired")
    if counters["service.cells_simulated"] != len(reference):
        failures.append(
            f"{counters['service.cells_simulated']} cells simulated; "
            f"expected exactly {len(reference)} (one per cell, then warm)"
        )
    if warm.stats["cells_simulated"] != 0:
        failures.append(
            f"warm re-request simulated {warm.stats['cells_simulated']} "
            "cell(s); the store hit rate must be 100%"
        )
    if warm.stats["store_hits"] != len(reference):
        failures.append(
            f"warm re-request hit the store {warm.stats['store_hits']} "
            f"time(s); expected {len(reference)}"
        )
    for index, (theirs, served) in enumerate(zip(reference, results)):
        if not _identical(served, theirs):
            failures.append(
                f"cold cell {index} ({theirs.program}) diverged from the "
                "fault-free serial reference"
            )
    for index, (theirs, served) in enumerate(zip(reference, warm_results)):
        if not _identical(served, theirs):
            failures.append(
                f"warm cell {index} ({theirs.program}) diverged from the "
                "fault-free serial reference"
            )
    if exit_status != 0:
        failures.append(
            f"shutdown endpoint left exit status {exit_status}; expected 0"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("service check passed: faulted sweep bit-identical, warm hits 100%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
