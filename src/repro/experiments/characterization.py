"""Tables 2 and 3: workload and branch-architecture characterisation.

* **Table 2** — benchmark descriptions: language, the paper's instruction
  counts, our trace lengths, and the dynamic branch percentage
  (paper target vs. measured).
* **Table 3** — I-cache miss rates for 8K/32K direct-mapped caches and the
  branch-architecture penalty ISPI (PHT mispredict, BTB misfetch, BTB
  mispredict) at speculation depths 1 and 4.

Miss rates are measured with the Oracle policy (the paper's miss rates are
right-path characteristics, identical for Oracle/Pessimistic); the branch
columns come from perfect-I-cache runs so branch penalties are isolated.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from repro.config import CacheConfig, FetchPolicy, SimConfig
from repro.core.runner import SimulationRunner
from repro.experiments.base import ExperimentResult
from repro.program.workloads import LANGUAGE, PAPER_REFERENCE, SUITE, get_spec
from repro.report.format import Table, average_label, mean
from repro.trace.stats import compute_stats


def run_table2(
    runner: SimulationRunner, benchmarks: Sequence[str] = SUITE
) -> ExperimentResult:
    """Reproduce Table 2 (benchmark characteristics)."""
    table = Table(
        headers=[
            "Program", "Lang", "PaperInst(M)", "TraceInst",
            "%Br", "%Br(paper)", "AvgBlock", "Footprint(KB)",
        ],
        float_format="{:.1f}",
        title="Table 2: benchmark characteristics",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        stats = compute_stats(runner.trace(name))
        ref = PAPER_REFERENCE[name]
        program = runner.program(name)
        table.add_row(
            name,
            LANGUAGE[name],
            float(ref["inst_m"]),
            stats.n_instructions,
            stats.pct_branches,
            float(ref["pct_branches"]),
            stats.avg_block_length,
            program.footprint_bytes / 1024.0,
        )
        data[name] = {
            "pct_branches": stats.pct_branches,
            "pct_branches_paper": float(ref["pct_branches"]),
            "avg_block": stats.avg_block_length,
            "trace_instructions": float(stats.n_instructions),
        }
    return ExperimentResult(
        experiment_id="table2",
        title="Benchmark characteristics",
        paper_ref="Table 2",
        tables=[table],
        data={"per_benchmark": data},
        notes=(
            "Synthetic workloads; paper instruction counts shown for "
            "reference (see DESIGN.md for the substitution rationale)."
        ),
    )


def run_table3(
    runner: SimulationRunner, benchmarks: Sequence[str] = SUITE
) -> ExperimentResult:
    """Reproduce Table 3 (miss rates and branch-architecture ISPI)."""
    table = Table(
        headers=[
            "Program", "Miss8K%", "Miss32K%",
            "PHT-B1", "PHT-B4", "MisfetchB1", "MisfetchB4",
            "BTBmpB1", "BTBmpB4",
        ],
        title="Table 3: I-cache and branch prediction characteristics",
    )
    oracle_8k = SimConfig(policy=FetchPolicy.ORACLE)
    oracle_32k = replace(oracle_8k, cache=CacheConfig(size_bytes=32 * 1024))
    perfect_b4 = SimConfig(policy=FetchPolicy.ORACLE, perfect_cache=True)
    perfect_b1 = replace(perfect_b4, max_unresolved=1)

    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        r8 = runner.run(name, oracle_8k)
        r32 = runner.run(name, oracle_32k)
        b4 = runner.run(name, perfect_b4)
        b1 = runner.run(name, perfect_b1)
        row = {
            "miss_8k": r8.miss_rate_percent,
            "miss_32k": r32.miss_rate_percent,
            "pht_b1": b1.branch_ispi("pht_mispredict"),
            "pht_b4": b4.branch_ispi("pht_mispredict"),
            "misfetch_b1": b1.branch_ispi("btb_misfetch"),
            "misfetch_b4": b4.branch_ispi("btb_misfetch"),
            "btb_mp_b1": b1.branch_ispi("btb_mispredict"),
            "btb_mp_b4": b4.branch_ispi("btb_mispredict"),
        }
        data[name] = row
        table.add_row(
            name, row["miss_8k"], row["miss_32k"],
            row["pht_b1"], row["pht_b4"],
            row["misfetch_b1"], row["misfetch_b4"],
            row["btb_mp_b1"], row["btb_mp_b4"],
        )
    table.add_separator()
    table.add_row(
        average_label(data),
        mean(d["miss_8k"] for d in data.values()),
        mean(d["miss_32k"] for d in data.values()),
        mean(d["pht_b1"] for d in data.values()),
        mean(d["pht_b4"] for d in data.values()),
        mean(d["misfetch_b1"] for d in data.values()),
        mean(d["misfetch_b4"] for d in data.values()),
        mean(d["btb_mp_b1"] for d in data.values()),
        mean(d["btb_mp_b4"] for d in data.values()),
    )
    return ExperimentResult(
        experiment_id="table3",
        title="I-cache and branch prediction characteristics",
        paper_ref="Table 3",
        tables=[table],
        data={"per_benchmark": data},
        notes=(
            "Miss rates: Oracle policy (right-path misses per instruction). "
            "Branch ISPI columns: perfect-I-cache runs at depths 1 and 4."
        ),
    )


def paper_targets(name: str) -> dict[str, float]:
    """The paper's Table 2/3 reference values for one benchmark."""
    get_spec(name)  # raises for unknown benchmarks
    return dict(PAPER_REFERENCE[name])
