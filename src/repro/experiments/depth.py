"""Table 5: influence of the depth of speculation.

The full benchmark x policy ISPI matrix at 1, 2, and 4 unresolved
branches (8K direct-mapped, 5-cycle miss penalty).  The paper's claim:
deeper speculation lowers ISPI for every policy, with the largest step
from depth 1 to depth 2.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from repro.config import ALL_POLICIES, SimConfig
from repro.core.runner import SimulationRunner
from repro.experiments.base import ExperimentResult
from repro.program.workloads import SUITE
from repro.report.format import Table, average_label, mean

#: The paper's speculation depths.
DEPTHS = (1, 2, 4)


def run_table5(
    runner: SimulationRunner,
    benchmarks: Sequence[str] = SUITE,
    depths: Sequence[int] = DEPTHS,
    base_config: SimConfig | None = None,
) -> ExperimentResult:
    """Reproduce Table 5 (speculation-depth sweep).

    *base_config* overrides the paper's baseline configuration before
    the depth sweep is applied on top — used by the cross-backend
    differential harness to render the table from replay-eligible cells.
    """
    base = SimConfig() if base_config is None else base_config
    headers = ["Program"]
    for depth in depths:
        headers.extend(f"B{depth}-{p.label}" for p in ALL_POLICIES)
    table = Table(headers=headers, title="Table 5: effect of speculation depth")
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        row: list[object] = [name]
        data[name] = {}
        for depth in depths:
            config = replace(base, max_unresolved=depth)
            results = runner.run_policies(name, config, ALL_POLICIES)
            for policy in ALL_POLICIES:
                ispi = results[policy].total_ispi
                row.append(ispi)
                data[name][f"B{depth}-{policy.value}"] = ispi
        table.add_row(*row)
    table.add_separator()
    avg_row: list[object] = [average_label(data)]
    for depth in depths:
        for policy in ALL_POLICIES:
            key = f"B{depth}-{policy.value}"
            avg_row.append(mean(d[key] for d in data.values()))
    table.add_row(*avg_row)
    return ExperimentResult(
        experiment_id="table5",
        title="Effect of speculation depth",
        paper_ref="Table 5",
        tables=[table],
        data={"per_benchmark": data, "depths": list(depths)},
        notes=(
            "Headline claim: ISPI decreases with depth for every policy; "
            "the 1->2 step is larger than the 2->4 step."
        ),
    )
