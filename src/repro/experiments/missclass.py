"""Table 4: categorisation of I-cache misses under speculative execution.

Runs the Optimistic policy with the shadow-Oracle classifier and reports
Both Miss / Spec Pollute / Spec Prefetch / Wrong Path percentages plus the
Optimistic-vs-Oracle memory traffic ratio, exactly as in the paper's
Table 4 (baseline architecture: 8K direct-mapped, depth 4, no prefetch).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from repro.config import FetchPolicy, SimConfig
from repro.core.runner import SimulationRunner
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.program.workloads import SUITE
from repro.report.format import Table, average_label, mean


def run_table4(
    runner: SimulationRunner, benchmarks: Sequence[str] = SUITE
) -> ExperimentResult:
    """Reproduce Table 4 (miss categorisation and traffic ratio)."""
    config = replace(SimConfig(policy=FetchPolicy.OPTIMISTIC), classify=True)
    table = Table(
        headers=["Program", "BM", "SPo", "SPr", "WP", "TR"],
        title="Table 4: categorisation of miss ratios "
        "(BM=Both Miss, SPo=Spec Pollute, SPr=Spec Prefetch, "
        "WP=Wrong Path, TR=Traffic Ratio)",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        result = runner.run(name, config)
        cls = result.classification
        if cls is None:
            raise ExperimentError(f"classification missing for {name}")
        data[name] = {
            "both_miss": cls.both_miss,
            "spec_pollute": cls.spec_pollute,
            "spec_prefetch": cls.spec_prefetch,
            "wrong_path": cls.wrong_path,
            "traffic_ratio": cls.traffic_ratio,
        }
        table.add_row(
            name, cls.both_miss, cls.spec_pollute, cls.spec_prefetch,
            cls.wrong_path, cls.traffic_ratio,
        )
    table.add_separator()
    table.add_row(
        average_label(data),
        mean(d["both_miss"] for d in data.values()),
        mean(d["spec_pollute"] for d in data.values()),
        mean(d["spec_prefetch"] for d in data.values()),
        mean(d["wrong_path"] for d in data.values()),
        mean(d["traffic_ratio"] for d in data.values()),
    )
    return ExperimentResult(
        experiment_id="table4",
        title="Categorisation of miss ratios",
        paper_ref="Table 4",
        tables=[table],
        data={"per_benchmark": data},
        notes=(
            "Percentages are misses per correct-path instruction. "
            "Headline claim: Spec Prefetch > Spec Pollute (wrong-path "
            "prefetching beats pollution), Wrong Path misses substantial."
        ),
    )
