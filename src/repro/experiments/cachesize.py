"""Table 6: influence of cache size.

The benchmark x policy ISPI matrix with a 32K direct-mapped I-cache
(5-cycle penalty, depth 4).  The paper's claim: the larger cache
compresses the differences between policies, though applications with a
remaining non-trivial miss rate still benefit modestly from Resume.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from repro.config import ALL_POLICIES, CacheConfig, SimConfig
from repro.core.runner import SimulationRunner
from repro.experiments.base import ExperimentResult
from repro.program.workloads import SUITE
from repro.report.format import Table, average_label, mean

#: The paper's large cache size in bytes.
LARGE_CACHE_BYTES = 32 * 1024


def run_table6(
    runner: SimulationRunner,
    benchmarks: Sequence[str] = SUITE,
    base_config: SimConfig | None = None,
) -> ExperimentResult:
    """Reproduce Table 6 (32K cache).

    *base_config* overrides the paper's baseline configuration (the
    32K cache is applied on top) — used by the cross-backend
    differential harness to render the table from replay-eligible cells.
    """
    base = SimConfig() if base_config is None else base_config
    config = replace(base, cache=CacheConfig(size_bytes=LARGE_CACHE_BYTES))
    table = Table(
        headers=["Program", *(p.label for p in ALL_POLICIES)],
        title="Table 6: effect of cache size (32K direct mapped, 5-cycle)",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        results = runner.run_policies(name, config, ALL_POLICIES)
        data[name] = {
            policy.value: results[policy].total_ispi for policy in ALL_POLICIES
        }
        table.add_row(name, *(data[name][p.value] for p in ALL_POLICIES))
    table.add_separator()
    table.add_row(
        average_label(data),
        *(
            mean(d[p.value] for d in data.values())
            for p in ALL_POLICIES
        ),
    )
    return ExperimentResult(
        experiment_id="table6",
        title="Effect of cache size",
        paper_ref="Table 6",
        tables=[table],
        data={"per_benchmark": data},
        notes=(
            "Headline claim: with a 32K cache the policy differences "
            "shrink (Resume-vs-Pessimistic gap smaller than at 8K)."
        ),
    )
