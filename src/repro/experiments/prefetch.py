"""Figures 3-4 and Table 7: next-line prefetching.

* **Figure 3** — ISPI breakdown for Oracle / Resume / Pessimistic with and
  without next-line prefetching at the 5-cycle penalty.
* **Figure 4** — the same with the 20-cycle penalty (where prefetching can
  *hurt*, even Oracle, because demand misses wait for in-flight
  prefetches).
* **Table 7** — memory traffic of each prefetching policy relative to
  Oracle without prefetching.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from repro.config import FetchPolicy, SimConfig
from repro.core.runner import SimulationRunner
from repro.experiments.base import ExperimentResult
from repro.experiments.latency import LONG_MISS_PENALTY_CYCLES
from repro.program.workloads import FIGURE_BENCHMARKS, SUITE
from repro.report.figures import breakdown_chart
from repro.report.format import Table, average_label, mean

#: The subset of policies the paper shows in its prefetch figures.
PREFETCH_POLICIES = (
    FetchPolicy.ORACLE,
    FetchPolicy.RESUME,
    FetchPolicy.PESSIMISTIC,
)


def _prefetch_breakdowns(
    runner: SimulationRunner,
    benchmarks: Sequence[str],
    miss_penalty_cycles: int,
    experiment_id: str,
    title: str,
    paper_ref: str,
    notes: str,
) -> ExperimentResult:
    """Shared machinery for Figures 3 and 4."""
    base = replace(SimConfig(), miss_penalty_cycles=miss_penalty_cycles)
    table = Table(
        headers=["Program"]
        + [p.label for p in PREFETCH_POLICIES]
        + [f"{p.label}+Pref" for p in PREFETCH_POLICIES],
        title=f"{title} — total penalty ISPI",
    )
    groups = []
    data: dict[str, dict[str, dict[str, float]]] = {}
    for name in benchmarks:
        bars = []
        data[name] = {}
        totals: dict[str, float] = {}
        for prefetch in (False, True):
            for policy in PREFETCH_POLICIES:
                config = replace(base, policy=policy, prefetch=prefetch)
                result = runner.run(name, config)
                label = policy.label + ("+Pref" if prefetch else "")
                breakdown = result.ispi_breakdown()
                bars.append((label, breakdown))
                data[name][label] = dict(breakdown)
                totals[label] = result.total_ispi
        table.add_row(
            name,
            *(totals[p.label] for p in PREFETCH_POLICIES),
            *(totals[f"{p.label}+Pref"] for p in PREFETCH_POLICIES),
        )
        groups.append((name, bars))
    chart = breakdown_chart(
        f"{title} ({miss_penalty_cycles}-cycle miss penalty)", groups
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        paper_ref=paper_ref,
        tables=[table],
        charts=[chart],
        data={"per_benchmark": data},
        notes=notes,
    )


def run_figure3(
    runner: SimulationRunner, benchmarks: Sequence[str] = FIGURE_BENCHMARKS
) -> ExperimentResult:
    """Reproduce Figure 3 (prefetching at the 5-cycle penalty)."""
    return _prefetch_breakdowns(
        runner,
        benchmarks,
        miss_penalty_cycles=5,
        experiment_id="figure3",
        title="Effect of next-line prefetching",
        paper_ref="Figure 3",
        notes=(
            "Headline claims: prefetching improves every policy at the "
            "small penalty and narrows the gaps between policies; Resume "
            "without prefetch ~ Pessimistic with prefetch."
        ),
    )


def run_figure4(
    runner: SimulationRunner, benchmarks: Sequence[str] = FIGURE_BENCHMARKS
) -> ExperimentResult:
    """Reproduce Figure 4 (prefetching at the 20-cycle penalty)."""
    return _prefetch_breakdowns(
        runner,
        benchmarks,
        miss_penalty_cycles=LONG_MISS_PENALTY_CYCLES,
        experiment_id="figure4",
        title="Next-line prefetching with long miss latency",
        paper_ref="Figure 4",
        notes=(
            "Headline claim: with a long miss latency prefetching can "
            "hurt — even Oracle — because demand misses wait for the "
            "channel behind in-flight prefetches."
        ),
    )


def run_table7(
    runner: SimulationRunner, benchmarks: Sequence[str] = SUITE
) -> ExperimentResult:
    """Reproduce Table 7 (memory traffic of prefetching policies).

    Each cell is (memory accesses of the policy with next-line
    prefetching) / (memory accesses of Oracle without prefetching).
    """
    base = SimConfig()
    table = Table(
        headers=["Program", *(p.label for p in PREFETCH_POLICIES)],
        title="Table 7: memory traffic with next-line prefetching "
        "(relative to Oracle without prefetch)",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        oracle_plain = runner.run(
            name, replace(base, policy=FetchPolicy.ORACLE, prefetch=False)
        )
        denom = oracle_plain.counters.memory_accesses
        data[name] = {}
        row: list[object] = [name]
        for policy in PREFETCH_POLICIES:
            result = runner.run(name, replace(base, policy=policy, prefetch=True))
            ratio = (
                result.counters.memory_accesses / denom if denom else float("nan")
            )
            data[name][policy.value] = ratio
            row.append(ratio)
        table.add_row(*row)
    table.add_separator()
    table.add_row(
        average_label(data),
        *(
            mean(d[p.value] for d in data.values())
            for p in PREFETCH_POLICIES
        ),
    )
    return ExperimentResult(
        experiment_id="table7",
        title="Effect of prefetching on memory traffic",
        paper_ref="Table 7",
        tables=[table],
        data={"per_benchmark": data},
        notes=(
            "Headline claim: next-line prefetching raises memory traffic "
            "substantially for every policy (paper averages 1.35-1.56x)."
        ),
    )
