"""Adaptive fetch-policy scheduling: tournament vs. static best vs. oracle.

The paper picks one fetch policy per machine and keeps it for the whole
run.  PR 7 makes the policy a per-interval input, which raises the
natural question this table answers: *how much ISPI is left on the table
by committing to one policy up front?*

Three rows of evidence per benchmark:

* the best **static** policy, chosen in hindsight over the realizable
  four (Optimistic, Resume, Pessimistic, Decode) — the paper's regime;
* the **tournament** meta-controller, which runs shadow simulations of
  the non-incumbent candidates each interval and switches (with
  hysteresis) when a challenger's smoothed ISPI estimate beats the
  incumbent's — realizable online, charged for its switches;
* the per-interval **oracle**, which re-simulates every interval under
  every candidate from the same warm state and keeps the best — an upper
  bound no online controller can beat.

``gap = tournament - oracle`` is the headroom the controller leaves
unclaimed; ``oracle - static best`` is the intrinsic value of switching
at all.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import replace

from repro.config import REALIZABLE_POLICIES, FetchPolicy, SimConfig
from repro.core.runner import SimulationRunner
from repro.experiments.base import ExperimentResult
from repro.program.workloads import SUITE
from repro.report.format import Table, average_label, mean

#: Default interval length (measured instructions between policy
#: decisions).  Short enough for several boundaries inside the default
#: trace length, long enough that per-interval ISPI is not pure noise.
DEFAULT_INTERVAL = 2_000


def _static_best(
    results: dict[FetchPolicy, object],
    policies: Sequence[FetchPolicy],
) -> tuple[FetchPolicy | None, float]:
    """The hindsight-best static policy and its ISPI (NaN-safe)."""
    best_policy: FetchPolicy | None = None
    best = float("nan")
    for policy in policies:
        ispi = results[policy].total_ispi
        if math.isnan(ispi):
            continue
        if best_policy is None or ispi < best:
            best_policy, best = policy, ispi
    return best_policy, best


def run_adaptive(
    runner: SimulationRunner,
    benchmarks: Sequence[str] = SUITE,
    interval: int = DEFAULT_INTERVAL,
    base_config: SimConfig | None = None,
) -> ExperimentResult:
    """Compare static-best, tournament, and per-interval-oracle ISPI.

    *base_config* overrides the paper's baseline before the scheduling
    knobs are applied on top (used by tests to shrink the candidate set
    or change hysteresis).
    """
    base = SimConfig() if base_config is None else base_config
    policies = base.adaptive_policies or REALIZABLE_POLICIES
    headers = [
        "Program",
        *(p.label for p in policies),
        "Static best",
        "Tournament",
        "Switches",
        "Oracle",
        "Tour-Oracle gap",
    ]
    table = Table(
        headers=headers,
        title=(
            "Adaptive policy scheduling: static best vs. tournament vs. "
            f"per-interval oracle (interval = {interval} instructions)"
        ),
    )
    tournament_cfg = replace(
        base, policy_schedule="tournament", adaptive_interval=interval
    )
    oracle_cfg = replace(
        base, policy_schedule="oracle", adaptive_interval=interval
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        statics = runner.run_policies(name, base, policies)
        best_policy, best = _static_best(statics, policies)
        tournament = runner.run(name, tournament_cfg)
        oracle = runner.run(name, oracle_cfg)
        t_ispi = tournament.total_ispi
        o_ispi = oracle.total_ispi
        switches = tournament.metadata.get("policy_switches", 0)
        data[name] = {
            **{p.value: statics[p].total_ispi for p in policies},
            "static_best": best,
            "tournament": t_ispi,
            "oracle": o_ispi,
            "gap": t_ispi - o_ispi,
        }
        data[name]["switches"] = float(switches)
        data[name]["static_best_policy"] = (
            best_policy.value if best_policy is not None else ""
        )
        table.add_row(
            name,
            *(statics[p].total_ispi for p in policies),
            best,
            t_ispi,
            int(switches),
            o_ispi,
            t_ispi - o_ispi,
        )
    table.add_separator()
    numeric = {
        name: {k: v for k, v in cells.items() if isinstance(v, float)}
        for name, cells in data.items()
    }
    table.add_row(
        average_label(numeric),
        *(mean(d[p.value] for d in numeric.values()) for p in policies),
        mean(d["static_best"] for d in numeric.values()),
        mean(d["tournament"] for d in numeric.values()),
        int(sum(d["switches"] for d in numeric.values())),
        mean(d["oracle"] for d in numeric.values()),
        mean(d["gap"] for d in numeric.values()),
    )
    return ExperimentResult(
        experiment_id="adaptive",
        title="Adaptive fetch-policy scheduling",
        paper_ref="beyond the paper (PR 7)",
        tables=[table],
        data={"per_benchmark": data, "interval": interval},
        notes=(
            "The oracle greedily minimises each interval's penalty from "
            "shared warm state — expect it at or below the best static "
            "policy.  The tournament is realizable (shadow estimators "
            "only look backwards) and should recover part of that win."
        ),
    )
