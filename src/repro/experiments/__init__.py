"""Paper-artifact experiments.

One module per reproduced table/figure (see DESIGN.md §5 for the index),
a registry mapping experiment ids to runner functions, and a CLI
(``repro-experiment`` / ``python -m repro``).
"""

from repro.experiments.ablations import (
    ABLATION_BENCHMARKS,
    run_ablation_assoc,
    run_ablation_btb,
    run_ablation_btbupd,
    run_ablation_linesize,
    run_ablation_pht,
    run_ablation_pht_size,
    run_ablation_ras,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.baseline import run_figure1
from repro.experiments.extensions import (
    EXTENSION_BENCHMARKS,
    run_extension_l2,
    run_extension_nonblocking,
    run_extension_prefetch_variants,
    run_extension_reorder,
    run_extension_streambuffer,
)
from repro.experiments.cachesize import run_table6
from repro.experiments.characterization import run_table2, run_table3
from repro.experiments.depth import run_table5
from repro.experiments.latency import run_figure2
from repro.experiments.missclass import run_table4
from repro.experiments.prefetch import run_figure3, run_figure4, run_table7
from repro.experiments.registry import (
    EXPERIMENTS,
    PAPER_EXPERIMENTS,
    get_experiment,
    run_experiment,
)

__all__ = [
    "ABLATION_BENCHMARKS",
    "EXPERIMENTS",
    "EXTENSION_BENCHMARKS",
    "ExperimentResult",
    "PAPER_EXPERIMENTS",
    "get_experiment",
    "run_extension_l2",
    "run_extension_nonblocking",
    "run_extension_prefetch_variants",
    "run_extension_reorder",
    "run_extension_streambuffer",
    "run_ablation_assoc",
    "run_ablation_btb",
    "run_ablation_btbupd",
    "run_ablation_linesize",
    "run_ablation_pht",
    "run_ablation_pht_size",
    "run_ablation_ras",
    "run_experiment",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
]
