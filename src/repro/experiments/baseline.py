"""Figure 1: ISPI component breakdown for the baseline architecture.

Five policies x five representative benchmarks, 8K direct-mapped cache,
5-cycle miss penalty, speculation depth 4 — the paper's §5.1.2.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.config import ALL_POLICIES, FetchPolicy, SimConfig
from repro.core.results import COMPONENTS
from repro.core.runner import SimulationRunner
from repro.experiments.base import ExperimentResult, policy_breakdowns
from repro.program.workloads import FIGURE_BENCHMARKS
from repro.report.figures import breakdown_chart
from repro.report.format import Table


def _breakdown_experiment(
    runner: SimulationRunner,
    benchmarks: Sequence[str],
    config: SimConfig,
    experiment_id: str,
    title: str,
    paper_ref: str,
    notes: str,
) -> ExperimentResult:
    """Shared machinery for Figures 1 and 2."""
    matrix = policy_breakdowns(runner, benchmarks, config, ALL_POLICIES)
    table = Table(
        headers=["Program", *(p.label for p in ALL_POLICIES)],
        title=f"{title} — total penalty ISPI",
    )
    groups = []
    data: dict[str, dict[str, dict[str, float]]] = {}
    for name in benchmarks:
        row: list[object] = [name]
        bars = []
        data[name] = {}
        for policy in ALL_POLICIES:
            result = matrix[name][policy]
            breakdown = result.ispi_breakdown()
            row.append(result.total_ispi)
            bars.append((policy.label, breakdown))
            data[name][policy.value] = dict(breakdown)
        table.add_row(*row)
        groups.append((name, bars))
    chart = breakdown_chart(f"{title} ({config.describe()})", groups)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        paper_ref=paper_ref,
        tables=[table],
        charts=[chart],
        data={"per_benchmark": data, "components": list(COMPONENTS)},
        notes=notes,
    )


def run_figure1(
    runner: SimulationRunner, benchmarks: Sequence[str] = FIGURE_BENCHMARKS
) -> ExperimentResult:
    """Reproduce Figure 1 (baseline: 5-cycle miss penalty)."""
    config = SimConfig(policy=FetchPolicy.ORACLE)  # policy swapped per run
    return _breakdown_experiment(
        runner,
        benchmarks,
        config,
        experiment_id="figure1",
        title="Penalty breakdown, base architecture",
        paper_ref="Figure 1",
        notes=(
            "Headline claims at 5-cycle miss penalty: Optimistic < "
            "Pessimistic; Resume best (close to Oracle); Decode ~ "
            "Pessimistic."
        ),
    )
