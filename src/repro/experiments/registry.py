"""Experiment registry: id -> runner function.

The single authoritative map from the paper's artifact ids (``table2`` ..
``figure4``) plus the ablation ids to the functions that regenerate them.
Used by the CLI, the benchmark harness, and the integration tests.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.runner import SimulationRunner
from repro.errors import ExperimentError
from repro.experiments.adaptive import run_adaptive
from repro.experiments.ablations import (
    run_ablation_assoc,
    run_ablation_btb,
    run_ablation_btbupd,
    run_ablation_linesize,
    run_ablation_pht,
    run_ablation_pht_size,
    run_ablation_ras,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.baseline import run_figure1
from repro.experiments.extensions import (
    run_extension_l2,
    run_extension_nonblocking,
    run_extension_prefetch_variants,
    run_extension_reorder,
    run_extension_streambuffer,
)
from repro.experiments.cachesize import run_table6
from repro.experiments.characterization import run_table2, run_table3
from repro.experiments.depth import run_table5
from repro.experiments.latency import run_figure2
from repro.experiments.missclass import run_table4
from repro.experiments.prefetch import run_figure3, run_figure4, run_table7

ExperimentFn = Callable[[SimulationRunner], ExperimentResult]


def _run_robustness(runner: SimulationRunner) -> ExperimentResult:
    """Lazy wrapper: repro.analysis imports experiment machinery, so the
    registry must import it only at call time (avoids a cycle)."""
    from repro.analysis.robustness import run_robustness

    return run_robustness(runner)

#: All experiments in paper order, then ablations.
EXPERIMENTS: dict[str, ExperimentFn] = {
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "figure1": run_figure1,
    "figure2": run_figure2,
    "table5": run_table5,
    "table6": run_table6,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "table7": run_table7,
    "ablation_btb": run_ablation_btb,
    "ablation_pht": run_ablation_pht,
    "ablation_assoc": run_ablation_assoc,
    "ablation_btbupd": run_ablation_btbupd,
    "ablation_ras": run_ablation_ras,
    "ablation_pht_size": run_ablation_pht_size,
    "ablation_linesize": run_ablation_linesize,
    "extension_nonblocking": run_extension_nonblocking,
    "extension_l2": run_extension_l2,
    "extension_prefetch_variants": run_extension_prefetch_variants,
    "extension_reorder": run_extension_reorder,
    "extension_streambuffer": run_extension_streambuffer,
    "adaptive": run_adaptive,
    "robustness": _run_robustness,
}

#: The experiments reproducing paper artifacts (no ablations, extensions,
#: or beyond-the-paper studies like the adaptive scheduler).
PAPER_EXPERIMENTS: tuple[str, ...] = tuple(
    eid
    for eid in EXPERIMENTS
    if not eid.startswith(("ablation_", "extension_", "robustness", "adaptive"))
)


def get_experiment(experiment_id: str) -> ExperimentFn:
    """Look up an experiment by id; raises for unknown ids."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(EXPERIMENTS)}"
        ) from None


def run_experiment(
    experiment_id: str, runner: SimulationRunner
) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id)(runner)
