"""Generic parameter sweeps.

The paper-artifact experiments are fixed sweeps; this module is the
free-form counterpart: a cartesian sweep over any
:class:`~repro.config.SimConfig` fields, returning long-format rows that
feed tables, CSV export, or external plotting.  Used by
``examples/custom_sweep.py`` and available to downstream users who want
to explore configurations the paper never ran.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, fields, replace

from repro.config import SimConfig
from repro.core.results import SimulationResult
from repro.core.runner import SimulationRunner
from repro.errors import ExperimentError
from repro.report.format import Table

#: Metrics extractable per run: name -> function of the result.
METRICS: dict[str, Callable[[SimulationResult], float]] = {
    "total_ispi": lambda r: r.total_ispi,
    "miss_percent": lambda r: r.miss_rate_percent,
    "memory_accesses": lambda r: float(r.counters.memory_accesses),
    "branch_ispi": lambda r: r.ispi("branch"),
    "rt_icache_ispi": lambda r: r.ispi("rt_icache"),
    "wrong_icache_ispi": lambda r: r.ispi("wrong_icache"),
    "bus_ispi": lambda r: r.ispi("bus"),
    "force_resolve_ispi": lambda r: r.ispi("force_resolve"),
    "branch_full_ispi": lambda r: r.ispi("branch_full"),
    "cycles": lambda r: r.total_cycles,
}

_CONFIG_FIELDS = {f.name for f in fields(SimConfig)}


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One (benchmark, parameter assignment) result row."""

    benchmark: str
    parameters: tuple[tuple[str, object], ...]
    metrics: dict[str, float]
    result: SimulationResult

    def parameter(self, name: str) -> object:
        """Value of one swept parameter at this point."""
        for key, value in self.parameters:
            if key == name:
                return value
        raise ExperimentError(f"parameter {name!r} was not swept")


class Sweep:
    """A cartesian sweep definition.

    Example::

        sweep = Sweep(
            base=SimConfig(),
            axes={
                "policy": [FetchPolicy.RESUME, FetchPolicy.PESSIMISTIC],
                "miss_penalty_cycles": [5, 10, 20],
            },
        )
        points = sweep.run(runner, benchmarks=["gcc"])
        print(sweep.table(points, metric="total_ispi").render())
    """

    def __init__(
        self,
        base: SimConfig,
        axes: Mapping[str, Sequence[object]],
        metrics: Sequence[str] = ("total_ispi",),
    ) -> None:
        if not axes:
            raise ExperimentError("a sweep needs at least one axis")
        unknown = set(axes) - _CONFIG_FIELDS
        if unknown:
            raise ExperimentError(
                f"unknown SimConfig fields: {sorted(unknown)}"
            )
        for name, values in axes.items():
            if not values:
                raise ExperimentError(f"axis {name!r} has no values")
        bad_metrics = set(metrics) - set(METRICS)
        if bad_metrics:
            raise ExperimentError(
                f"unknown metrics {sorted(bad_metrics)}; "
                f"known: {sorted(METRICS)}"
            )
        self.base = base
        self.axes = {name: list(values) for name, values in axes.items()}
        self.metrics = list(metrics)

    def configurations(self) -> list[tuple[tuple[tuple[str, object], ...], SimConfig]]:
        """All (parameter assignment, config) pairs, in axis order."""
        names = list(self.axes)
        combos = itertools.product(*(self.axes[name] for name in names))
        out = []
        for combo in combos:
            assignment = tuple(zip(names, combo))
            config = replace(self.base, **dict(assignment))
            out.append((assignment, config))
        return out

    def run(
        self,
        runner: SimulationRunner,
        benchmarks: Sequence[str],
    ) -> list[SweepPoint]:
        """Execute the sweep; points ordered benchmark-major."""
        points: list[SweepPoint] = []
        for name in benchmarks:
            for assignment, config in self.configurations():
                result = runner.run(name, config)
                points.append(
                    SweepPoint(
                        benchmark=name,
                        parameters=assignment,
                        metrics={
                            metric: METRICS[metric](result)
                            for metric in self.metrics
                        },
                        result=result,
                    )
                )
        return points

    def table(
        self, points: Sequence[SweepPoint], metric: str = "total_ispi"
    ) -> Table:
        """Long-format table: one row per point."""
        if metric not in METRICS:
            raise ExperimentError(f"unknown metric {metric!r}")
        names = list(self.axes)
        table = Table(
            headers=["Benchmark", *names, metric],
            title=f"Sweep over {', '.join(names)}",
            float_format="{:.3f}",
        )
        for point in points:
            values = [self._render_value(point.parameter(n)) for n in names]
            table.add_row(point.benchmark, *values, point.metrics[metric])
        return table

    @staticmethod
    def _render_value(value: object) -> object:
        label = getattr(value, "label", None)
        return label if isinstance(label, str) else value
