"""Ablation experiments beyond the paper's tables.

These exercise the design choices the paper references but does not sweep
itself:

* ``ablation_btb``      — decoupled vs. coupled BTB (the Calder & Grunwald
  comparison the paper cites to justify its decoupled baseline).
* ``ablation_pht``      — PHT indexing: gshare vs. bimodal vs. GAg
  (the two-level-predictor lineage of §2.1).
* ``ablation_assoc``    — I-cache associativity 1/2/4 under Resume.
* ``ablation_btbupd``   — speculative vs. resolve-time BTB update
  (the paper's §4.1 observation that speculative update costs little).
* ``ablation_ras``      — BTB-predicted returns vs. a return address stack.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from repro.config import BranchConfig, CacheConfig, FetchPolicy, SimConfig
from repro.core.runner import SimulationRunner
from repro.experiments.base import ExperimentResult
from repro.report.format import Table, average_label, mean

#: A representative cross-language subset (keeps ablations affordable).
ABLATION_BENCHMARKS = ("doduc", "gcc", "li", "groff", "lic")


def run_ablation_btb(
    runner: SimulationRunner, benchmarks: Sequence[str] = ABLATION_BENCHMARKS
) -> ExperimentResult:
    """Decoupled vs. coupled BTB designs (branch penalty ISPI)."""
    perfect = SimConfig(policy=FetchPolicy.ORACLE, perfect_cache=True)
    table = Table(
        headers=["Program", "Decoupled", "Coupled", "Coupled/Decoupled"],
        title="Ablation: decoupled vs coupled BTB (branch penalty ISPI)",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        decoupled = runner.run(name, perfect)
        coupled = runner.run(
            name, replace(perfect, branch=BranchConfig(coupled=True))
        )
        d = decoupled.ispi("branch")
        c = coupled.ispi("branch")
        data[name] = {"decoupled": d, "coupled": c}
        table.add_row(name, d, c, c / d if d else float("nan"))
    table.add_separator()
    avg_d = mean(v["decoupled"] for v in data.values())
    avg_c = mean(v["coupled"] for v in data.values())
    table.add_row(average_label(data), avg_d, avg_c, avg_c / avg_d)
    return ExperimentResult(
        experiment_id="ablation_btb",
        title="Decoupled vs coupled BTB",
        paper_ref="§2.1 (Calder & Grunwald 94)",
        tables=[table],
        data={"per_benchmark": data},
        notes="Expected: decoupled design yields lower branch penalty "
        "(dynamic direction prediction for BTB-missing branches).",
    )


def run_ablation_pht(
    runner: SimulationRunner, benchmarks: Sequence[str] = ABLATION_BENCHMARKS
) -> ExperimentResult:
    """PHT indexing schemes (PHT mispredict ISPI)."""
    kinds = ("gshare", "bimodal", "gag")
    perfect = SimConfig(policy=FetchPolicy.ORACLE, perfect_cache=True)
    table = Table(
        headers=["Program", *kinds],
        title="Ablation: PHT indexing (PHT mispredict ISPI, 512 entries)",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        data[name] = {}
        row: list[object] = [name]
        for kind in kinds:
            result = runner.run(
                name, replace(perfect, branch=BranchConfig(pht_kind=kind))
            )
            ispi = result.branch_ispi("pht_mispredict")
            data[name][kind] = ispi
            row.append(ispi)
        table.add_row(*row)
    table.add_separator()
    table.add_row(
        average_label(data), *(mean(d[k] for d in data.values()) for k in kinds)
    )
    return ExperimentResult(
        experiment_id="ablation_pht",
        title="PHT indexing schemes",
        paper_ref="§2.1 (McFarling 93, Yeh & Patt 92)",
        tables=[table],
        data={"per_benchmark": data},
    )


def run_ablation_assoc(
    runner: SimulationRunner, benchmarks: Sequence[str] = ABLATION_BENCHMARKS
) -> ExperimentResult:
    """I-cache associativity sweep under Resume (8K cache)."""
    assocs = (1, 2, 4)
    table = Table(
        headers=["Program"]
        + [f"miss%-{a}w" for a in assocs]
        + [f"ISPI-{a}w" for a in assocs],
        title="Ablation: I-cache associativity (8K, Resume)",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        data[name] = {}
        miss_cells: list[object] = []
        ispi_cells: list[object] = []
        for assoc in assocs:
            config = replace(
                SimConfig(policy=FetchPolicy.RESUME),
                cache=CacheConfig(assoc=assoc),
            )
            result = runner.run(name, config)
            data[name][f"miss_{assoc}"] = result.miss_rate_percent
            data[name][f"ispi_{assoc}"] = result.total_ispi
            miss_cells.append(result.miss_rate_percent)
            ispi_cells.append(result.total_ispi)
        table.add_row(name, *miss_cells, *ispi_cells)
    return ExperimentResult(
        experiment_id="ablation_assoc",
        title="I-cache associativity",
        paper_ref="beyond the paper (direct-mapped only there)",
        tables=[table],
        data={"per_benchmark": data},
    )


def run_ablation_btbupd(
    runner: SimulationRunner, benchmarks: Sequence[str] = ABLATION_BENCHMARKS
) -> ExperimentResult:
    """Speculative vs resolve-time BTB update (misfetch ISPI)."""
    perfect = SimConfig(policy=FetchPolicy.ORACLE, perfect_cache=True)
    table = Table(
        headers=["Program", "Speculative", "AtResolve"],
        title="Ablation: BTB update timing (misfetch ISPI)",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        spec = runner.run(name, perfect)
        resolved = runner.run(
            name,
            replace(perfect, branch=BranchConfig(speculative_btb_update=False)),
        )
        data[name] = {
            "speculative": spec.branch_ispi("btb_misfetch"),
            "resolved": resolved.branch_ispi("btb_misfetch"),
        }
        table.add_row(name, data[name]["speculative"], data[name]["resolved"])
    return ExperimentResult(
        experiment_id="ablation_btbupd",
        title="BTB update timing",
        paper_ref="§4.1 (speculative BTB update)",
        tables=[table],
        data={"per_benchmark": data},
        notes="The paper found speculative updating costs little even at "
        "depth 4; the two columns should be close.",
    )


def run_ablation_pht_size(
    runner: SimulationRunner, benchmarks: Sequence[str] = ABLATION_BENCHMARKS
) -> ExperimentResult:
    """PHT capacity sweep: how much of the paper's mispredict penalty is
    aliasing in its tiny 512-entry table?"""
    sizes = (256, 512, 2048, 8192)
    perfect = SimConfig(policy=FetchPolicy.ORACLE, perfect_cache=True)
    table = Table(
        headers=["Program", *(str(s) for s in sizes)],
        title="Ablation: gshare PHT capacity (PHT mispredict ISPI)",
    )
    data: dict[str, dict[int, float]] = {}
    for name in benchmarks:
        data[name] = {}
        row: list[object] = [name]
        for size in sizes:
            # History width pinned at the paper's 9 bits so the sweep
            # isolates capacity (the default scales history with size,
            # which fragments contexts and confounds the comparison).
            result = runner.run(
                name,
                replace(
                    perfect,
                    branch=BranchConfig(pht_entries=size, history_bits=9),
                ),
            )
            ispi = result.branch_ispi("pht_mispredict")
            data[name][size] = ispi
            row.append(ispi)
        table.add_row(*row)
    table.add_separator()
    table.add_row(
        average_label(data), *(mean(d[s] for d in data.values()) for s in sizes)
    )
    return ExperimentResult(
        experiment_id="ablation_pht_size",
        title="gshare PHT capacity",
        paper_ref="§4.1 (the paper fixes 512 entries)",
        tables=[table],
        data={"per_benchmark": data},
        notes="Expected: monotone improvement with capacity; the gap "
        "between 512 and 8192 is the aliasing share of the penalty.",
    )


def run_ablation_linesize(
    runner: SimulationRunner, benchmarks: Sequence[str] = ABLATION_BENCHMARKS
) -> ExperimentResult:
    """Line-size sweep, with and without fetchahead prefetching.

    Smith & Hsu studied machines with very large I-cache lines, where the
    *fetchahead distance* becomes critical.  This sweep shows why: with
    32-byte lines prefetching has little room to run ahead; with 128-byte
    lines the prefetcher covers most of the sequential stream.
    """
    line_sizes = (16, 32, 64, 128)
    base = SimConfig(policy=FetchPolicy.RESUME)
    table = Table(
        headers=["Program"]
        + [f"miss%-{ls}B" for ls in line_sizes]
        + [f"ISPI-{ls}B" for ls in line_sizes]
        + [f"ISPI-{ls}B+fa" for ls in line_sizes],
        title="Ablation: I-cache line size (8K, Resume; +fa = fetchahead "
        "prefetch, distance = half a line)",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        data[name] = {}
        miss_cells: list[object] = []
        ispi_cells: list[object] = []
        fa_cells: list[object] = []
        for line_size in line_sizes:
            config = replace(base, cache=CacheConfig(line_size=line_size))
            plain = runner.run(name, config)
            fetchahead = runner.run(
                name,
                replace(
                    config,
                    prefetch=True,
                    prefetch_variant="fetchahead",
                    fetchahead_distance=max(1, line_size // 8),
                ),
            )
            data[name][f"miss_{line_size}"] = plain.miss_rate_percent
            data[name][f"ispi_{line_size}"] = plain.total_ispi
            data[name][f"ispi_fa_{line_size}"] = fetchahead.total_ispi
            miss_cells.append(plain.miss_rate_percent)
            ispi_cells.append(plain.total_ispi)
            fa_cells.append(fetchahead.total_ispi)
        table.add_row(name, *miss_cells, *ispi_cells, *fa_cells)
    return ExperimentResult(
        experiment_id="ablation_linesize",
        title="I-cache line size and fetchahead prefetching",
        paper_ref="§2.2 (Smith & Hsu 92)",
        tables=[table],
        data={"per_benchmark": data},
        notes="Larger lines exploit spatial locality (fewer distinct "
        "misses); fetchahead prefetching recovers most of the sequential "
        "stream once lines are large enough to run ahead in.  The fill "
        "service time is held constant across line sizes to isolate the "
        "locality effect (a real channel would charge wide lines more).",
    )


def run_ablation_ras(
    runner: SimulationRunner, benchmarks: Sequence[str] = ABLATION_BENCHMARKS
) -> ExperimentResult:
    """Return prediction: BTB entry vs return address stack."""
    perfect = SimConfig(policy=FetchPolicy.ORACLE, perfect_cache=True)
    table = Table(
        headers=["Program", "BTB-returns", "RAS"],
        title="Ablation: return prediction (BTB mispredict ISPI)",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        btb = runner.run(name, perfect)
        ras = runner.run(
            name, replace(perfect, branch=BranchConfig(use_ras=True))
        )
        data[name] = {
            "btb": btb.branch_ispi("btb_mispredict"),
            "ras": ras.branch_ispi("btb_mispredict"),
        }
        table.add_row(name, data[name]["btb"], data[name]["ras"])
    return ExperimentResult(
        experiment_id="ablation_ras",
        title="Return prediction mechanism",
        paper_ref="beyond the paper (PowerPC-style RAS)",
        tables=[table],
        data={"per_benchmark": data},
        notes="A RAS should remove most return-target mispredicts.",
    )
