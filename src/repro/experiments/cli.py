"""Command-line entry point: regenerate paper tables/figures.

Usage (installed as ``repro-experiment``, or ``python -m repro``):

    repro-experiment table5
    repro-experiment figure1 figure3 --trace-length 400000
    repro-experiment all
    repro-experiment --list
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.core.runner import DEFAULT_TRACE_LENGTH, SimulationRunner
from repro.experiments.registry import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate tables/figures from 'Instruction Cache Fetch "
            "Policies for Speculative Execution' (ISCA 1995)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (e.g. table5, figure1) or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list known experiment ids"
    )
    parser.add_argument(
        "--trace-length",
        type=int,
        default=DEFAULT_TRACE_LENGTH,
        help="dynamic instructions per benchmark (default %(default)s)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=None,
        help="unmeasured warmup instructions (default: trace length / 4, "
        "capped at 50k)",
    )
    parser.add_argument(
        "--seed", type=int, default=1995, help="trace seed (default 1995)"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent artifact cache: built programs and generated "
        "traces are stored under DIR keyed by (workload, trace length, "
        "seed, generator version) and reused by later runs (safe to share "
        "between concurrent processes)",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        metavar="DIR",
        help="also write each experiment's artifacts (txt, csv, json, and "
        "svg for figures) into DIR",
    )
    parser.add_argument(
        "--trace-events",
        default=None,
        metavar="PATH",
        help="stream cycle-level simulation events to PATH as JSON lines "
        "(one typed event per line; slows simulation)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the aggregated metrics registry (plus per-phase "
        "profile) to PATH as JSON after all experiments finish",
    )
    return parser


def _save_artifacts(result, directory: str) -> None:
    import os

    from repro.errors import ExperimentError
    from repro.report import (
        save_breakdown_svg,
        save_experiment_csv,
        save_experiment_json,
    )

    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, result.experiment_id)
    with open(base + ".txt", "w", encoding="utf-8") as handle:
        handle.write(result.render() + "\n")
    save_experiment_csv(result, directory)
    save_experiment_json(result, base + ".json")
    if result.charts:
        try:
            save_breakdown_svg(result, base + ".svg")
        except ExperimentError:
            pass


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    if not args.experiments:
        print("no experiments given; try --list", file=sys.stderr)
        return 2
    ids = list(args.experiments)
    if ids == ["all"]:
        ids = list(EXPERIMENTS)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        return 2
    observer = None
    if args.trace_events or args.metrics_out:
        from repro.obs import JsonlSink, Observer, PhaseProfiler

        sink = JsonlSink(args.trace_events) if args.trace_events else None
        observer = Observer(sink=sink, profiler=PhaseProfiler())
    runner = SimulationRunner(
        trace_length=args.trace_length,
        seed=args.seed,
        warmup=args.warmup,
        observer=observer,
        cache_dir=args.cache_dir,
    )
    try:
        for experiment_id in ids:
            started = time.perf_counter()
            result = run_experiment(experiment_id, runner)
            elapsed = time.perf_counter() - started
            print(result.render())
            print(f"[{experiment_id} regenerated in {elapsed:.1f}s]")
            print()
            if args.output_dir:
                _save_artifacts(result, args.output_dir)
    finally:
        if observer is not None:
            observer.close()
    if observer is not None:
        if args.metrics_out:
            from repro.report import save_metrics_json

            save_metrics_json(
                observer.registry, args.metrics_out, profile=observer.profiler
            )
            print(f"[metrics written to {args.metrics_out}]")
        if args.trace_events:
            print(
                f"[{observer.events_emitted} events written to "
                f"{args.trace_events}]"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
