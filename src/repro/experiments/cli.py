"""Command-line entry point: regenerate paper tables/figures.

Usage (installed as ``repro-experiment``, or ``python -m repro``):

    repro-experiment table5
    repro-experiment figure1 figure3 --trace-length 400000
    repro-experiment all
    repro-experiment --list
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.core.runner import DEFAULT_TRACE_LENGTH, SimulationRunner
from repro.errors import ExperimentError
from repro.experiments.registry import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate tables/figures from 'Instruction Cache Fetch "
            "Policies for Speculative Execution' (ISCA 1995)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (e.g. table5, figure1) or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list known experiment ids"
    )
    parser.add_argument(
        "--trace-length",
        type=int,
        default=DEFAULT_TRACE_LENGTH,
        help="dynamic instructions per benchmark (default %(default)s)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=None,
        help="unmeasured warmup instructions (default: trace length / 4, "
        "capped at 50k)",
    )
    parser.add_argument(
        "--seed", type=int, default=1995, help="trace seed (default 1995)"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent artifact cache: built programs and generated "
        "traces are stored under DIR keyed by (workload, trace length, "
        "seed, generator version) and reused by later runs (safe to share "
        "between concurrent processes)",
    )
    parser.add_argument(
        "--replay",
        choices=("auto", "off"),
        default="auto",
        help="prediction-stream replay: 'auto' records the branch "
        "predictor's outcome stream once per workload and replays it "
        "across every replay-eligible configuration (architectural "
        "branch schedule or perfect cache), 'off' always runs the live "
        "predictor (results are bit-identical either way; default "
        "%(default)s)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "event", "vector"),
        default="auto",
        help="engine backend: 'auto' lets each cell pick through the "
        "build_engine seam (vectorized batch backend for replay-eligible "
        "cells with a recorded stream, event loop otherwise), 'event' "
        "forces the event loop everywhere, 'vector' requests the "
        "vectorized backend (ineligible cells still fall back to the "
        "event loop; results are bit-identical either way; default "
        "%(default)s)",
    )
    parser.add_argument(
        "--server",
        default=None,
        metavar="ADDRESS",
        help="run sweep cells on a repro.service sweep server at ADDRESS "
        "(host:port or unix:path) instead of simulating locally: finished "
        "cells come from the server's content-addressed result store, "
        "concurrent identical requests are deduplicated, and transport "
        "failures retry automatically (start one with "
        "'python -m repro.service --data-dir DIR')",
    )
    parser.add_argument(
        "--client-id",
        default=None,
        metavar="NAME",
        help="client identity reported to --server for fair scheduling "
        "(default: user@host)",
    )
    parser.add_argument(
        "--priority",
        type=int,
        default=0,
        metavar="N",
        help="scheduling priority hint for --server requests (higher runs "
        "first; default %(default)s)",
    )
    parser.add_argument(
        "--cache-prune",
        action="store_true",
        help="before running, delete artifact-cache entries no current "
        "reader can hit (old format/generator/stream versions); requires "
        "--cache-dir; with no experiments given, prune and exit",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        metavar="DIR",
        help="also write each experiment's artifacts (txt, csv, json, and "
        "svg for figures) into DIR",
    )
    parser.add_argument(
        "--trace-events",
        default=None,
        metavar="PATH",
        help="stream cycle-level simulation events to PATH as JSON lines "
        "(one typed event per line; slows simulation)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the aggregated metrics registry (plus per-phase "
        "profile) to PATH as JSON after all experiments finish",
    )
    fault = parser.add_argument_group("fault tolerance")
    fault.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="re-run a sweep cell up to N times after a transient failure "
        "(worker crash, timeout, corrupted cache entry) with bounded "
        "exponential backoff; deterministic failures never retry "
        "(default %(default)s)",
    )
    fault.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog deadline per sweep cell; a cell that exceeds it is "
        "killed and treated as a transient failure (default: no timeout)",
    )
    fault.add_argument(
        "--on-error",
        choices=("raise", "skip"),
        default="raise",
        help="after retries are exhausted: 'raise' aborts the experiment, "
        "'skip' records the failure, leaves the cell blank in tables/CSV/"
        "JSON, and keeps going (default %(default)s)",
    )
    fault.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="journal each completed (benchmark, config) result under DIR; "
        "re-running with the same DIR resumes, replaying finished cells "
        "from the journal instead of simulating them again",
    )
    fault.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPECS",
        help="comma-separated fault specs 'phase:kind[:benchmark"
        "[:invocation[:seconds]]]' (phases: build, generate, cache_load, "
        "cache_store, simulate; kinds: crash, bug, exit, delay, corrupt) "
        "injected deterministically — for testing the fault-tolerance "
        "machinery itself",
    )
    fault.add_argument(
        "--fault-state",
        default=None,
        metavar="DIR",
        help="shared state directory for --inject-faults one-shot "
        "bookkeeping (default: a fresh temporary directory)",
    )
    return parser


def _save_artifacts(result, directory: str) -> None:
    import os

    from repro.errors import ExperimentError
    from repro.report import (
        save_breakdown_svg,
        save_experiment_csv,
        save_experiment_json,
    )

    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, result.experiment_id)
    with open(base + ".txt", "w", encoding="utf-8") as handle:
        handle.write(result.render() + "\n")
    save_experiment_csv(result, directory)
    save_experiment_json(result, base + ".json")
    if result.charts:
        try:
            save_breakdown_svg(result, base + ".svg")
        except (ExperimentError, OSError) as exc:
            print(
                f"warning: svg export failed for {result.experiment_id}: {exc}",
                file=sys.stderr,
            )


def _report_failures(runner, output_dir: str | None) -> None:
    """Print the structured failure report; also save it under *output_dir*."""
    if not runner.failures:
        return
    cells = sum(f.cells for f in runner.failures)
    print(
        f"warning: {cells} sweep cell(s) skipped after errors:",
        file=sys.stderr,
    )
    for failure in runner.failures:
        print(f"  - {failure.describe()}", file=sys.stderr)
    if output_dir:
        import json
        import os

        os.makedirs(output_dir, exist_ok=True)
        path = os.path.join(output_dir, "failures.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                [failure.as_dict() for failure in runner.failures],
                handle,
                indent=2,
            )
            handle.write("\n")
        print(f"[failure report written to {path}]", file=sys.stderr)


def _build_remote_runner(args):
    """A RemoteRunner targeting ``--server`` (local knobs don't apply)."""
    import getpass
    import socket as socket_module

    from repro.service import RemoteRunner, ServiceClient

    for flag, value in (
        ("--cache-dir", args.cache_dir),
        ("--checkpoint", args.checkpoint),
        ("--inject-faults", args.inject_faults),
        ("--trace-events", args.trace_events),
    ):
        if value:
            print(
                f"warning: {flag} is server-side state and is ignored "
                "with --server",
                file=sys.stderr,
            )
    client_id = args.client_id
    if not client_id:
        client_id = (
            f"{getpass.getuser()}@{socket_module.gethostname()}"
        )
    return RemoteRunner(
        ServiceClient(args.server),
        trace_length=args.trace_length,
        seed=args.seed,
        warmup=args.warmup,
        on_error=args.on_error,
        priority=args.priority,
        client_id=client_id,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    prune_stats = None
    if args.cache_prune:
        if not args.cache_dir:
            print("--cache-prune requires --cache-dir", file=sys.stderr)
            return 2
        from repro.core.artifacts import ArtifactCache

        prune_stats = ArtifactCache(args.cache_dir).prune()
        print(
            f"[cache prune: removed {prune_stats.entries} stale entr"
            f"{'y' if prune_stats.entries == 1 else 'ies'}, freed "
            f"{prune_stats.bytes_freed} bytes]"
        )
        if not args.experiments:
            return 0
    if not args.experiments:
        print("no experiments given; try --list", file=sys.stderr)
        return 2
    ids = list(args.experiments)
    if ids == ["all"]:
        ids = list(EXPERIMENTS)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        return 2
    observer = None
    if args.trace_events or args.metrics_out:
        from repro.obs import JsonlSink, Observer, PhaseProfiler

        sink = JsonlSink(args.trace_events) if args.trace_events else None
        observer = Observer(sink=sink, profiler=PhaseProfiler())
        if prune_stats is not None:
            observer.registry.inc("artifacts.pruned_entries", prune_stats.entries)
            observer.registry.inc("artifacts.pruned_bytes", prune_stats.bytes_freed)
    try:
        fault_plan = None
        if args.inject_faults:
            import tempfile

            from repro.core.faults import FaultPlan

            state_dir = args.fault_state or tempfile.mkdtemp(
                prefix="repro-faults-"
            )
            fault_plan = FaultPlan.parse(args.inject_faults, state_dir)
        if args.server:
            runner = _build_remote_runner(args)
        else:
            runner = SimulationRunner(
                trace_length=args.trace_length,
                seed=args.seed,
                warmup=args.warmup,
                observer=observer,
                cache_dir=args.cache_dir,
                retries=args.retries,
                job_timeout=args.job_timeout,
                on_error=args.on_error,
                checkpoint_dir=args.checkpoint,
                fault_plan=fault_plan,
                replay=args.replay,
                engine=args.engine,
            )
        try:
            for experiment_id in ids:
                started = time.perf_counter()
                result = run_experiment(experiment_id, runner)
                elapsed = time.perf_counter() - started
                print(result.render())
                print(f"[{experiment_id} regenerated in {elapsed:.1f}s]")
                print()
                if args.output_dir:
                    _save_artifacts(result, args.output_dir)
        finally:
            if observer is not None:
                observer.close()
        _report_failures(runner, args.output_dir)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    if observer is not None:
        if args.metrics_out:
            from repro.report import save_metrics_json

            save_metrics_json(
                observer.registry, args.metrics_out, profile=observer.profiler
            )
            print(f"[metrics written to {args.metrics_out}]")
        if args.trace_events:
            print(
                f"[{observer.events_emitted} events written to "
                f"{args.trace_events}]"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
