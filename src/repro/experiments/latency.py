"""Figure 2: influence of a long (20-cycle) I-cache miss penalty.

Same breakdown as Figure 1 but with the high miss latency, where the
paper's conclusion flips: the conservative policies catch up with (and for
C/C++ programs overtake) the aggressive ones, because wrong-path fills tie
up the memory channel exactly when the right path needs it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from repro.config import FetchPolicy, SimConfig
from repro.core.runner import SimulationRunner
from repro.experiments.base import ExperimentResult
from repro.experiments.baseline import _breakdown_experiment
from repro.program.workloads import FIGURE_BENCHMARKS

#: The paper's "high" miss penalty in cycles.
LONG_MISS_PENALTY_CYCLES = 20


def run_figure2(
    runner: SimulationRunner, benchmarks: Sequence[str] = FIGURE_BENCHMARKS
) -> ExperimentResult:
    """Reproduce Figure 2 (20-cycle miss penalty)."""
    config = replace(
        SimConfig(policy=FetchPolicy.ORACLE),
        miss_penalty_cycles=LONG_MISS_PENALTY_CYCLES,
    )
    result = _breakdown_experiment(
        runner,
        benchmarks,
        config,
        experiment_id="figure2",
        title="Penalty breakdown, long miss latency",
        paper_ref="Figure 2",
        notes=(
            "Headline claims at 20-cycle miss penalty: Pessimistic "
            "becomes competitive with / better than Optimistic for the "
            "C and C++ programs; Resume ~ Pessimistic on average but with "
            "more memory traffic."
        ),
    )
    return result
