"""Extension experiments: the paper's §6 "further study" directions.

* ``extension_nonblocking`` — non-blocking I-cache (multiple background
  fill buffers) and pipelined miss requests, under Resume at the long
  miss latency where the paper found Resume losing its edge.
* ``extension_prefetch_variants`` — Smith 82's next-line trigger options
  (tagged / always / on-miss) and Pierce & Mudge-style target
  prefetching, alone and combined with next-line.
* ``extension_reorder`` — profile-driven code reordering: hot-first vs
  original vs pessimal layouts of the same program.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from repro.config import FetchPolicy, SimConfig
from repro.core.engine import simulate
from repro.core.runner import SimulationRunner
from repro.experiments.base import ExperimentResult
from repro.program.reorder import function_heat, reorder_program
from repro.report.format import Table, average_label, mean
from repro.trace.generator import generate_trace

#: Representative cross-language subset.
EXTENSION_BENCHMARKS = ("doduc", "gcc", "li", "groff", "lic")


def run_extension_nonblocking(
    runner: SimulationRunner,
    benchmarks: Sequence[str] = EXTENSION_BENCHMARKS,
) -> ExperimentResult:
    """Non-blocking I-cache / pipelined misses at the 20-cycle penalty."""
    base = replace(
        SimConfig(policy=FetchPolicy.RESUME), miss_penalty_cycles=20
    )
    variants: dict[str, SimConfig] = {
        "1buf": base,
        "2buf": replace(base, fill_buffers=2),
        "4buf+pipe": replace(base, fill_buffers=4, bus_interleave_cycles=2),
        "Pess": replace(base, policy=FetchPolicy.PESSIMISTIC),
    }
    table = Table(
        headers=["Program", *variants],
        title="Extension: non-blocking I-cache under Resume "
        "(20-cycle penalty; Pessimistic for reference)",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        data[name] = {}
        row: list[object] = [name]
        for label, config in variants.items():
            result = runner.run(name, config)
            data[name][label] = result.total_ispi
            row.append(result.total_ispi)
        table.add_row(*row)
    table.add_separator()
    table.add_row(
        average_label(data),
        *(mean(d[label] for d in data.values()) for label in variants),
    )
    return ExperimentResult(
        experiment_id="extension_nonblocking",
        title="Non-blocking I-cache and pipelined misses",
        paper_ref="§6 future work",
        tables=[table],
        data={"per_benchmark": data},
        notes=(
            "The paper found Resume losing its edge at long latencies "
            "because one wrong-path fill monopolises the single channel "
            "and buffer; extra fill buffers plus a pipelined channel "
            "should claw that back."
        ),
    )


def run_extension_prefetch_variants(
    runner: SimulationRunner,
    benchmarks: Sequence[str] = EXTENSION_BENCHMARKS,
) -> ExperimentResult:
    """Next-line trigger variants and target prefetching (Resume, 5cyc)."""
    base = SimConfig(policy=FetchPolicy.RESUME)
    variants: dict[str, SimConfig] = {
        "none": base,
        "tagged": replace(base, prefetch=True),
        "always": replace(base, prefetch=True, prefetch_variant="always"),
        "on-miss": replace(base, prefetch=True, prefetch_variant="on-miss"),
        "fetchahead": replace(
            base, prefetch=True, prefetch_variant="fetchahead"
        ),
        "target": replace(base, target_prefetch=True),
        "tag+tgt": replace(base, prefetch=True, target_prefetch=True),
    }
    ispi_table = Table(
        headers=["Program", *variants],
        title="Extension: prefetch variants (Resume, total penalty ISPI)",
    )
    traffic_table = Table(
        headers=["Program", *variants],
        title="Memory traffic relative to no prefetching",
    )
    data: dict[str, dict[str, dict[str, float]]] = {}
    for name in benchmarks:
        data[name] = {}
        ispi_row: list[object] = [name]
        traffic_row: list[object] = [name]
        baseline_mem = None
        for label, config in variants.items():
            result = runner.run(name, config)
            mem = result.counters.memory_accesses
            if baseline_mem is None:
                baseline_mem = mem
            data[name][label] = {
                "ispi": result.total_ispi,
                "traffic": mem / baseline_mem,
            }
            ispi_row.append(result.total_ispi)
            traffic_row.append(mem / baseline_mem)
        ispi_table.add_row(*ispi_row)
        traffic_table.add_row(*traffic_row)
    ispi_table.add_separator()
    ispi_table.add_row(
        average_label(data),
        *(
            mean(data[n][label]["ispi"] for n in benchmarks)
            for label in variants
        ),
    )
    return ExperimentResult(
        experiment_id="extension_prefetch_variants",
        title="Prefetch trigger variants and target prefetching",
        paper_ref="§2.2 (Smith 82; Smith & Hsu 92; Pierce & Mudge 94)",
        tables=[ispi_table, traffic_table],
        data={"per_benchmark": data},
        notes=(
            "Pierce reports next-line prefetching contributing 70-80% of "
            "the combined scheme's gain; compare 'tagged' vs 'target' vs "
            "'tag+tgt' to see the same split."
        ),
    )


def run_extension_streambuffer(
    runner: SimulationRunner,
    benchmarks: Sequence[str] = ("doduc", "fpppp", "gcc", "li", "groff", "lic"),
    cache_bytes: int = 4096,
) -> ExperimentResult:
    """Jouppi stream buffers (§2.2): misses removed from a small cache.

    Jouppi 90 (as quoted by the paper) found a four-entry stream buffer
    removing ~85% of the misses of a 4KB I-cache.  We measure the
    fraction of right-path misses no longer requiring a demand fill with
    1/2/4 stream buffers on a 4K cache, plus the ISPI effect, and compare
    against the paper's next-line prefetcher on the same cache.
    """
    from repro.config import CacheConfig

    base = replace(
        SimConfig(policy=FetchPolicy.ORACLE),
        cache=CacheConfig(size_bytes=cache_bytes),
    )
    sweeps: dict[str, SimConfig] = {
        "1sb": replace(base, stream_buffers=1),
        "2sb": replace(base, stream_buffers=2),
        "4sb": replace(base, stream_buffers=4),
        "next-line": replace(base, prefetch=True),
    }
    table = Table(
        headers=["Program", "miss%"]
        + [f"removed-{label}" for label in sweeps]
        + ["ISPI-none", "ISPI-4sb"],
        title=f"Extension: Jouppi stream buffers "
        f"({cache_bytes // 1024}K cache; fraction of demand fills removed)",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        plain = runner.run(name, base)
        baseline_fills = plain.counters.right_fills
        data[name] = {"miss": plain.miss_rate_percent}
        removed_cells: list[object] = []
        ispi_4sb = None
        for label, config in sweeps.items():
            result = runner.run(name, config)
            removed = (
                1.0 - result.counters.right_fills / baseline_fills
                if baseline_fills
                else 0.0
            )
            data[name][f"removed_{label}"] = removed
            removed_cells.append(removed)
            if label == "4sb":
                ispi_4sb = result.total_ispi
                data[name]["ispi_4sb"] = ispi_4sb
        data[name]["ispi_none"] = plain.total_ispi
        table.add_row(
            name, plain.miss_rate_percent, *removed_cells,
            plain.total_ispi, ispi_4sb,
        )
    table.add_separator()
    table.add_row(
        average_label(data),
        mean(d["miss"] for d in data.values()),
        *(
            mean(d[f"removed_{label}"] for d in data.values())
            for label in sweeps
        ),
        mean(d["ispi_none"] for d in data.values()),
        mean(d["ispi_4sb"] for d in data.values()),
    )
    return ExperimentResult(
        experiment_id="extension_streambuffer",
        title="Jouppi stream buffers",
        paper_ref="§2.2 (Jouppi 90)",
        tables=[table],
        data={"per_benchmark": data},
        notes=(
            "Jouppi's quoted figure: a 4-entry stream buffer removes ~85% "
            "of a 4KB I-cache's misses — our most sequential workload "
            "(fpppp) reproduces that; branchy C/C++ codes see 55-65%."
        ),
    )


def run_extension_l2(
    runner: SimulationRunner,
    benchmarks: Sequence[str] = EXTENSION_BENCHMARKS,
) -> ExperimentResult:
    """A second-level cache makes the paper's latency regimes endogenous.

    With a 20-cycle memory, the paper recommends Pessimistic; with a
    5-cycle next level it recommends Resume.  An L2 of growing size moves
    the *effective* L1 miss penalty from 20 cycles towards 5, so the
    winning policy should flip from Pessimistic to Resume as the L2
    grows — both of the paper's §5 conclusions from a single machine.
    """
    base = replace(SimConfig(), miss_penalty_cycles=20)
    l2_sizes = (None, 32 * 1024, 64 * 1024, 256 * 1024)
    policies = (FetchPolicy.RESUME, FetchPolicy.PESSIMISTIC)

    def label(size: int | None) -> str:
        return "noL2" if size is None else f"L2-{size // 1024}K"

    headers = ["Program"]
    for size in l2_sizes:
        headers.extend(f"{label(size)}-{p.label}" for p in policies)
    table = Table(
        headers=headers,
        title="Extension: second-level cache "
        "(20-cycle memory, 5-cycle L2 hit; Res vs Pess ISPI)",
    )
    data: dict[str, dict[str, float]] = {}
    for name in benchmarks:
        data[name] = {}
        row: list[object] = [name]
        for size in l2_sizes:
            for policy in policies:
                config = replace(
                    base.with_policy(policy), l2_size_bytes=size
                )
                result = runner.run(name, config)
                key = f"{label(size)}-{policy.label}"
                data[name][key] = result.total_ispi
                row.append(result.total_ispi)
        table.add_row(*row)
    table.add_separator()
    avg_row: list[object] = [average_label(data)]
    for size in l2_sizes:
        for policy in policies:
            key = f"{label(size)}-{policy.label}"
            avg_row.append(mean(d[key] for d in data.values()))
    table.add_row(*avg_row)
    return ExperimentResult(
        experiment_id="extension_l2",
        title="Second-level cache: the latency regimes made endogenous",
        paper_ref="§5 summary / §6 ('on-chip hierarchy of caches')",
        tables=[table],
        data={"per_benchmark": data},
        notes=(
            "Expected shape: without an L2 Pessimistic wins (the 20-cycle "
            "regime); as the L2 grows and most L1 misses hit it at 5 "
            "cycles, Resume overtakes (the paper's small-latency regime)."
        ),
    )


def run_extension_reorder(
    runner: SimulationRunner,
    benchmarks: Sequence[str] = EXTENSION_BENCHMARKS,
    cache_bytes: int = 2048,
) -> ExperimentResult:
    """Profile-driven function reordering vs shuffled layouts.

    Layout matters for *conflict* misses among the resident hot set, so
    this experiment uses a deliberately small cache (2K by default) that
    the hot tier only fits when packed contiguously.  ``shuffle`` layouts
    model a linker with no profile information (average over three
    seeds); ``hot-first`` is the profile-driven placement.
    """
    from repro.config import CacheConfig

    config = replace(
        SimConfig(policy=FetchPolicy.RESUME),
        cache=CacheConfig(size_bytes=cache_bytes),
    )
    strategies = ("original", "hot-first", "shuffle")
    table = Table(
        headers=["Program"]
        + [f"miss%-{s}" for s in strategies]
        + [f"ISPI-{s}" for s in strategies],
        title=f"Extension: profile-driven code layout "
        f"({cache_bytes // 1024}K cache, Resume)",
    )
    data: dict[str, dict[str, dict[str, float]]] = {}
    for name in benchmarks:
        program = runner.program(name)
        profile_trace = runner.trace(name)
        heat = function_heat(program, profile_trace)
        data[name] = {}
        miss_cells: list[object] = []
        ispi_cells: list[object] = []
        for strategy in strategies:
            if strategy == "original":
                variants = [program]
            elif strategy == "hot-first":
                variants = [
                    reorder_program(program, heat=heat, strategy="hot-first")
                ]
            else:
                variants = [
                    reorder_program(program, strategy="shuffle", seed=s)
                    for s in (1, 2, 3)
                ]
            misses = []
            ispis = []
            for variant in variants:
                trace = generate_trace(
                    variant, runner.trace_length, seed=runner.seed
                )
                result = simulate(variant, trace, config, warmup=runner.warmup)
                misses.append(result.miss_rate_percent)
                ispis.append(result.total_ispi)
            data[name][strategy] = {
                "miss": mean(misses),
                "ispi": mean(ispis),
            }
            miss_cells.append(mean(misses))
            ispi_cells.append(mean(ispis))
        table.add_row(name, *miss_cells, *ispi_cells)
    return ExperimentResult(
        experiment_id="extension_reorder",
        title="Profile-driven code layout",
        paper_ref="§6 future work",
        tables=[table],
        data={"per_benchmark": data},
        notes=(
            "hot-first packs the resident set contiguously; shuffled "
            "layouts (profile-blind linker, 3 seeds averaged) scatter it. "
            "Finding: on this suite the differences are small — the miss "
            "rates are dominated by the warm/cold tiers' *capacity* "
            "misses, which no layout can remove.  This quantifies the "
            "paper's §6 speculation: reordering only pays where conflict "
            "misses within the resident set dominate."
        ),
    )
