"""Experiment infrastructure.

Every reproduced table/figure is an *experiment*: a function taking a
:class:`~repro.core.runner.SimulationRunner` and returning an
:class:`ExperimentResult` holding rendered tables/charts plus the raw data
(used by tests and by EXPERIMENTS.md generation).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.config import FetchPolicy, SimConfig
from repro.core.results import SimulationResult
from repro.core.runner import SimulationRunner
from repro.report.figures import StackedBarChart
from repro.report.format import Table


@dataclass(slots=True)
class ExperimentResult:
    """Output of one experiment run."""

    experiment_id: str
    title: str
    paper_ref: str
    tables: list[Table] = field(default_factory=list)
    charts: list[StackedBarChart] = field(default_factory=list)
    #: Machine-readable results keyed by whatever the experiment defines.
    data: dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """Render everything to a printable report."""
        parts = [f"== {self.experiment_id}: {self.title} ==",
                 f"(paper: {self.paper_ref})"]
        if self.notes:
            parts.append(self.notes)
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        for chart in self.charts:
            parts.append("")
            parts.append(chart.render())
        return "\n".join(parts)


def policy_breakdowns(
    runner: SimulationRunner,
    benchmarks: Sequence[str],
    config: SimConfig,
    policies: Sequence[FetchPolicy],
) -> dict[str, dict[FetchPolicy, SimulationResult]]:
    """Run the benchmark x policy matrix for figure-style experiments."""
    return runner.run_matrix(benchmarks, config, policies)


def language_average(
    values: dict[str, float], names: Sequence[str]
) -> float:
    """Average of *values* over the subset *names*."""
    subset = [values[name] for name in names if name in values]
    return sum(subset) / len(subset) if subset else 0.0
