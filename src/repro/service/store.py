"""Content-addressed store of finished sweep-cell results.

A sweep cell's result is a pure function of its identity — benchmark,
full :class:`~repro.config.SimConfig`, trace length, warmup, seed, and
the trace-generator version — so the service keys finished results by
the sha256 digest of exactly those inputs.  Any client re-requesting a
cell anywhere, in any session, gets a disk hit instead of a simulation.

The on-disk contract mirrors :class:`~repro.core.artifacts.ArtifactCache`
and :class:`~repro.core.checkpoint.CheckpointJournal`:

* **Versioned layout** — entries live under
  ``<dir>/v<RESULT_STORE_VERSION>/<digest[:2]>/<digest>.pkl``; bumping
  the version orphans old trees instead of misreading them.
* **Atomic writes** — temp file + ``os.replace``; concurrent writers of
  the same digest are last-write-wins, never torn (any winner is the
  right answer, the result being content-addressed).
* **Corruption = miss** — a truncated, garbled, or identity-mismatched
  entry is re-simulated and atomically overwritten, never trusted and
  never fatal.
* **Graceful store failure** — an unwritable store (full disk,
  read-only directory) warns, counts, and disables itself; serving
  continues uncached.
* **Pruning** — :meth:`prune` reclaims orphaned version trees and
  malformed entries, like ``ArtifactCache.prune``.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import re
import tempfile
import warnings
from dataclasses import asdict
from pathlib import Path

from repro.config import SimConfig
from repro.core.artifacts import PruneStats
from repro.core.results import SimulationResult
from repro.errors import ServiceError
from repro.trace.generator import GENERATOR_VERSION

#: On-disk layout version.  Bump when the entry format or the digest
#: recipe changes; old trees are simply never read again.
RESULT_STORE_VERSION = 1

#: Entry-file shape: full sha256 hex digest + ``.pkl``.
_ENTRY_RE = re.compile(r"^[0-9a-f]{64}\.pkl$")
#: Shard-directory shape: first two digest characters.
_SHARD_RE = re.compile(r"^[0-9a-f]{2}$")


def cell_digest(
    benchmark: str,
    config: SimConfig,
    trace_length: int,
    warmup: int,
    seed: int,
) -> str:
    """The content address of one sweep cell (full sha256 hex).

    Every input that affects the result is folded in: the cell identity,
    every ``SimConfig`` field (enums by value, so the digest survives
    re-imports), and the trace-generator version (a generator change
    changes every trace, hence every result).  Engine-code changes that
    alter results must bump :data:`RESULT_STORE_VERSION`.
    """
    items = [
        f"store=v{RESULT_STORE_VERSION}",
        f"generator=v{GENERATOR_VERSION}",
        f"benchmark={benchmark}",
        f"trace_length={trace_length}",
        f"warmup={warmup}",
        f"seed={seed}",
    ]
    for name, value in sorted(asdict(config).items()):
        value = getattr(value, "value", value)
        items.append(f"{name}={value!r}")
    return hashlib.sha256(";".join(items).encode("utf-8")).hexdigest()


class ResultStore:
    """Content-addressed ``digest -> SimulationResult`` store.

    Safe to share between concurrent processes and across sessions; a
    disabled store (``ResultStore(None)``) is a no-op passthrough so the
    service never branches on configuration.
    """

    def __init__(self, directory: str | os.PathLike[str] | None) -> None:
        self.root: Path | None = None if directory is None else Path(directory)
        #: Lookup / write traffic counters (published as ``service.*``).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Stores that failed with an OS-level error; the first failure
        #: disables the store for the rest of the run.
        self.store_failures = 0
        self._disabled = False

    @property
    def enabled(self) -> bool:
        """True when a directory was configured and the store is healthy."""
        return self.root is not None and not self._disabled

    # -- keying --------------------------------------------------------------

    def entry_path(self, digest: str) -> Path:
        """File that holds (or will hold) the result for *digest*."""
        if self.root is None:
            raise ServiceError("result store is disabled (no directory)")
        if not re.fullmatch(r"[0-9a-f]{64}", digest):
            raise ServiceError(f"malformed cell digest {digest!r}")
        return (
            self.root / f"v{RESULT_STORE_VERSION}" / digest[:2]
            / f"{digest}.pkl"
        )

    # -- lookup --------------------------------------------------------------

    def load(
        self,
        digest: str,
        benchmark: str,
        config: SimConfig,
        trace_length: int,
        warmup: int,
        seed: int,
    ) -> SimulationResult | None:
        """The stored result for one cell, or ``None`` on any miss.

        Entries that fail to unpickle, carry the wrong version, or whose
        recorded identity does not match the request (a digest collision
        or a tampered file) are misses: correctness never depends on
        store contents.
        """
        if self.root is None or self._disabled:
            return None
        path = self.entry_path(digest)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("version") != (
            RESULT_STORE_VERSION
        ):
            self.misses += 1
            return None
        result = payload.get("result")
        if not isinstance(result, SimulationResult):
            self.misses += 1
            return None
        try:
            identity_ok = (
                result.program == benchmark
                and payload.get("benchmark") == benchmark
                and payload.get("config") == config
                and payload.get("trace_length") == trace_length
                and payload.get("warmup") == warmup
                and payload.get("seed") == seed
            )
        except AttributeError:
            # A pickled SimConfig from an older revision may lack newly
            # added slots; its __eq__ then raises instead of comparing.
            # Such an entry can never match the running config: miss.
            identity_ok = False
        if not identity_ok:
            self.misses += 1
            return None
        self.hits += 1
        return result

    # -- store ---------------------------------------------------------------

    def store(
        self,
        digest: str,
        benchmark: str,
        config: SimConfig,
        trace_length: int,
        warmup: int,
        seed: int,
        result: SimulationResult,
    ) -> None:
        """Persist one finished cell under its digest (atomic).

        Last-write-wins under concurrency: the payload lands in a private
        temp file and is published by a single ``os.replace``, so a
        concurrent reader sees either the old entry or the new one in
        full.  OS-level failures degrade gracefully — warn, count,
        disable — because serving must never die for its cache.
        """
        if self.root is None or self._disabled:
            return
        path = self.entry_path(digest)
        payload = pickle.dumps(
            {
                "version": RESULT_STORE_VERSION,
                "benchmark": benchmark,
                "config": config,
                "trace_length": trace_length,
                "warmup": warmup,
                "seed": seed,
                "result": result,
            },
            protocol=4,
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        except OSError as exc:
            self.store_failures += 1
            self._disabled = True
            warnings.warn(
                f"result store disabled after write failure: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        self.stores += 1

    # -- maintenance ---------------------------------------------------------

    def entries(self) -> int:
        """Number of well-formed entries in the current version tree."""
        if self.root is None:
            return 0
        base = self.root / f"v{RESULT_STORE_VERSION}"
        if not base.is_dir():
            return 0
        return sum(
            1 for path in sorted(base.glob("*/*.pkl"))
            if _ENTRY_RE.match(path.name)
        )

    def prune(self) -> PruneStats:
        """Reclaim entries no current reader can hit.

        Removes version trees other than ``v<RESULT_STORE_VERSION>``,
        malformed shard directories, and malformed or leftover-temp
        files inside valid shards.  Well-formed current entries are kept
        — they are content-addressed, so they stay valid until the
        version is bumped.
        """
        stats = PruneStats()
        if self.root is None or not self.root.is_dir():
            return stats
        current = f"v{RESULT_STORE_VERSION}"
        for child in sorted(self.root.iterdir()):
            if child.name != current:
                _prune_tree(child, stats)
                continue
            for shard in sorted(child.iterdir()):
                if not shard.is_dir() or not _SHARD_RE.match(shard.name):
                    _prune_tree(shard, stats)
                    continue
                for entry in sorted(shard.iterdir()):
                    if not _ENTRY_RE.match(entry.name):
                        _prune_tree(entry, stats)
        return stats


def _prune_tree(path: Path, stats: PruneStats) -> None:
    """Delete *path* (file or tree), accounting every reclaimed file."""
    if path.is_file() or path.is_symlink():
        try:
            stats.bytes_freed += path.stat().st_size
            path.unlink()
            stats.entries += 1
        except OSError:
            return
        return
    if not path.is_dir():
        return
    for child in sorted(path.iterdir()):
        _prune_tree(child, stats)
    try:
        path.rmdir()
    except OSError:
        return
