"""Blocking client for the sweep service, plus a runner-shaped facade.

:class:`ServiceClient` speaks the server's one-request-per-connection
HTTP/1.1 subset over plain sockets (TCP or UNIX).  Its retry policy is
the client half of the failure taxonomy: *transport* trouble — a dead
connection, a torn response, a 429 (queue full) or 503 (injected
response fault) — retries with deterministic exponential backoff,
because the server journals admitted work and dedups by content address,
so a retried request is idempotent and usually cheap.  Protocol-level
failures — 400 (malformed request) and 500 (dead cells under
``on_error="raise"``) — raise :class:`~repro.errors.ServiceError` and
are never retried: they reproduce identically.

:class:`RemoteRunner` wraps a client in the
:class:`~repro.core.runner.SimulationRunner` sweep API (``run``,
``run_policies``, ``run_suite``, ``run_matrix``, ``failures``) so the
experiment layer can target a server with ``repro-experiments
--server ADDRESS`` and not know the difference.
"""

from __future__ import annotations

import json
import socket
import time

from repro.config import ALL_POLICIES, FetchPolicy, SimConfig
from repro.core.results import MissingResult, SimulationResult, SweepFailure
from repro.core.runner import DEFAULT_TRACE_LENGTH, DEFAULT_WARMUP
from repro.errors import ExperimentError, ServiceError
from repro.service.protocol import (
    DEFAULT_CLIENT,
    SweepRequest,
    SweepResponse,
    decode_error,
    decode_response,
    encode_request,
)

#: Injectable sleep (tests stub this out to keep backoff assertions fast).
_sleep = time.sleep

#: HTTP statuses that signal "try again later", per the server contract.
RETRYABLE_STATUSES = (429, 503)


class ServiceClient:
    """One server address plus a transport-level retry policy."""

    def __init__(
        self,
        address: str,
        retries: int = 5,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        timeout: float | None = 600.0,
    ) -> None:
        if retries < 0:
            raise ServiceError(f"retries must be >= 0: {retries}")
        self.address = address
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        self._family, self._target = _parse_address(address)
        #: Transport-level retries performed so far (for tests/tools).
        self.transport_retries = 0

    # -- transport ------------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.socket(self._family, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._target)
        return sock

    def _once(self, method: str, path: str, body: bytes) -> tuple[int, bytes]:
        """One request/response exchange on a fresh connection.

        The response is delimited by ``Content-Length``, never by EOF:
        the server's pool workers are forked children that inherit open
        connection descriptors, so EOF can arrive arbitrarily late even
        though the full response has been written.
        """
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: repro-service\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("latin-1")
        with self._connect() as sock:
            sock.sendall(head + body)
            raw = bytearray()
            # Read the header block first, then exactly the body.
            while b"\r\n\r\n" not in raw:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw.extend(chunk)
            status, length, have = _parse_head(bytes(raw))
            while len(have) < length:
                chunk = sock.recv(65536)
                if not chunk:
                    raise ConnectionError(
                        f"truncated response body ({len(have)} of "
                        f"{length} bytes)"
                    )
                have += chunk
        return status, have[:length]

    def request(self, method: str, path: str, body: bytes = b"") -> tuple[int, bytes]:
        """Exchange with transport-level retry; returns (status, body)."""
        attempt = 0
        while True:
            attempt += 1
            try:
                status, payload = self._once(method, path, body)
            except (ConnectionError, socket.timeout, OSError, ValueError) as exc:
                if attempt > self.retries:
                    raise ServiceError(
                        f"service at {self.address} unreachable after "
                        f"{attempt} attempts: {type(exc).__name__}: {exc}"
                    ) from exc
                self._pause(attempt)
                continue
            if status in RETRYABLE_STATUSES and attempt <= self.retries:
                self._pause(attempt)
                continue
            return status, payload

    def _pause(self, attempt: int) -> None:
        self.transport_retries += 1
        _sleep(min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap))

    # -- API calls ------------------------------------------------------------

    def sweep(self, request: SweepRequest) -> SweepResponse:
        """Run one batch of cells; raises :class:`ServiceError` on 4xx/5xx."""
        status, body = self.request("POST", "/v1/sweep", encode_request(request))
        if status != 200:
            message, _ = decode_error(body)
            raise ServiceError(f"sweep failed (HTTP {status}): {message}")
        return decode_response(body)

    def healthz(self) -> dict:
        status, body = self.request("GET", "/healthz")
        if status != 200:
            raise ServiceError(f"healthz failed (HTTP {status})")
        return json.loads(body.decode("utf-8"))

    def metrics(self) -> str:
        status, body = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"metrics failed (HTTP {status})")
        return body.decode("utf-8")

    def shutdown(self) -> None:
        """Ask the server to stop (best-effort, no retry storm)."""
        self.request("POST", "/v1/shutdown")


def _parse_address(address: str) -> tuple[int, object]:
    """``unix:<path>`` or ``[http://]host:port`` -> (family, connect target)."""
    if address.startswith("unix:"):
        return socket.AF_UNIX, address[len("unix:"):]
    if address.startswith("http://"):
        address = address[len("http://"):]
    host, _, port_text = address.rpartition(":")
    if not host:
        raise ServiceError(
            f"service address {address!r} must be host:port or unix:path"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ServiceError(f"bad service port {port_text!r}") from None
    return socket.AF_INET, (host, port)


def _parse_head(raw: bytes) -> tuple[int, int, bytes]:
    """Split a response prefix into (status, content length, body so far)."""
    head, sep, rest = raw.partition(b"\r\n\r\n")
    if not sep:
        raise ConnectionError("truncated response (no header terminator)")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ConnectionError(f"bad status line {lines[0]!r}")
    status = int(parts[1])
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    return status, length, rest


class RemoteRunner:
    """Runner-shaped facade over a :class:`ServiceClient`.

    Presents the sweep surface of
    :class:`~repro.core.runner.SimulationRunner` — same method names,
    same result shapes, same ``failures`` reporting — but every cell is
    computed (or cache-hit) server-side.  Experiments that need local
    workload access (:meth:`program` / :meth:`trace`) cannot run against
    a server and say so explicitly.
    """

    def __init__(
        self,
        client: ServiceClient,
        trace_length: int = DEFAULT_TRACE_LENGTH,
        seed: int = 1995,
        warmup: int | None = None,
        on_error: str = "raise",
        priority: int = 0,
        client_id: str = DEFAULT_CLIENT,
    ) -> None:
        if trace_length < 1:
            raise ExperimentError(f"trace_length must be >= 1: {trace_length}")
        if warmup is None:
            warmup = min(DEFAULT_WARMUP, trace_length // 4)
        if not 0 <= warmup < trace_length:
            raise ExperimentError(
                f"warmup {warmup} must lie in [0, trace_length={trace_length})"
            )
        self.client = client
        self.trace_length = trace_length
        self.seed = seed
        self.warmup = warmup
        self.on_error = on_error
        self.priority = priority
        self.client_id = client_id
        #: Structured failure report from the most recent sweep call
        #: (mirrors ``ParallelRunner.failures``).
        self.failures: list[SweepFailure] = []
        #: Aggregated per-request service stats (store hits etc.).
        self.stats: dict[str, int] = {}

    # -- the sweep surface ----------------------------------------------------

    def run_jobs(
        self, jobs: list[tuple[str, SimConfig]]
    ) -> list[SimulationResult | MissingResult]:
        """Run ``(benchmark, config)`` cells server-side, in job order."""
        self.failures = []
        if not jobs:
            return []
        response = self.client.sweep(
            SweepRequest(
                cells=tuple(jobs),
                trace_length=self.trace_length,
                warmup=self.warmup,
                seed=self.seed,
                client=self.client_id,
                priority=self.priority,
                on_error=self.on_error,
            )
        )
        self.failures = list(response.failures)
        for key, value in response.stats.items():
            self.stats[key] = self.stats.get(key, 0) + value
        return list(response.results)

    def run(self, name: str, config: SimConfig) -> SimulationResult:
        return self.run_jobs([(name, config)])[0]

    def run_policies(
        self,
        name: str,
        config: SimConfig,
        policies: tuple[FetchPolicy, ...] = ALL_POLICIES,
    ) -> dict[FetchPolicy, SimulationResult]:
        results = self.run_jobs(
            [(name, config.with_policy(policy)) for policy in policies]
        )
        return dict(zip(policies, results))

    def run_suite(
        self, names, config: SimConfig
    ) -> dict[str, SimulationResult]:
        names = list(names)
        results = self.run_jobs([(name, config) for name in names])
        return dict(zip(names, results))

    def run_matrix(
        self,
        names,
        config: SimConfig,
        policies: tuple[FetchPolicy, ...] = ALL_POLICIES,
    ) -> dict[str, dict[FetchPolicy, SimulationResult]]:
        names = list(names)
        results = self.run_jobs(
            [
                (name, config.with_policy(policy))
                for name in names
                for policy in policies
            ]
        )
        matrix: dict[str, dict[FetchPolicy, SimulationResult]] = {}
        index = 0
        for name in names:
            matrix[name] = {}
            for policy in policies:
                matrix[name][policy] = results[index]
                index += 1
        return matrix

    # -- unsupported local access ---------------------------------------------

    def program(self, name: str):
        raise ExperimentError(
            "this experiment needs local workload access "
            f"(program {name!r}); it cannot run against --server"
        )

    def trace(self, name: str):
        raise ExperimentError(
            "this experiment needs local trace access "
            f"(trace {name!r}); it cannot run against --server"
        )
