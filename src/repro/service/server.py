"""The sweep job server: asyncio scheduling over the process-pool worker.

One :class:`SweepService` owns four pieces of shared state:

* a content-addressed :class:`~repro.service.store.ResultStore` — every
  finished cell is persisted *before* its response is sent, so a result,
  once computed, is never computed again (across clients, across
  requests, across server restarts);
* an **in-flight table** keyed by cell digest — a second request for a
  cell that is already queued or simulating awaits the first request's
  :class:`asyncio.Future` instead of enqueueing a duplicate;
* a **fair scheduler** — per-client FIFO queues drained round-robin,
  with higher ``priority`` requests served first at each pick, so one
  client's thousand-cell sweep cannot starve another's single cell;
* a **process pool** running the exact worker entry point the parallel
  runner uses (:func:`~repro.core.parallel._run_benchmark_jobs`), so a
  served cell is bit-identical to a local serial or parallel run.

Crash containment is first-class, reusing the PR 3 failure taxonomy
(:func:`~repro.core.faults.is_transient`):

* transient cell failures retry with deterministic exponential backoff,
  deterministic ones fail fast;
* a watchdog (``job_timeout``) kills and rebuilds the pool around hung
  cells;
* admission is bounded (``queue_limit``) with 429-style rejection;
* ``on_error="skip"`` degrades a request's dead cells to
  ``MissingResult`` placeholders plus a structured failure report;
* admitted requests are journalled
  (:class:`~repro.service.recovery.RequestJournal`) and replayed after a
  server crash;
* :data:`~repro.core.faults.SERVICE_PHASES` fault hooks (``dispatch``,
  ``store_write``, ``response``) let the chaos suite strike the service
  itself, not just its workers.

``GET /healthz`` and a Prometheus-style ``GET /metrics`` expose the
service's :class:`~repro.obs.metrics.MetricsRegistry`.  The HTTP layer
is a deliberately tiny hand-rolled HTTP/1.1 subset (one request per
connection, ``Connection: close``) — the stdlib is the only dependency
this repo allows itself.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.faults import FaultPlan, is_transient
from repro.core.parallel import ParallelRunner, _run_benchmark_jobs
from repro.core.results import MissingResult, SweepFailure
from repro.errors import InjectedFault, JobTimeoutError, ServiceError
from repro.obs.events import EventSink, NullSink, ServiceIncident
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.service.protocol import (
    SweepRequest,
    SweepResponse,
    decode_request,
    encode_response,
    error_body,
)
from repro.service.recovery import RequestJournal
from repro.service.store import ResultStore, cell_digest

#: Client identity stamped on journal-replayed work in incident events.
RECOVERY_CLIENT = "__recovery__"

#: Injectable async sleep (tests stub this out for fast backoff asserts).
_sleep = asyncio.sleep

#: Every counter the service publishes, pre-registered at zero so
#: ``/healthz`` and ``/metrics`` expose the full set from the first
#: scrape (a counter that appears only once nonzero breaks rate()).
SERVICE_COUNTERS = (
    "service.requests",
    "service.cells_requested",
    "service.rejected",
    "service.store_hits",
    "service.deduped",
    "service.cells_simulated",
    "service.retries",
    "service.timeouts",
    "service.failures",
    "service.pool_rebuilds",
    "service.recovered_requests",
)


class _Overloaded(ServiceError):
    """Admission refused: the bounded queue is full (HTTP 429).

    A :class:`ServiceError` subtype so the taxonomy still classifies it,
    but handled before its base everywhere: unlike other service errors
    it is *retryable* — the client backs off and resubmits.
    """


@dataclass
class _CellJob:
    """One unit of scheduled work: a single (benchmark, config) cell."""

    digest: str
    benchmark: str
    config: object
    trace_length: int
    warmup: int
    seed: int
    client: str
    priority: int
    future: asyncio.Future = field(repr=False, default=None)  # type: ignore[assignment]
    attempts: int = 0


def _boot_worker() -> None:
    """No-op run once per fresh pool slot to force the worker to spawn
    (and pay its interpreter/import start-up) before any cell's watchdog
    clock starts."""
    return None


class SweepService:
    """Scheduling, caching, and fault-containment logic of the server.

    Transport-free: the HTTP layer below feeds it raw request bodies and
    writes back whatever it returns, so tests can drive the service
    in-process without a socket.
    """

    def __init__(
        self,
        data_dir: str | os.PathLike[str],
        max_workers: int | None = None,
        queue_limit: int = 256,
        retries: int = 2,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        job_timeout: float | None = None,
        cache_dir: str | None = None,
        replay: str = "auto",
        sink: EventSink | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if queue_limit < 1:
            raise ServiceError(f"queue_limit must be >= 1: {queue_limit}")
        if retries < 0:
            raise ServiceError(f"retries must be >= 0: {retries}")
        if backoff_base < 0 or backoff_cap < 0:
            raise ServiceError("backoff must be >= 0")
        if job_timeout is not None and job_timeout <= 0:
            raise ServiceError(f"job_timeout must be > 0: {job_timeout}")
        if replay not in ("auto", "off"):
            raise ServiceError(f"replay must be 'auto' or 'off': {replay!r}")
        data_dir = Path(data_dir)
        self.data_dir = data_dir
        self.store = ResultStore(data_dir / "results")
        self.journal = RequestJournal(data_dir / "jobs")
        #: Shared artifact cache handed to workers (programs, traces,
        #: prediction streams); defaults to living beside the store.
        self.cache_dir = (
            str(data_dir / "artifacts") if cache_dir is None else cache_dir
        )
        self.max_workers = (
            max_workers if max_workers is not None else (os.cpu_count() or 1)
        )
        if self.max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1: {self.max_workers}")
        self.queue_limit = queue_limit
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.job_timeout = job_timeout
        self.replay = replay
        self.registry = MetricsRegistry()
        for name in SERVICE_COUNTERS:
            self.registry.counter(name)
        self.sink: EventSink = sink if sink is not None else NullSink()
        self.fault_plan = fault_plan
        # Scheduler state (single event loop: no locks needed).
        self._inflight: dict[str, _CellJob] = {}
        self._queues: dict[str, deque[_CellJob]] = {}
        self._rotation: deque[str] = deque()
        self._queued = 0
        self._active = 0
        self._tasks: set[asyncio.Task] = set()
        self._pool: ProcessPoolExecutor | None = None
        self._warmed_pool: ProcessPoolExecutor | None = None
        self._pool_generation = 0
        self._stopping = asyncio.Event()

    # -- observability --------------------------------------------------------

    def _incident(
        self, kind: str, client: str, benchmark: str = "",
        detail: str = "", attempt: int = 0,
    ) -> None:
        if self.sink.enabled:
            self.sink.emit(ServiceIncident(
                t=0, client=client, kind=kind, benchmark=benchmark,
                detail=detail, attempt=attempt,
            ))

    def counters(self) -> dict[str, int]:
        """Current service counters plus store traffic, for ``/healthz``."""
        snapshot = {
            name: metric.value
            for name, metric in (
                (n, self.registry.get(n)) for n in self.registry.names()
            )
            if isinstance(metric, Counter)
        }
        snapshot.update(
            {
                "service.store_entries": self.store.entries(),
                "service.store_failures": self.store.store_failures,
            }
        )
        return snapshot

    # -- admission ------------------------------------------------------------

    def admit(self, request: SweepRequest) -> tuple[list, dict[str, int]]:
        """Admit one request; returns per-cell entries plus admission stats.

        Each entry is either a finished result (store hit) or a
        :class:`_CellJob` whose future resolves when the cell completes
        (freshly enqueued, or an in-flight job another request already
        owns — the dedup path).  Raises :class:`_Overloaded` (and admits
        nothing) when the new work would overflow the bounded queue.
        """
        loop = asyncio.get_running_loop()
        entries: list = []
        new_jobs: list[_CellJob] = []
        stats = {"store_hits": 0, "deduped": 0}
        self.registry.inc("service.requests")
        self.registry.inc("service.cells_requested", len(request.cells))
        self._incident(
            "request", request.client, detail=f"{len(request.cells)} cells",
        )
        for benchmark, config in request.cells:
            digest = cell_digest(
                benchmark, config, request.trace_length, request.warmup,
                request.seed,
            )
            job = self._inflight.get(digest)
            if job is not None:
                self.registry.inc("service.deduped")
                self._incident("dedup", request.client, benchmark=benchmark)
                stats["deduped"] += 1
                entries.append(job)
                continue
            result = self.store.load(
                digest, benchmark, config, request.trace_length,
                request.warmup, request.seed,
            )
            if result is not None:
                self.registry.inc("service.store_hits")
                stats["store_hits"] += 1
                entries.append(result)
                continue
            job = _CellJob(
                digest=digest,
                benchmark=benchmark,
                config=config,
                trace_length=request.trace_length,
                warmup=request.warmup,
                seed=request.seed,
                client=request.client,
                priority=request.priority,
                future=loop.create_future(),
            )
            # Register immediately so a duplicate digest later in this
            # same request dedups against it; rolled back on rejection.
            self._inflight[digest] = job
            new_jobs.append(job)
            entries.append(job)
        if new_jobs and (
            self._queued + self._active + len(new_jobs) > self.queue_limit
        ):
            for job in new_jobs:
                del self._inflight[job.digest]
            self.registry.inc("service.rejected")
            self._incident(
                "reject", request.client,
                detail=f"{len(new_jobs)} new cells over limit "
                f"{self.queue_limit}",
            )
            raise _Overloaded(
                f"queue limit {self.queue_limit} reached "
                f"({self._queued} queued, {self._active} active); retry later"
            )
        for job in new_jobs:
            queue = self._queues.get(job.client)
            if queue is None:
                queue = self._queues[job.client] = deque()
                self._rotation.append(job.client)
            queue.append(job)
            self._queued += 1
        stats["new"] = len(new_jobs)
        self._pump()
        return entries, stats

    # -- fair scheduling ------------------------------------------------------

    def _next_job(self) -> _CellJob | None:
        """Highest head-priority client wins; rotation order breaks ties."""
        best_client: str | None = None
        best_priority: int | None = None
        for client in self._rotation:
            head = self._queues[client][0]
            if best_priority is None or head.priority > best_priority:
                best_client, best_priority = client, head.priority
        if best_client is None:
            return None
        job = self._queues[best_client].popleft()
        self._rotation.remove(best_client)
        if self._queues[best_client]:
            self._rotation.append(best_client)
        else:
            del self._queues[best_client]
        self._queued -= 1
        return job

    def _pump(self) -> None:
        """Start queued jobs while pool slots are free."""
        while self._active < self.max_workers:
            job = self._next_job()
            if job is None:
                return
            self._active += 1
            task = asyncio.get_running_loop().create_task(self._run_job(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    # -- execution ------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # ``spawn``, never ``fork``: workers are created lazily (and
            # re-created after a watchdog rebuild) while client
            # connections are open, and a forked worker would inherit
            # those connection fds — after a server crash the orphaned
            # worker keeps the socket open and the client blocks in
            # ``recv`` forever instead of seeing EOF.  A spawned worker
            # execs a fresh interpreter, so non-inheritable fds never
            # leak into it.
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return self._pool

    async def _pool_ready(self) -> ProcessPoolExecutor:
        """The pool with every worker booted — spawn cost off the job clock.

        Workers spawn lazily on first submit, and each boots a fresh
        interpreter (module imports included) before touching its first
        payload.  The watchdog must time the *cell*, not that boot, so a
        fresh pool first runs one no-op per slot — submitted back to
        back, before any worker can go idle, so each forces one spawn —
        and waits for them all.
        """
        pool = self._ensure_pool()
        if pool is not self._warmed_pool:
            loop = asyncio.get_running_loop()
            await asyncio.gather(*(
                loop.run_in_executor(pool, _boot_worker)
                for _ in range(self.max_workers)
            ))
            self._warmed_pool = pool
        return pool

    async def _rebuild_pool(self, generation: int) -> None:
        """Tear down a damaged/hung pool and let the next job rebuild it.

        Guarded by a generation counter: concurrent jobs that all saw
        the same broken pool trigger exactly one teardown.
        """
        if generation != self._pool_generation or self._pool is None:
            return
        pool = self._pool
        self._pool = None
        self._pool_generation += 1
        self.registry.inc("service.pool_rebuilds")
        # terminate + join can block for seconds: do it off-loop.
        await asyncio.get_running_loop().run_in_executor(
            None, ParallelRunner._terminate_pool, pool
        )

    async def _execute(self, job: _CellJob) -> object:
        """Run one cell to completion: retries, watchdog, store write."""
        loop = asyncio.get_running_loop()
        while True:
            job.attempts += 1
            generation = self._pool_generation
            try:
                if self.fault_plan is not None:
                    # A "delay" fault sleeps on purpose: dispatch-phase
                    # faults model a stalled loop, latency included.
                    # simlint: disable=SIM015
                    self.fault_plan.fire("dispatch", job.benchmark)
                payload = (
                    job.benchmark, (job.config,), job.trace_length,
                    job.warmup, job.seed, False, self.cache_dir,
                    self.replay, self.fault_plan,
                )
                pool = await self._pool_ready()
                future = loop.run_in_executor(
                    pool, _run_benchmark_jobs, payload
                )
                if self.job_timeout is not None:
                    ret = await asyncio.wait_for(future, self.job_timeout)
                else:
                    ret = await future
                spec = None
                if self.fault_plan is not None:
                    # Same as dispatch: injected store_write delays are
                    # meant to stall the loop.
                    # simlint: disable=SIM015
                    spec = self.fault_plan.fire("store_write", job.benchmark)
            except asyncio.CancelledError:
                raise
            except TimeoutError:
                # The hung worker still owns a pool slot: kill the pool.
                self.registry.inc("service.timeouts")
                self._incident(
                    "timeout", job.client, benchmark=job.benchmark,
                    attempt=job.attempts,
                )
                await self._rebuild_pool(generation)
                exc: Exception = JobTimeoutError(
                    f"cell {job.benchmark!r} exceeded "
                    f"job_timeout={self.job_timeout}s and was killed"
                )
                if job.attempts <= self.retries:
                    await self._backoff(job)
                    continue
                raise exc from None
            except Exception as exc:
                if isinstance(exc, BrokenExecutor):
                    await self._rebuild_pool(generation)
                if is_transient(exc) and job.attempts <= self.retries:
                    self._incident(
                        "retry", job.client, benchmark=job.benchmark,
                        detail=type(exc).__name__, attempt=job.attempts,
                    )
                    await self._backoff(job)
                    continue
                raise
            results, _, _ = ret
            result = results[0]
            self.store.store(
                job.digest, job.benchmark, job.config, job.trace_length,
                job.warmup, job.seed, result,
            )
            if spec is not None and spec.kind == "corrupt":
                # Model a torn write landing after the fact: the entry
                # exists but its bytes are garbage.  The store must treat
                # it as a miss and the next request re-simulates.
                self._corrupt_store_entry(job.digest)
            return result

    async def _backoff(self, job: _CellJob) -> None:
        self.registry.inc("service.retries")
        await _sleep(
            min(self.backoff_base * (2 ** (job.attempts - 1)), self.backoff_cap)
        )

    def _corrupt_store_entry(self, digest: str) -> None:
        if not self.store.enabled:
            return
        path = self.store.entry_path(digest)
        if path.is_file():
            path.write_bytes(b"\x00corrupted-by-fault-injection\x00")

    async def _run_job(self, job: _CellJob) -> None:
        """Job wrapper: resolve the future, release the slot, pump."""
        try:
            result = await self._execute(job)
        except asyncio.CancelledError:
            self._inflight.pop(job.digest, None)
            if not job.future.done():
                job.future.cancel()
            raise
        except Exception as exc:
            self.registry.inc("service.failures")
            self._incident(
                "failure", job.client, benchmark=job.benchmark,
                detail=f"{type(exc).__name__}: {exc}", attempt=job.attempts,
            )
            exc.attempts = job.attempts  # type: ignore[attr-defined]
            self._inflight.pop(job.digest, None)
            if not job.future.done():
                job.future.set_exception(exc)
        else:
            self.registry.inc("service.cells_simulated")
            self._inflight.pop(job.digest, None)
            if not job.future.done():
                job.future.set_result(result)
        finally:
            self._active -= 1
            self._pump()

    # -- request handling -----------------------------------------------------

    async def handle_sweep(self, request: SweepRequest) -> SweepResponse:
        """Admit and await one request; the whole service in one call."""
        # Admission reads cached results synchronously on purpose: the
        # journal must record the request *before* any job dispatches,
        # and the store reads are small local files on the admission
        # path.  Moving them off-loop would reorder crash recovery.
        # simlint: disable=SIM015
        entries, admit_stats = self.admit(request)
        results: list = []
        failures: list[SweepFailure] = []
        for entry in entries:
            if not isinstance(entry, _CellJob):
                results.append(entry)
                continue
            try:
                results.append(await entry.future)
            except Exception as exc:
                failures.append(
                    SweepFailure(
                        benchmark=entry.benchmark,
                        error_type=type(exc).__name__,
                        message=str(exc),
                        attempts=getattr(exc, "attempts", 1),
                        transient=is_transient(exc),
                        cells=1,
                    )
                )
                results.append(
                    MissingResult(
                        program=entry.benchmark, config=entry.config
                    )
                )
        if failures and request.on_error == "raise":
            raise ServiceError(
                f"{len(failures)} of {len(request.cells)} cells failed "
                "(on_error='raise'): "
                + "; ".join(f.describe() for f in failures)
            )
        return SweepResponse(
            results=tuple(results),
            failures=tuple(failures),
            stats={
                "cells": len(request.cells),
                "store_hits": admit_stats["store_hits"],
                "deduped": admit_stats["deduped"],
                "cells_simulated": admit_stats["new"],
                "failed": len(failures),
            },
        )

    # -- crash recovery -------------------------------------------------------

    def recover(self) -> int:
        """Replay journalled requests from before a crash (background).

        Each pending body re-enters the normal admission path under its
        original client identity: cells that finished before the crash
        hit the result store instantly, the rest re-simulate.  The
        journal entry is discarded once the replay settles (the original
        client never got a response and will retry; its retry then hits
        the warm store).  Returns the number of replays started.
        """
        pending = self.journal.pending()
        for token, body in pending:
            self.registry.inc("service.recovered_requests")
            task = asyncio.get_running_loop().create_task(
                self._replay(token, body)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        return len(pending)

    async def _replay(self, token: str, body: bytes) -> None:
        try:
            request = decode_request(body)
        except ServiceError:
            # Torn journal entry: unrecoverable by design, drop it.
            self.journal.unrecoverable += 1
            self.journal.discard(token)
            return
        self._incident(
            "recovered", RECOVERY_CLIENT,
            detail=f"client={request.client} cells={len(request.cells)}",
        )
        try:
            await self.handle_sweep(request)
        except _Overloaded:
            return  # keep the entry; the next restart retries it
        except ServiceError as exc:
            # on_error="raise" with dead cells: the original client never
            # got an answer and will re-request; nothing left to replay.
            self._incident("failure", RECOVERY_CLIENT, detail=str(exc))
        self.journal.discard(token)

    # -- lifecycle ------------------------------------------------------------

    def request_stop(self) -> None:
        self._stopping.set()

    async def wait_stopped(self) -> None:
        await self._stopping.wait()

    async def close(self) -> None:
        """Cancel outstanding work and kill the pool."""
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                continue
        if self._pool is not None:
            pool = self._pool
            self._pool = None
            await asyncio.get_running_loop().run_in_executor(
                None, ParallelRunner._terminate_pool, pool
            )


# -- Prometheus-style exposition ----------------------------------------------


def render_metrics(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters become ``repro_<name>`` gauges (dots to underscores);
    histograms expose cumulative ``_bucket{le="..."}`` series plus
    ``_sum`` and ``_count``, matching what a Prometheus scraper expects.
    """
    lines: list[str] = []
    for name in registry.names():
        metric = registry.get(name)
        flat = "repro_" + name.replace(".", "_").replace("-", "_")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {metric.value}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {flat} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                lines.append(f'{flat}_bucket{{le="{bound}"}} {cumulative}')
            cumulative += metric.counts[-1]
            lines.append(f'{flat}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{flat}_sum {metric.total}")
            lines.append(f"{flat}_count {metric.count}")
    return "\n".join(lines) + "\n"


# -- the HTTP layer -----------------------------------------------------------

#: Largest request body the server will read (guards the journal and
#: the unpickler against a runaway client).
MAX_BODY = 64 * 1024 * 1024


class ServiceServer:
    """Minimal HTTP/1.1 front end for a :class:`SweepService`.

    One request per connection (``Connection: close``): sweep requests
    are long-lived and bounded in number by the queue limit, so
    keep-alive buys nothing but parser state.
    """

    def __init__(self, service: SweepService) -> None:
        self.service = service
        self._server: asyncio.AbstractServer | None = None
        #: ``(host, port)`` after a TCP bind, ``path`` after a UNIX bind.
        self.address: object = None

    async def start(self, listen: str) -> None:
        """Bind and start serving.  *listen* is ``host:port`` (port 0 for
        ephemeral) or ``unix:<path>``."""
        # Construct the worker pool before the first connection exists.
        # Workers themselves spawn lazily in a fresh interpreter (see
        # ``_ensure_pool``), so they never hold connection fds; clients
        # delimit responses by Content-Length regardless (see
        # ``ServiceClient._once``).
        self.service._ensure_pool()
        if listen.startswith("unix:"):
            path = listen[len("unix:"):]
            self._server = await asyncio.start_unix_server(
                self._handle, path=path
            )
            self.address = path
        else:
            host, _, port_text = listen.rpartition(":")
            if not host:
                raise ServiceError(
                    f"listen address {listen!r} must be host:port or unix:path"
                )
            try:
                port = int(port_text)
            except ValueError:
                raise ServiceError(f"bad listen port {port_text!r}") from None
            self._server = await asyncio.start_server(
                self._handle, host=host, port=port
            )
            sock = self._server.sockets[0]
            self.address = sock.getsockname()[:2]
        self.service.recover()

    async def serve_forever(self) -> None:
        """Serve until :meth:`SweepService.request_stop` fires."""
        assert self._server is not None
        async with self._server:
            await self._server.start_serving()
            await self.service.wait_stopped()
        await self.service.close()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        after_send = None
        try:
            try:
                method, path = await self._read_head(reader)
                length = await self._read_headers(reader)
                body = await reader.readexactly(length) if length else b""
            except ServiceError as exc:
                writer.write(
                    _response_bytes(
                        400, "application/json", error_body(str(exc))
                    )
                )
                await writer.drain()
                return
            status, ctype, payload, after_send = await self._route(
                method, path, body
            )
            if (
                path == "/v1/sweep" and status == 200
                and self.service.fault_plan is not None
            ):
                try:
                    self.service.fault_plan.fire("response", "")
                except InjectedFault as exc:
                    # The response was lost in flight: the client sees a
                    # 503 (or a dead socket for `exit` faults) and
                    # retries; the journal entry survives for recovery.
                    self.service._incident(
                        "response_fault", "", detail=str(exc)
                    )
                    status, ctype = 503, "application/json"
                    payload = error_body(f"response fault injected: {exc}")
                    after_send = None
            writer.write(_response_bytes(status, ctype, payload))
            await writer.drain()
            if after_send is not None:
                after_send()
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                ValueError) as exc:
            self.service._incident("failure", "", detail=f"http: {exc}")
        finally:
            writer.close()
            # Peer-reset sockets can fail their closing handshake; that
            # is the peer's problem, not the server's.
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                return

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader) -> tuple[str, str]:
        line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        parts = line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ServiceError(f"bad request line {line!r}")
        return parts[0].upper(), parts[1]

    @staticmethod
    async def _read_headers(reader: asyncio.StreamReader) -> int:
        """Consume headers; returns the Content-Length (0 if absent)."""
        length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                return length
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise ServiceError(
                        f"bad Content-Length {value!r}"
                    ) from None
                if not 0 <= length <= MAX_BODY:
                    raise ServiceError(f"unacceptable Content-Length {length}")

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes, object]:
        """Dispatch one request; returns (status, ctype, body, after_send)."""
        service = self.service
        if method == "GET" and path == "/healthz":
            payload = json.dumps(
                {
                    "status": "ok",
                    "counters": service.counters(),
                    "inflight": len(service._inflight),
                    "queued": service._queued,
                    "active": service._active,
                },
                separators=(",", ":"),
            ).encode("utf-8")
            return 200, "application/json", payload, None
        if method == "GET" and path == "/metrics":
            text = render_metrics(service.registry)
            return 200, "text/plain; version=0.0.4", text.encode("utf-8"), None
        if method == "POST" and path == "/v1/shutdown":
            service.request_stop()
            return (
                200, "application/json",
                json.dumps({"status": "stopping"}).encode("utf-8"), None,
            )
        if method == "POST" and path == "/v1/sweep":
            return await self._route_sweep(body)
        return 404, "application/json", error_body(f"no route {method} {path}"), None

    async def _route_sweep(
        self, body: bytes
    ) -> tuple[int, str, bytes, object]:
        service = self.service
        token = service.journal.record(body)
        try:
            request = decode_request(body)
        except ServiceError as exc:
            service.journal.discard(token)
            return 400, "application/json", error_body(str(exc)), None
        try:
            response = await service.handle_sweep(request)
        except _Overloaded as exc:
            service.journal.discard(token)
            return 429, "application/json", error_body(str(exc)), None
        except ServiceError as exc:
            # on_error="raise" with dead cells: deterministic for this
            # request — answer 500 and drop the journal entry (replaying
            # it after a crash would just re-fail).
            service.journal.discard(token)
            return 500, "application/json", error_body(str(exc)), None
        payload = encode_response(response)
        return (
            200, "application/json", payload,
            lambda: service.journal.discard(token),
        )


def _response_bytes(status: int, ctype: str, payload: bytes) -> bytes:
    reason = {
        200: "OK", 400: "Bad Request", 404: "Not Found",
        429: "Too Many Requests", 500: "Internal Server Error",
        503: "Service Unavailable",
    }.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {ctype}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + payload
