"""Crash recovery for the sweep service: a journal of admitted requests.

The server can die mid-request — an injected ``exit`` fault, an OOM
kill, an operator's SIGKILL — with clients' work half done.  Finished
*cells* already survive in the :class:`~repro.service.store.ResultStore`
(every completed simulation is persisted before its response is sent),
so the only state worth journalling is *which requests were in flight*.

:class:`RequestJournal` therefore records each request's raw wire body
at admission and discards it after the response has been written.  A
restarted server replays every journalled body through the normal
admission path: cells that finished before the crash hit the result
store and cost nothing; cells that did not are re-simulated.  The
journal never holds results — the store is the single source of truth —
so replaying a request twice is harmless (idempotent by content
addressing).

Disk contract (same family as the result store):

* entries live under ``<dir>/v<JOURNAL_VERSION>/<seq>.req`` and replay
  in admission order;
* an entry is published by writing a complete temp file and hard-linking
  it into place (create-exclusive), so a crash mid-record leaves at most
  an orphaned temp file, never a half-written entry under a final name;
* a body that no longer decodes (torn write, version skew) is an
  *unrecoverable* entry: it is counted, removed, and skipped — recovery
  must never wedge the server.
"""

from __future__ import annotations

import contextlib
import os
import re
import tempfile
from pathlib import Path

#: On-disk journal layout version.
JOURNAL_VERSION = 1

#: Entry-file shape: zero-padded admission sequence + ``.req``.
_ENTRY_RE = re.compile(r"^(\d{8})\.req$")


class RequestJournal:
    """Journal of raw request bodies awaiting a response.

    ``RequestJournal(None)`` is a disabled no-op (every ``record``
    returns ``None``), so the server never branches on configuration.
    """

    def __init__(self, directory: str | os.PathLike[str] | None) -> None:
        self.root: Path | None = None if directory is None else Path(directory)
        #: Entries dropped by :meth:`pending` because they were damaged.
        self.unrecoverable = 0

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _base(self) -> Path:
        assert self.root is not None
        return self.root / f"v{JOURNAL_VERSION}"

    # -- record / discard ------------------------------------------------------

    def record(self, body: bytes) -> str | None:
        """Journal one admitted request; returns its discard token.

        The entry is complete before it becomes visible: the body lands
        in a temp file first and is published under the next free
        sequence number with ``os.link`` (fails on collision, so two
        concurrent recorders can never share a name).  Journal failures
        are swallowed — a server that cannot journal still serves, it
        just cannot replay after a crash.
        """
        if self.root is None:
            return None
        base = self._base()
        try:
            base.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=base, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(body)
            seq = self._next_seq(base)
            while True:
                final = base / f"{seq:08d}.req"
                try:
                    os.link(tmp, final)
                except FileExistsError:
                    seq += 1
                    continue
                break
            os.unlink(tmp)
        except OSError:
            return None
        return final.name

    def discard(self, token: str | None) -> None:
        """Forget one answered request (idempotent, never raises)."""
        if self.root is None or token is None:
            return
        with contextlib.suppress(OSError):
            os.unlink(self._base() / token)

    # -- replay ----------------------------------------------------------------

    def pending(self) -> list[tuple[str, bytes]]:
        """Journalled ``(token, body)`` pairs in admission order.

        Unreadable entries are removed and counted in
        :attr:`unrecoverable` rather than raised: a corrupt journal entry
        means one lost request, not a server that cannot start.
        """
        if self.root is None:
            return []
        base = self._base()
        if not base.is_dir():
            return []
        entries: list[tuple[str, bytes]] = []
        for path in sorted(base.iterdir()):
            if not _ENTRY_RE.match(path.name):
                # Orphaned temp file from a crash mid-record.
                if path.name.endswith(".tmp"):
                    with contextlib.suppress(OSError):
                        path.unlink()
                continue
            try:
                entries.append((path.name, path.read_bytes()))
            except OSError:
                self.unrecoverable += 1
                with contextlib.suppress(OSError):
                    path.unlink()
        return entries

    def _next_seq(self, base: Path) -> int:
        """First sequence number after every existing entry."""
        last = -1
        for path in base.iterdir():
            match = _ENTRY_RE.match(path.name)
            if match:
                last = max(last, int(match.group(1)))
        return last + 1
