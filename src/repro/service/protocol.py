"""Wire format shared by the sweep service's server and client.

Requests and responses travel as JSON envelopes over HTTP/1.1.  The
JSON layer carries everything a human or a load balancer might care
about (client id, priority, counts, failure reports); the simulation
payloads — ``(benchmark, SimConfig)`` cells and
:class:`~repro.core.results.SimulationResult` objects — are pickled and
base64-wrapped inside the envelope, the same transport convention the
checkpoint journal and result store already use on disk (frozen
dataclasses with enums and nested tuples are not JSON-native).

Malformed payloads raise :class:`~repro.errors.ServiceError`
(deterministic under the failure taxonomy: a bad request reproduces
identically on retry, so the client must not retry it).
"""

from __future__ import annotations

import base64
import binascii
import json
import pickle
from dataclasses import dataclass, field

from repro.config import SimConfig
from repro.core.results import MissingResult, SimulationResult, SweepFailure
from repro.errors import ServiceError

#: Protocol version; servers reject envelopes from a different one.
WIRE_VERSION = 1

#: Default client identity when a request does not name one.
DEFAULT_CLIENT = "anonymous"


@dataclass(frozen=True, slots=True)
class SweepRequest:
    """One client's batch of sweep cells plus scheduling hints."""

    cells: tuple[tuple[str, SimConfig], ...]
    trace_length: int
    warmup: int
    seed: int
    client: str = DEFAULT_CLIENT
    #: Larger runs first; ties share the pool round-robin per client.
    priority: int = 0
    #: ``"raise"`` fails the whole request on a dead cell;
    #: ``"skip"`` degrades dead cells to ``MissingResult`` placeholders
    #: plus a structured failure report (per-request graceful
    #: degradation).
    on_error: str = "raise"

    def __post_init__(self) -> None:
        if not self.cells:
            raise ServiceError("sweep request contains no cells")
        if self.trace_length < 1:
            raise ServiceError(
                f"trace_length must be >= 1: {self.trace_length}"
            )
        if not 0 <= self.warmup < self.trace_length:
            raise ServiceError(
                f"warmup {self.warmup} must lie in "
                f"[0, trace_length={self.trace_length})"
            )
        if self.on_error not in ("raise", "skip"):
            raise ServiceError(
                f"on_error must be 'raise' or 'skip': {self.on_error!r}"
            )
        if not self.client or "\n" in self.client:
            raise ServiceError(f"bad client id {self.client!r}")
        for name, config in self.cells:
            if not isinstance(name, str) or not isinstance(config, SimConfig):
                raise ServiceError(
                    "cells must be (benchmark, SimConfig) pairs"
                )


@dataclass(frozen=True, slots=True)
class SweepResponse:
    """The finished batch: results in cell order plus a failure report."""

    results: tuple[SimulationResult | MissingResult, ...]
    failures: tuple[SweepFailure, ...] = ()
    #: Per-request accounting: ``cells``, ``store_hits``, ``deduped``,
    #: ``cells_simulated``, ``failed``.
    stats: dict[str, int] = field(default_factory=dict)


def _pack(obj: object) -> str:
    """Pickle *obj* and wrap it for a JSON envelope."""
    return base64.b64encode(pickle.dumps(obj, protocol=4)).decode("ascii")


def _unpack(text: object) -> object:
    """Inverse of :func:`_pack`; raises :class:`ServiceError` on damage."""
    if not isinstance(text, str):
        raise ServiceError(f"expected base64 payload, got {type(text).__name__}")
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii"), validate=True))
    except (binascii.Error, ValueError, pickle.UnpicklingError, EOFError,
            AttributeError, ImportError, UnicodeEncodeError) as exc:
        raise ServiceError(f"undecodable payload: {exc}") from None


def _envelope(body: bytes) -> dict:
    """Parse and version-check a JSON envelope."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServiceError(f"request body is not JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ServiceError("request body must be a JSON object")
    if data.get("wire_version") != WIRE_VERSION:
        raise ServiceError(
            f"wire version mismatch: got {data.get('wire_version')!r}, "
            f"this build speaks {WIRE_VERSION}"
        )
    return data


def encode_request(request: SweepRequest) -> bytes:
    """Serialise a :class:`SweepRequest` for the wire."""
    return json.dumps(
        {
            "wire_version": WIRE_VERSION,
            "client": request.client,
            "priority": request.priority,
            "trace_length": request.trace_length,
            "warmup": request.warmup,
            "seed": request.seed,
            "on_error": request.on_error,
            "cells": _pack(list(request.cells)),
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_request(body: bytes) -> SweepRequest:
    """Rebuild a :class:`SweepRequest`; :class:`ServiceError` on damage."""
    data = _envelope(body)
    cells = _unpack(data.get("cells"))
    if not isinstance(cells, list):
        raise ServiceError("cells payload must decode to a list")
    try:
        return SweepRequest(
            cells=tuple((name, config) for name, config in cells),
            trace_length=int(data.get("trace_length", 0)),
            warmup=int(data.get("warmup", -1)),
            seed=int(data.get("seed", 0)),
            client=str(data.get("client", DEFAULT_CLIENT)),
            priority=int(data.get("priority", 0)),
            on_error=str(data.get("on_error", "raise")),
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"malformed sweep request: {exc}") from None


def encode_response(response: SweepResponse) -> bytes:
    """Serialise a :class:`SweepResponse` for the wire."""
    return json.dumps(
        {
            "wire_version": WIRE_VERSION,
            "results": _pack(list(response.results)),
            "failures": [failure.as_dict() for failure in response.failures],
            "stats": dict(response.stats),
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_response(body: bytes) -> SweepResponse:
    """Rebuild a :class:`SweepResponse`; :class:`ServiceError` on damage."""
    data = _envelope(body)
    results = _unpack(data.get("results"))
    if not isinstance(results, list) or not all(
        isinstance(r, (SimulationResult, MissingResult)) for r in results
    ):
        raise ServiceError("results payload must decode to result objects")
    failures = data.get("failures", [])
    if not isinstance(failures, list):
        raise ServiceError("failures must be a list")
    try:
        decoded_failures = tuple(
            SweepFailure(**failure) for failure in failures
        )
    except TypeError as exc:
        raise ServiceError(f"malformed failure report: {exc}") from None
    stats = data.get("stats", {})
    if not isinstance(stats, dict):
        raise ServiceError("stats must be an object")
    return SweepResponse(
        results=tuple(results),
        failures=decoded_failures,
        stats={str(k): int(v) for k, v in stats.items()},
    )


def error_body(message: str, **extra: object) -> bytes:
    """A JSON error payload for non-200 responses."""
    payload: dict[str, object] = {"wire_version": WIRE_VERSION, "error": message}
    payload.update(extra)
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_error(body: bytes) -> tuple[str, dict]:
    """Best-effort parse of an error payload (never raises)."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return body.decode("utf-8", "replace")[:200], {}
    if not isinstance(data, dict):
        return str(data)[:200], {}
    return str(data.get("error", "unknown error")), data
