"""repro.service: a crash-contained sweep job server with result caching.

The service turns sweep execution into shared infrastructure: a
long-lived asyncio server (``python -m repro.service``) owns a
content-addressed :class:`ResultStore` of finished cells, dedups
in-flight work by digest, schedules cells across one process pool with
per-client fairness, and survives — by design and by test — worker
crashes, hung cells, its own death (journal-backed request replay), and
on-disk corruption.  See ``docs/service.md``.
"""

from repro.service.client import RemoteRunner, ServiceClient
from repro.service.protocol import (
    DEFAULT_CLIENT,
    WIRE_VERSION,
    SweepRequest,
    SweepResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.service.recovery import JOURNAL_VERSION, RequestJournal
from repro.service.server import ServiceServer, SweepService, render_metrics
from repro.service.store import RESULT_STORE_VERSION, ResultStore, cell_digest

__all__ = [
    "DEFAULT_CLIENT",
    "JOURNAL_VERSION",
    "RESULT_STORE_VERSION",
    "RemoteRunner",
    "RequestJournal",
    "ResultStore",
    "ServiceClient",
    "ServiceServer",
    "SweepRequest",
    "SweepResponse",
    "SweepService",
    "WIRE_VERSION",
    "cell_digest",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "render_metrics",
]
