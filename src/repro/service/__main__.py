"""``python -m repro.service``: run the sweep job server.

Binds, announces the resolved address on stdout (machine-readable, so
harnesses can bind port 0 and read back the ephemeral port), replays
any journalled requests from a previous crash, and serves until
``POST /v1/shutdown`` or SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.core.faults import FaultPlan
from repro.errors import ReproError
from repro.service.server import ServiceServer, SweepService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Sweep job server with content-addressed result caching.",
    )
    parser.add_argument(
        "--data-dir", required=True,
        help="state root (result store, request journal, artifact cache)",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:0",
        help="host:port (port 0 = ephemeral) or unix:<path> "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--max-workers", type=int, default=None,
        help="process-pool size (default: CPU count)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=256,
        help="max queued+active cells before 429 rejection "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="transient retries per cell (default: %(default)s)",
    )
    parser.add_argument("--backoff-base", type=float, default=0.1)
    parser.add_argument("--backoff-cap", type=float, default=2.0)
    parser.add_argument(
        "--job-timeout", type=float, default=None,
        help="watchdog seconds per cell attempt (default: none)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory (default: <data-dir>/artifacts)",
    )
    parser.add_argument(
        "--replay", choices=("auto", "off"), default="auto",
        help="prediction-stream replay mode handed to workers",
    )
    parser.add_argument(
        "--inject-faults", default=None, metavar="SPECS",
        help="comma-separated fault specs (chaos testing; see "
        "repro.core.faults)",
    )
    parser.add_argument(
        "--fault-state", default=None,
        help="shared fault-ticket directory (required with --inject-faults)",
    )
    return parser


async def _amain(args: argparse.Namespace) -> int:
    fault_plan = None
    if args.inject_faults:
        if not args.fault_state:
            print(
                "error: --inject-faults requires --fault-state",
                file=sys.stderr,
            )
            return 2
        fault_plan = FaultPlan.parse(args.inject_faults, args.fault_state)
    service = SweepService(
        data_dir=args.data_dir,
        max_workers=args.max_workers,
        queue_limit=args.queue_limit,
        retries=args.retries,
        backoff_base=args.backoff_base,
        backoff_cap=args.backoff_cap,
        job_timeout=args.job_timeout,
        cache_dir=args.cache_dir,
        replay=args.replay,
        fault_plan=fault_plan,
    )
    server = ServiceServer(service)
    await server.start(args.listen)
    if isinstance(server.address, tuple):
        host, port = server.address
        print(f"repro-service listening on {host}:{port}", flush=True)
    else:
        print(f"repro-service listening on unix:{server.address}", flush=True)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(signum, service.request_stop)
    await server.serve_forever()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
