"""Stochastic trace generation.

The generator *executes* a synthetic :class:`~repro.program.program.Program`:
it walks the code image from the entry point, asks each conditional branch's
behaviour model for its dynamic outcome, follows calls and returns through a
call stack, and resolves indirect calls through their target-selection
models.  The result is a correct-path :class:`~repro.trace.event.Trace` —
exactly what ATOM instrumentation gave the paper's authors.

Determinism: a given ``(program, seed, n_instructions)`` always produces the
same trace (behaviour models are reset at the start of each run).
"""

from __future__ import annotations

import random

from repro.errors import TraceError
from repro.isa import INSTRUCTION_SIZE, InstrKind
from repro.program.behaviour import IndirectBehaviour
from repro.program.program import Program
from repro.trace.event import BlockRecord, Trace

#: Version of the generation algorithm.  Bump whenever a change here (or
#: in the behaviour models / workload definitions) can alter the trace a
#: given ``(program, seed, n_instructions)`` produces: the artifact cache
#: (:mod:`repro.core.artifacts`) keys cached programs and traces on this,
#: so stale on-disk artifacts are invalidated instead of silently reused.
GENERATOR_VERSION = 1

#: Bits of global outcome history exposed to CorrelatedBehaviour models.
_HISTORY_BITS = 16
_HISTORY_MASK = (1 << _HISTORY_BITS) - 1

#: Call stack depth at which we assume runaway recursion in the model.
_MAX_CALL_DEPTH = 1024


class TraceGenerator:
    """Reusable generator bound to one program."""

    def __init__(self, program: Program) -> None:
        self.program = program

    def generate(self, n_instructions: int, seed: int = 0) -> Trace:
        """Generate at least *n_instructions* correct-path instructions.

        Generation stops at the end of the block that crosses the
        threshold, so the trace may slightly exceed ``n_instructions``.
        """
        if n_instructions < 1:
            raise TraceError(f"n_instructions must be >= 1, got {n_instructions}")
        program = self.program
        program.reset_behaviours()
        rng = random.Random(seed)
        image = program.image
        kinds = image.kinds_list
        targets = image.targets_list
        behaviour_ids = image.behaviours_list
        next_ctrl = image.next_ctrl_list
        behaviours = program.behaviours
        indirect_targets = program.indirect_targets
        base = image.base
        n_image = image.n_instructions
        entry = program.entry
        cond = int(InstrKind.COND_BRANCH)
        jump = int(InstrKind.JUMP)
        call = int(InstrKind.CALL)
        ret = int(InstrKind.RETURN)
        icall = int(InstrKind.INDIRECT_CALL)
        plain = int(InstrKind.PLAIN)

        records: list[BlockRecord] = []
        stack: list[int] = []
        history = 0
        emitted = 0
        pc = entry
        while emitted < n_instructions:
            idx = (pc - base) // INSTRUCTION_SIZE
            if not 0 <= idx < n_image or (pc - base) % INSTRUCTION_SIZE:
                raise TraceError(f"execution left the image at {pc:#x}")
            ctrl = next_ctrl[idx]
            if ctrl >= n_image:
                # Straight line to the end of the image: emit and wrap to
                # the entry point (models the driver restarting the
                # workload; only reachable through padding at the tail).
                length = n_image - idx
                records.append(BlockRecord(pc, length, plain, False, entry))
                emitted += length
                pc = entry
                continue
            length = ctrl - idx + 1
            kind = kinds[ctrl]
            ctrl_addr = base + ctrl * INSTRUCTION_SIZE
            fall = ctrl_addr + INSTRUCTION_SIZE
            taken = True
            if kind == cond:
                behaviour = behaviours[behaviour_ids[ctrl]]
                taken = behaviour.next_outcome(rng, history)
                history = ((history << 1) | taken) & _HISTORY_MASK
                next_pc = targets[ctrl] if taken else fall
            elif kind == jump:
                next_pc = targets[ctrl]
            elif kind == call:
                stack.append(fall)
                if len(stack) > _MAX_CALL_DEPTH:
                    raise TraceError(
                        f"call depth exceeded {_MAX_CALL_DEPTH} at {ctrl_addr:#x}"
                        " (recursive synthetic call graph?)"
                    )
                next_pc = targets[ctrl]
            elif kind == ret:
                # An empty stack means the entry function returned: restart.
                next_pc = stack.pop() if stack else entry
            elif kind == icall:
                behaviour = behaviours[behaviour_ids[ctrl]]
                if not isinstance(behaviour, IndirectBehaviour):
                    raise TraceError(
                        f"indirect call at {ctrl_addr:#x} bound to "
                        f"{type(behaviour).__name__}"
                    )
                stack.append(fall)
                if len(stack) > _MAX_CALL_DEPTH:
                    raise TraceError(
                        f"call depth exceeded {_MAX_CALL_DEPTH} at {ctrl_addr:#x}"
                    )
                choice = behaviour.next_target_index(rng)
                next_pc = indirect_targets[ctrl_addr][choice]
            else:  # pragma: no cover - image construction forbids this
                raise TraceError(f"unknown instruction kind {kind} at {ctrl_addr:#x}")
            records.append(BlockRecord(pc, length, kind, taken, next_pc))
            emitted += length
            pc = next_pc
        return Trace(program_name=program.name, records=records, seed=seed)


def generate_trace(program: Program, n_instructions: int, seed: int = 0) -> Trace:
    """Convenience wrapper: one-shot trace generation."""
    return TraceGenerator(program).generate(n_instructions, seed=seed)
