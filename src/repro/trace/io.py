"""Trace persistence.

Traces are saved as compressed ``.npz`` archives of parallel arrays.  This
is mostly a convenience for benchmarking workflows that want to generate a
long trace once and replay it across many simulator configurations in
separate processes.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import TraceError
from repro.trace.event import BlockRecord, Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | os.PathLike[str]) -> None:
    """Write *trace* to *path* as a compressed npz archive."""
    n = trace.n_blocks
    starts = np.empty(n, dtype=np.int64)
    lengths = np.empty(n, dtype=np.int32)
    kinds = np.empty(n, dtype=np.int8)
    takens = np.empty(n, dtype=np.bool_)
    next_pcs = np.empty(n, dtype=np.int64)
    for i, record in enumerate(trace.records):
        starts[i] = record.start
        lengths[i] = record.length
        kinds[i] = record.kind
        takens[i] = record.taken
        next_pcs[i] = record.next_pc
    np.savez_compressed(
        path,
        version=np.int32(_FORMAT_VERSION),
        program_name=np.str_(trace.program_name),
        seed=np.int64(-1 if trace.seed is None else trace.seed),
        starts=starts,
        lengths=lengths,
        kinds=kinds,
        takens=takens,
        next_pcs=next_pcs,
    )


def load_trace(path: str | os.PathLike[str]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        try:
            version = int(data["version"])
            if version != _FORMAT_VERSION:
                raise TraceError(f"unsupported trace format version {version}")
            program_name = str(data["program_name"])
            seed_raw = int(data["seed"])
            starts = data["starts"]
            lengths = data["lengths"]
            kinds = data["kinds"]
            takens = data["takens"]
            next_pcs = data["next_pcs"]
        except KeyError as exc:
            raise TraceError(f"trace archive missing field {exc}") from exc
    records = [
        BlockRecord(int(s), int(n), int(k), bool(t), int(p))
        for s, n, k, t, p in zip(starts, lengths, kinds, takens, next_pcs)
    ]
    return Trace(
        program_name=program_name,
        records=records,
        seed=None if seed_raw < 0 else seed_raw,
    )
