"""Trace persistence.

Traces are saved as compressed ``.npz`` archives of parallel arrays.  This
is mostly a convenience for benchmarking workflows that want to generate a
long trace once and replay it across many simulator configurations in
separate processes; the artifact cache (:mod:`repro.core.artifacts`)
stores generated traces in the same format.

Every way a load can fail — missing file, truncated or corrupt archive,
missing fields, mismatched array lengths — raises
:class:`~repro.errors.TraceError`, never a raw ``numpy``/``zipfile``
exception.
"""

from __future__ import annotations

import os
import zipfile

import numpy as np

from repro.errors import TraceError
from repro.trace.event import BlockRecord, Trace

_FORMAT_VERSION = 1

_FIELDS = ("starts", "lengths", "kinds", "takens", "next_pcs")


def save_trace(trace: Trace, path: str | os.PathLike[str]) -> None:
    """Write *trace* to *path* as a compressed npz archive."""
    if trace.records:
        starts, lengths, kinds, takens, next_pcs = zip(*trace.records)
    else:
        starts = lengths = kinds = takens = next_pcs = ()
    np.savez_compressed(
        path,
        version=np.int32(_FORMAT_VERSION),
        program_name=np.str_(trace.program_name),
        seed=np.int64(-1 if trace.seed is None else trace.seed),
        starts=np.asarray(starts, dtype=np.int64),
        lengths=np.asarray(lengths, dtype=np.int32),
        kinds=np.asarray(kinds, dtype=np.int8),
        takens=np.asarray(takens, dtype=np.bool_),
        next_pcs=np.asarray(next_pcs, dtype=np.int64),
    )


def load_trace(path: str | os.PathLike[str]) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    Raises :class:`TraceError` for anything short of a well-formed
    archive: a missing/unreadable file, a truncated or corrupt zip, a
    wrong format version, missing fields, or parallel arrays whose
    lengths disagree.
    """
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, zipfile.BadZipFile, ValueError, EOFError) as exc:
        raise TraceError(f"cannot read trace archive {path}: {exc}") from exc
    with archive as data:
        try:
            version = int(data["version"])
            if version != _FORMAT_VERSION:
                raise TraceError(f"unsupported trace format version {version}")
            program_name = str(data["program_name"])
            seed_raw = int(data["seed"])
            columns = [data[name] for name in _FIELDS]
        except KeyError as exc:
            raise TraceError(f"trace archive missing field {exc}") from exc
        except (zipfile.BadZipFile, ValueError, EOFError, OSError) as exc:
            # Member decompression can fail lazily, e.g. on a truncated
            # archive whose central directory survived.
            raise TraceError(f"corrupt trace archive {path}: {exc}") from exc
    lengths = {name: len(col) for name, col in zip(_FIELDS, columns)}
    if len(set(lengths.values())) > 1:
        raise TraceError(f"trace archive {path} has ragged columns: {lengths}")
    # Single C-level conversion per column, then one BlockRecord per row;
    # ~3x faster than per-element int()/bool() casts on long traces.
    rows = zip(*(col.tolist() for col in columns))
    return Trace(
        program_name=program_name,
        records=list(map(BlockRecord._make, rows)),
        seed=None if seed_raw < 0 else seed_raw,
    )
