"""Human-readable trace interchange format.

The binary ``.npz`` format (:mod:`repro.trace.io`) is for our own round
trips; this text format is for *interop*: anyone with a basic-block trace
from another tool (a real-machine tracer, another simulator) can convert
it to this format and replay it through the fetch-policy engine, as the
paper's authors replayed ATOM traces.

Format (one record per line, ``#`` comments and blank lines ignored)::

    # repro-trace v1
    # program: gcc
    # seed: 1995
    0x00010000 6 COND_BRANCH T 0x00010040
    0x00010040 3 CALL T 0x00012000
    ...

Columns: block start address (hex), instruction count (terminator
included), terminator kind (an :class:`~repro.isa.InstrKind` name; PLAIN
for split blocks), actual direction (``T``/``N``), and the next PC (hex).
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.errors import TraceError
from repro.isa import InstrKind
from repro.trace.event import BlockRecord, Trace

_HEADER = "# repro-trace v1"
_KIND_NAMES = {kind.name: int(kind) for kind in InstrKind}


def save_text_trace(trace: Trace, path: str | os.PathLike[str]) -> None:
    """Write *trace* in the text interchange format."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"{_HEADER}\n")
        handle.write(f"# program: {trace.program_name}\n")
        if trace.seed is not None:
            handle.write(f"# seed: {trace.seed}\n")
        for record in trace.records:
            kind = InstrKind(record.kind).name
            direction = "T" if record.taken else "N"
            handle.write(
                f"{record.start:#010x} {record.length} {kind} "
                f"{direction} {record.next_pc:#010x}\n"
            )


def _parse_line(line: str, lineno: int) -> BlockRecord:
    fields = line.split()
    if len(fields) != 5:
        raise TraceError(
            f"line {lineno}: expected 5 fields, got {len(fields)}: {line!r}"
        )
    start_text, length_text, kind_name, direction, next_text = fields
    try:
        start = int(start_text, 16)
        length = int(length_text)
        next_pc = int(next_text, 16)
    except ValueError as exc:
        raise TraceError(f"line {lineno}: bad number: {exc}") from None
    try:
        kind = _KIND_NAMES[kind_name]
    except KeyError:
        raise TraceError(
            f"line {lineno}: unknown instruction kind {kind_name!r} "
            f"(expected one of {sorted(_KIND_NAMES)})"
        ) from None
    if direction not in ("T", "N"):
        raise TraceError(
            f"line {lineno}: direction must be T or N, got {direction!r}"
        )
    record = BlockRecord(start, length, kind, direction == "T", next_pc)
    try:
        record.validate()
    except TraceError as exc:
        raise TraceError(f"line {lineno}: {exc}") from None
    return record


def parse_text_trace(
    lines: Iterable[str], program_name: str = "external"
) -> Trace:
    """Parse text-format lines into a :class:`Trace`.

    The header line is required; ``program:`` and ``seed:`` comments are
    honoured when present.
    """
    records: list[BlockRecord] = []
    seed: int | None = None
    saw_header = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            if lineno == 1 or not saw_header:
                if line == _HEADER:
                    saw_header = True
                    continue
                raise TraceError(
                    f"missing header; the first line must be {_HEADER!r}"
                )
            if body.startswith("program:"):
                program_name = body.split(":", 1)[1].strip()
            elif body.startswith("seed:"):
                try:
                    seed = int(body.split(":", 1)[1].strip())
                except ValueError:
                    raise TraceError(f"line {lineno}: bad seed") from None
            continue
        if not saw_header:
            raise TraceError(f"missing header; the first line must be {_HEADER!r}")
        records.append(_parse_line(line, lineno))
    if not records:
        raise TraceError("trace contains no records")
    trace = Trace(program_name=program_name, records=records, seed=seed)
    trace.validate()
    return trace


def load_text_trace(
    path: str | os.PathLike[str], program_name: str = "external"
) -> Trace:
    """Read a text-format trace from *path*."""
    with open(path, encoding="ascii") as handle:
        return parse_text_trace(handle, program_name=program_name)
