"""Dynamic-trace substrate.

The paper's simulator is trace-driven (ATOM instrumentation on Alpha).  Our
traces are *generated* by stochastically executing a synthetic
:class:`~repro.program.program.Program`, but downstream code sees the same
abstraction the paper's simulator saw: a sequence of correct-path basic
blocks, each ending in a control transfer with its actual outcome.

Records are block-granular (:class:`~repro.trace.event.BlockRecord`) rather
than instruction-granular — an exact, lossless compression that keeps the
pure-Python simulator fast enough for multi-hundred-thousand-instruction
runs.
"""

from repro.trace.event import BlockRecord, Trace
from repro.trace.generator import TraceGenerator, generate_trace
from repro.trace.io import load_trace, save_trace
from repro.trace.stats import TraceStats, compute_stats

__all__ = [
    "BlockRecord",
    "Trace",
    "TraceGenerator",
    "TraceStats",
    "compute_stats",
    "generate_trace",
    "load_trace",
    "save_trace",
]
