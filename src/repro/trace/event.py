"""Trace records.

A :class:`BlockRecord` describes one correct-path basic-block execution:
``length`` instructions starting at ``start``, the last of which is the
control transfer of kind ``kind`` (or ``PLAIN`` when the block was split
without a control transfer, e.g. at an image boundary).  ``next_pc`` is the
address actually executed next, and ``taken`` records the actual direction
for conditional branches.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.errors import TraceError
from repro.isa import INSTRUCTION_SIZE, InstrKind


class BlockRecord(NamedTuple):
    """One executed basic block on the correct path."""

    #: Address of the first instruction of the block.
    start: int
    #: Number of instructions in the block, terminator included.
    length: int
    #: Terminator kind as an int (``InstrKind`` value); PLAIN for splits.
    kind: int
    #: Actual direction for COND_BRANCH terminators (True = taken).
    #: True for unconditional transfers; False for PLAIN splits.
    taken: bool
    #: Address executed after this block (actual next PC).
    next_pc: int

    @property
    def terminator_address(self) -> int:
        """Address of the block's final instruction."""
        return self.start + (self.length - 1) * INSTRUCTION_SIZE

    @property
    def fall_through(self) -> int:
        """Address just past the block (not-taken continuation)."""
        return self.start + self.length * INSTRUCTION_SIZE

    def validate(self) -> None:
        """Raise :class:`TraceError` if the record is self-inconsistent."""
        if self.length < 1:
            raise TraceError(f"block at {self.start:#x} has length {self.length}")
        if self.start < 0 or self.start % INSTRUCTION_SIZE:
            raise TraceError(f"misaligned block start {self.start:#x}")
        if self.next_pc < 0 or self.next_pc % INSTRUCTION_SIZE:
            raise TraceError(f"misaligned next_pc {self.next_pc:#x}")
        kind = InstrKind(self.kind)
        if kind is InstrKind.COND_BRANCH and not self.taken:
            if self.next_pc != self.fall_through:
                raise TraceError(
                    f"not-taken branch at {self.terminator_address:#x} "
                    f"continues at {self.next_pc:#x}, expected fall-through "
                    f"{self.fall_through:#x}"
                )
        if kind is InstrKind.PLAIN and self.taken:
            raise TraceError(f"PLAIN-terminated block at {self.start:#x} taken")


@dataclass(slots=True)
class Trace:
    """An ordered sequence of correct-path block records."""

    program_name: str
    records: list[BlockRecord] = field(default_factory=list)
    seed: int | None = None
    _n_instructions: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        self._n_instructions = sum(r.length for r in self.records)

    @property
    def n_instructions(self) -> int:
        """Total correct-path instructions in the trace."""
        return self._n_instructions

    @property
    def n_blocks(self) -> int:
        """Number of block records."""
        return len(self.records)

    def __iter__(self) -> Iterator[BlockRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def validate(self) -> None:
        """Check every record plus inter-record continuity."""
        for record in self.records:
            record.validate()
        for prev, nxt in zip(self.records, self.records[1:]):
            if prev.next_pc != nxt.start:
                raise TraceError(
                    f"discontinuity: block at {prev.start:#x} continues at "
                    f"{prev.next_pc:#x} but next block starts at {nxt.start:#x}"
                )

    def __repr__(self) -> str:
        return (
            f"Trace(program={self.program_name!r}, blocks={self.n_blocks}, "
            f"instructions={self.n_instructions})"
        )
