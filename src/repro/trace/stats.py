"""Trace statistics.

Reproduces the workload-characterisation numbers the paper reports in its
Table 2 (instruction counts, % branches) plus extra structure useful for
calibrating the synthetic workloads (taken rates, block lengths, code
footprint actually touched).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.isa import InstrKind, span_lines
from repro.trace.event import Trace


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Summary statistics of one dynamic trace."""

    n_instructions: int
    n_blocks: int
    #: Dynamic control-transfer instructions (all kinds) / all instructions.
    pct_branches: float
    #: Dynamic conditional branches / all instructions.
    pct_conditional: float
    #: Fraction of conditional branches that were taken.
    taken_fraction: float
    #: Mean dynamic basic-block length in instructions.
    avg_block_length: float
    #: Distinct I-cache lines touched (at ``line_size`` granularity).
    footprint_lines: int
    #: Footprint in bytes (= footprint_lines * line_size).
    footprint_bytes: int
    #: Dynamic counts per terminator kind name.
    kind_counts: dict[str, int]
    #: Number of distinct static conditional-branch sites executed.
    static_cond_sites: int
    #: Number of distinct static taken-transfer sites (BTB working set).
    static_taken_sites: int


def compute_stats(trace: Trace, line_size: int = 32) -> TraceStats:
    """Compute :class:`TraceStats` for *trace*."""
    kind_counts: Counter[int] = Counter()
    taken_cond = 0
    lines: set[int] = set()
    cond_sites: set[int] = set()
    taken_sites: set[int] = set()
    for record in trace.records:
        kind_counts[record.kind] += 1
        for line in span_lines(record.start, record.length, line_size):
            lines.add(line)
        if record.kind == int(InstrKind.COND_BRANCH):
            cond_sites.add(record.terminator_address)
            if record.taken:
                taken_cond += 1
                taken_sites.add(record.terminator_address)
        elif record.kind != int(InstrKind.PLAIN):
            taken_sites.add(record.terminator_address)

    n_instr = trace.n_instructions
    n_blocks = trace.n_blocks
    n_cond = kind_counts[int(InstrKind.COND_BRANCH)]
    n_control = sum(
        count for kind, count in kind_counts.items() if kind != int(InstrKind.PLAIN)
    )
    return TraceStats(
        n_instructions=n_instr,
        n_blocks=n_blocks,
        pct_branches=100.0 * n_control / n_instr if n_instr else 0.0,
        pct_conditional=100.0 * n_cond / n_instr if n_instr else 0.0,
        taken_fraction=taken_cond / n_cond if n_cond else 0.0,
        avg_block_length=n_instr / n_blocks if n_blocks else 0.0,
        footprint_lines=len(lines),
        footprint_bytes=len(lines) * line_size,
        kind_counts={InstrKind(k).name: v for k, v in sorted(kind_counts.items())},
        static_cond_sites=len(cond_sites),
        static_taken_sites=len(taken_sites),
    )
