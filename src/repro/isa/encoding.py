"""Address and cache-line arithmetic.

All addresses in the simulator are plain ints (byte addresses).  These
helpers centralise the line math so the cache, the prefetcher and the
wrong-path walker all agree on what "line i" means.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fixed instruction width in bytes (Alpha AXP).
INSTRUCTION_SIZE = 4


def _check_power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")


def align_down(address: int, alignment: int) -> int:
    """Round *address* down to a multiple of *alignment* (a power of two)."""
    _check_power_of_two(alignment, "alignment")
    return address & ~(alignment - 1)


def align_up(address: int, alignment: int) -> int:
    """Round *address* up to a multiple of *alignment* (a power of two)."""
    _check_power_of_two(alignment, "alignment")
    return (address + alignment - 1) & ~(alignment - 1)


def line_number(address: int, line_size: int) -> int:
    """Cache-line number containing *address*."""
    _check_power_of_two(line_size, "line_size")
    return address >> line_size.bit_length() - 1


def line_address(address: int, line_size: int) -> int:
    """Base address of the cache line containing *address*."""
    return align_down(address, line_size)


def line_offset(address: int, line_size: int) -> int:
    """Byte offset of *address* within its cache line."""
    _check_power_of_two(line_size, "line_size")
    return address & (line_size - 1)


def instructions_per_line(line_size: int) -> int:
    """Number of fixed-width instructions in one cache line."""
    _check_power_of_two(line_size, "line_size")
    if line_size < INSTRUCTION_SIZE:
        raise ValueError(f"line_size {line_size} smaller than an instruction")
    return line_size // INSTRUCTION_SIZE


def instruction_index(address: int) -> int:
    """Index of the instruction at *address* in a 4-byte-per-slot space."""
    if address % INSTRUCTION_SIZE:
        raise ValueError(f"misaligned instruction address {address:#x}")
    return address // INSTRUCTION_SIZE


def span_lines(start: int, n_instructions: int, line_size: int) -> range:
    """Line numbers touched by *n_instructions* starting at *start*.

    Returns a ``range`` of line numbers (inclusive of both endpoints'
    lines).  ``n_instructions`` must be >= 1.
    """
    if n_instructions < 1:
        raise ValueError("span_lines needs at least one instruction")
    first = line_number(start, line_size)
    last_addr = start + (n_instructions - 1) * INSTRUCTION_SIZE
    last = line_number(last_addr, line_size)
    return range(first, last + 1)


@dataclass(frozen=True, slots=True)
class AddressSpace:
    """A contiguous code region ``[base, base + size_bytes)``.

    Used by the layout engine to place functions, and by validation code to
    check that generated control flow stays inside the program image.
    """

    base: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("address-space base must be non-negative")
        if self.base % INSTRUCTION_SIZE:
            raise ValueError("address-space base must be instruction-aligned")
        if self.size_bytes <= 0:
            raise ValueError("address space must have positive size")

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size_bytes

    def contains(self, address: int) -> bool:
        """True if *address* lies inside the region."""
        return self.base <= address < self.end

    def instruction_capacity(self) -> int:
        """How many fixed-width instructions fit in the region."""
        return self.size_bytes // INSTRUCTION_SIZE
