"""Human-readable rendering of instructions and code regions.

Purely diagnostic: used by examples and error messages, never by the
simulation hot path.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.isa.instruction import Instruction, InstrKind

_MNEMONICS = {
    InstrKind.PLAIN: "op",
    InstrKind.COND_BRANCH: "bcond",
    InstrKind.JUMP: "jmp",
    InstrKind.CALL: "call",
    InstrKind.RETURN: "ret",
    InstrKind.INDIRECT_CALL: "icall",
}


def format_instruction(instr: Instruction) -> str:
    """Render one instruction as ``addr: mnemonic [target]``."""
    mnemonic = _MNEMONICS[instr.kind]
    if instr.target is not None:
        return f"{instr.address:#010x}: {mnemonic:<6} {instr.target:#010x}"
    return f"{instr.address:#010x}: {mnemonic}"


def format_listing(instructions: Iterable[Instruction]) -> str:
    """Render a sequence of instructions, one per line."""
    return "\n".join(format_instruction(instr) for instr in instructions)
