"""Instruction model.

Instructions are fixed-width (4 bytes, Alpha-like).  An instruction is fully
described by its kind plus, for control transfers, its static target(s).
Conditional branches also carry the index of the *behaviour model* that the
trace generator uses to decide taken/not-taken at run time; the front-end
simulator itself never looks at that field.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InstrKind(enum.IntEnum):
    """Classification of instructions as seen by the fetch architecture."""

    #: Ordinary (non-control) instruction: ALU op, load, store, ...
    PLAIN = 0
    #: Conditional branch: taken -> ``target``, not taken -> fall-through.
    COND_BRANCH = 1
    #: Unconditional direct jump to ``target``.
    JUMP = 2
    #: Direct call: jumps to ``target`` and pushes the return address.
    CALL = 3
    #: Return: target comes from the call stack (dynamic).
    RETURN = 4
    #: Indirect jump/call: target chosen dynamically among several callees
    #: (models C++ virtual dispatch and function pointers).
    INDIRECT_CALL = 5


#: Kinds that transfer control (everything except PLAIN).
CONTROL_KINDS = frozenset(
    {
        InstrKind.COND_BRANCH,
        InstrKind.JUMP,
        InstrKind.CALL,
        InstrKind.RETURN,
        InstrKind.INDIRECT_CALL,
    }
)

#: Kinds whose target is *not* encoded in the instruction and must be
#: produced dynamically (BTB or call stack).
DYNAMIC_TARGET_KINDS = frozenset({InstrKind.RETURN, InstrKind.INDIRECT_CALL})


def is_control(kind: InstrKind) -> bool:
    """Return True if *kind* transfers control."""
    return kind in CONTROL_KINDS


@dataclass(frozen=True, slots=True)
class Instruction:
    """A single decoded instruction.

    Attributes:
        address: byte address of the instruction.
        kind: the :class:`InstrKind`.
        target: static target address for COND_BRANCH / JUMP / CALL;
            ``None`` for PLAIN and for dynamic-target kinds.
        behaviour: for COND_BRANCH, index of the branch-behaviour model in
            the owning program (drives the trace generator); for
            INDIRECT_CALL, index of the target-selection model.  ``None``
            otherwise.
    """

    address: int
    kind: InstrKind
    target: int | None = None
    behaviour: int | None = None

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"negative instruction address {self.address:#x}")
        static_target_kinds = (
            InstrKind.COND_BRANCH,
            InstrKind.JUMP,
            InstrKind.CALL,
        )
        if self.kind in static_target_kinds and self.target is None:
            raise ValueError(f"{self.kind.name} at {self.address:#x} needs a target")
        if self.kind in DYNAMIC_TARGET_KINDS and self.target is not None:
            raise ValueError(
                f"{self.kind.name} at {self.address:#x} must not carry a static target"
            )
        if self.kind is InstrKind.PLAIN and self.target is not None:
            raise ValueError(f"PLAIN at {self.address:#x} must not carry a target")

    @property
    def is_control(self) -> bool:
        """True if this instruction transfers control."""
        return self.kind in CONTROL_KINDS

    @property
    def is_conditional(self) -> bool:
        """True if this is a conditional branch."""
        return self.kind is InstrKind.COND_BRANCH

    @property
    def has_static_target(self) -> bool:
        """True if the target address is encoded in the instruction."""
        return self.target is not None

    def fall_through(self, instruction_size: int = 4) -> int:
        """Address of the next sequential instruction."""
        return self.address + instruction_size
