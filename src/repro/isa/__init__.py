"""Abstract instruction-set layer.

The paper traces Alpha AXP binaries; for the reproduction only three things
about the ISA matter to an instruction-cache study:

* instructions have addresses and a fixed size (4 bytes on Alpha),
* some instructions are control transfers with static targets,
* control transfers come in kinds that the branch architecture treats
  differently (conditional branch, direct jump/call, return, indirect).

This package provides exactly that: :class:`~repro.isa.instruction.Instruction`
with an :class:`~repro.isa.instruction.InstrKind`, plus the address/line
arithmetic used throughout the simulator.
"""

from repro.isa.encoding import (
    INSTRUCTION_SIZE,
    AddressSpace,
    align_down,
    align_up,
    instruction_index,
    instructions_per_line,
    line_address,
    line_number,
    line_offset,
    span_lines,
)
from repro.isa.instruction import (
    CONTROL_KINDS,
    Instruction,
    InstrKind,
    is_control,
)

__all__ = [
    "INSTRUCTION_SIZE",
    "AddressSpace",
    "CONTROL_KINDS",
    "Instruction",
    "InstrKind",
    "align_down",
    "align_up",
    "instruction_index",
    "instructions_per_line",
    "is_control",
    "line_address",
    "line_number",
    "line_offset",
    "span_lines",
]
