"""Per-file and per-repo context handed to every lint rule.

A rule sees one :class:`FileContext` at a time: the parsed AST, the raw
source lines, the file's dotted module name (derived from the package
layout, so rules can scope themselves to ``repro.core`` and friends
without caring where the repo is checked out), and the inline
suppressions.  Repo-wide facts that individual rules need — the declared
event-class registry, the tests corpus used by the fast-path parity rule
— live on the shared :class:`RepoContext` and are computed lazily at
most once per run.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.config import LintConfig

#: Inline suppression directives::
#:
#:     x = time.time()  # simlint: disable=SIM001
#:     # simlint: disable=SIM004,SIM006   (suppresses the next line)
#:     # simlint: disable-file=SIM002     (suppresses the whole file)
#:
#: Rule lists are comma-separated ids; ``all`` suppresses every rule.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\- ]+)"
)

#: Matches a line that is nothing but a comment (suppressions on such a
#: line apply to the following line).
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


@dataclass(frozen=True, slots=True)
class Suppressions:
    """Parsed ``# simlint:`` directives for one file."""

    #: Rules disabled for the whole file ({"all"} disables everything).
    file_rules: frozenset[str]
    #: Line number -> rules disabled on that line.
    line_rules: dict[int, frozenset[str]]

    def suppresses(self, rule_id: str, line: int) -> bool:
        """Whether *rule_id* is suppressed at 1-based *line*."""
        for rules in (self.file_rules, self.line_rules.get(line, frozenset())):
            if "all" in rules or rule_id in rules:
                return True
        return False


def parse_suppressions(lines: list[str]) -> Suppressions:
    """Extract suppression directives from raw source *lines*.

    A directive on a code line applies to that line; a directive on a
    comment-only line applies to the line below it (so a suppression can
    sit above a long statement instead of trailing it).
    """
    file_rules: set[str] = set()
    line_rules: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        kind = match.group(1)
        rules = {
            part.strip()
            for part in match.group(2).split(",")
            if part.strip()
        }
        if kind == "disable-file":
            file_rules.update(rules)
        elif _COMMENT_ONLY_RE.match(text):
            line_rules.setdefault(lineno + 1, set()).update(rules)
        else:
            line_rules.setdefault(lineno, set()).update(rules)
    return Suppressions(
        file_rules=frozenset(file_rules),
        line_rules={line: frozenset(rules) for line, rules in line_rules.items()},
    )


def module_name_for(path: Path) -> str:
    """Dotted module name for *path*, derived from ``__init__.py`` walk.

    ``src/repro/core/engine.py`` maps to ``repro.core.engine`` no matter
    what the working directory is: we climb parents for as long as they
    are packages.  Files outside any package (tools, tests fixtures) get
    their bare stem, which matches no scoped-rule prefix.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts)


def module_in(module: str, prefixes: tuple[str, ...]) -> bool:
    """Whether dotted *module* equals or lives under any of *prefixes*."""
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


@dataclass
class RepoContext:
    """Facts shared across every file of one lint run."""

    root: Path
    config: LintConfig
    _event_classes: frozenset[str] | None = field(default=None, repr=False)
    _taxonomy_types: frozenset[str] | None = field(default=None, repr=False)
    _tests_corpus: str | None = field(default=None, repr=False)

    def _parse_class_names(self, relpath: str) -> frozenset[str]:
        """Top-level class names declared in one repo source file."""
        source_file = self.root / relpath
        if not source_file.is_file():
            return frozenset()
        try:
            tree = ast.parse(source_file.read_text(encoding="utf-8"))
        except SyntaxError:
            return frozenset()
        return frozenset(
            node.name
            for node in tree.body
            if isinstance(node, ast.ClassDef)
        )

    @property
    def event_classes(self) -> frozenset[str]:
        """Event types declared in ``repro.obs.events`` (SIM009 registry).

        Empty when the module cannot be found (linting a foreign tree),
        in which case the event-registry rule stands down rather than
        flagging everything.
        """
        if self._event_classes is None:
            self._event_classes = self._parse_class_names(
                "src/repro/obs/events.py"
            )
        return self._event_classes

    @property
    def taxonomy_types(self) -> frozenset[str]:
        """Exception types declared in ``repro.errors`` (SIM004 taxonomy)."""
        if self._taxonomy_types is None:
            self._taxonomy_types = self._parse_class_names(
                "src/repro/errors.py"
            )
        return self._taxonomy_types

    @property
    def tests_corpus(self) -> str:
        """Concatenated text of every test file (SIM008 parity lookups)."""
        if self._tests_corpus is None:
            tests_root = self.root / self.config.tests_path
            chunks = []
            if tests_root.is_dir():
                for test_file in sorted(tests_root.rglob("*.py")):
                    try:
                        chunks.append(test_file.read_text(encoding="utf-8"))
                    except OSError:
                        continue
            self._tests_corpus = "\n".join(chunks)
        return self._tests_corpus


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: Path
    #: Path as reported in findings (repo-relative when possible).
    relpath: str
    #: Dotted module name ("" when the file is not inside a package).
    module: str
    source: str
    lines: list[str]
    tree: ast.Module
    suppressions: Suppressions
    repo: RepoContext

    @classmethod
    def load(cls, path: Path, repo: RepoContext) -> FileContext:
        """Parse *path* into a context (raises SyntaxError on bad files)."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        try:
            relpath = str(path.resolve().relative_to(repo.root))
        except ValueError:
            relpath = str(path)
        return cls(
            path=path,
            relpath=relpath,
            module=module_name_for(path),
            source=source,
            lines=source.splitlines(),
            tree=tree,
            suppressions=parse_suppressions(source.splitlines()),
            repo=repo,
        )

    def in_modules(self, prefixes: tuple[str, ...]) -> bool:
        return module_in(self.module, prefixes)


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if any(part.startswith(".") for part in candidate.parts):
                    continue
                seen.add(candidate.resolve())
        elif path.suffix == ".py":
            seen.add(path.resolve())
    return sorted(seen)
