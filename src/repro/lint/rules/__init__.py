"""Built-in simlint rules.

Importing this package registers every rule with
:mod:`repro.lint.registry`.  Each module holds one invariant family; the
ids are stable and documented in ``docs/static-analysis.md``:

========  =================  ====================================================
id        name               invariant
========  =================  ====================================================
SIM001    determinism        no wall-clock / unseeded randomness in sim modules
SIM002    ordered-iteration  no unordered set/dict-keys iteration in sim modules
SIM003    pool-picklable     exception types must survive the process pool
SIM004    error-taxonomy     core/experiments raise repro.errors types
SIM005    metric-namespace   counter names live in registered namespaces
SIM006    mutable-default    no mutable default arguments
SIM007    float-counter      integer counters never accumulate float literals
SIM008    fast-parity        every _fast variant has a differential test
SIM009    event-registry     emitted events are declared in repro.obs.events
SIM010    branch-seam        branch units constructed only via the factory seam
SIM011    engine-seam        engines constructed only via build_engine
SIM012    policy-seam        engine hot path reads policy via the schedule seam
SIM013    service-hygiene    service handlers never swallow errors or block the loop
SIM014    flow-determinism   no transitive path from sim code to nondet sources
SIM015    flow-blocking      async handlers never reach blocking calls via sync callees
SIM016    flow-seam          no call path constructs engines/units behind the seam
========  =================  ====================================================

SIM014–SIM016 are whole-program rules living in :mod:`repro.lint.flow`;
they are imported here (after the per-file modules whose tables they
reuse) so one import registers the complete rule set.
"""

from repro.lint.rules import (  # noqa: F401  (import side effect: register)
    branchseam,
    conventions,
    defaults,
    determinism,
    engineseam,
    fastparity,
    floatcounter,
    ordering,
    picklable,
    policyseam,
    service,
    taxonomy,
)

from repro.lint.flow import (  # noqa: F401  (import side effect: register)
    blocking,
    seams,
    taint,
)
