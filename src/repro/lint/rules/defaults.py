"""SIM006: no mutable default arguments.

A ``def f(x, acc=[])`` default is evaluated once at definition time and
shared across every call — in a simulator that memoises programs and
traces per (seed, length) key, a shared-list default is state leaking
between *sweep cells*, the exact cross-contamination the differential
tests exist to rule out.  The rule flags list/dict/set displays and
bare mutable-constructor calls (``list()``, ``dict()``, ``set()``,
``bytearray()``, ``collections.deque()``, ``defaultdict(...)``) used as
parameter defaults; use ``None`` plus an in-body fallback, or a
``dataclasses.field(default_factory=...)`` for dataclass fields.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.asthelpers import terminal_name
from repro.lint.context import FileContext
from repro.lint.registry import RawFinding, Rule, register

#: Constructor names whose call result is mutable shared state.
MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "OrderedDict"}
)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        return name in MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultRule(Rule):
    id = "SIM006"
    name = "mutable-default"
    description = "no mutable default argument values"

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    label = getattr(node, "name", "<lambda>")
                    yield (
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in {label}(); the value "
                        f"is shared across calls — default to None and "
                        f"create the container in the body",
                    )
