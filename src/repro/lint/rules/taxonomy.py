"""SIM004: core/experiments raise sites must use the repro.errors taxonomy.

The fault-tolerant sweep layer classifies every failure with
``repro.core.faults.is_transient``: known :class:`ReproError` subtypes
fail fast, watchdog timeouts retry, unknown types are treated as bugs.
A ``raise ValueError(...)`` in ``repro.core`` bypasses that taxonomy —
the CLI cannot map it to an exit code, ``on_error="skip"`` records an
unclassifiable failure, and callers who follow the documented contract
(catch ``ReproError``) leak it.  This rule requires every exception
*constructed at a raise site* in the taxonomy modules to be a
``repro.errors`` type (or a locally-defined subclass of one).

Out of scope, deliberately: bare ``raise`` (re-raise), ``raise exc`` of
a variable, and factory calls (``raise self._worker_error(...)``) —
those cannot be classified syntactically.  Protocol-mandated builtins
(``AttributeError`` from ``__getattr__``, ``NotImplementedError``) are
allowed via ``taxonomy-allowed`` in ``[tool.simlint]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.asthelpers import (
    is_builtin_exception,
    looks_like_exception,
    resolve_name,
    import_aliases,
    terminal_name,
)
from repro.lint.context import FileContext
from repro.lint.registry import RawFinding, Rule, register


def _local_taxonomy_subclasses(
    tree: ast.Module, taxonomy: frozenset[str]
) -> set[str]:
    """Classes in this file that (transitively) subclass a taxonomy type."""
    local: set[str] = set()
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    grew = True
    while grew:
        grew = False
        for node in classes:
            if node.name in local:
                continue
            for base in node.bases:
                name = terminal_name(base)
                if name is not None and (name in taxonomy or name in local):
                    local.add(node.name)
                    grew = True
                    break
    return local


@register
class ErrorTaxonomyRule(Rule):
    id = "SIM004"
    name = "error-taxonomy"
    description = (
        "raise sites in repro.core / repro.experiments must use "
        "repro.errors types"
    )

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        if not ctx.in_modules(ctx.repo.config.taxonomy_modules):
            return
        taxonomy = ctx.repo.taxonomy_types
        if not taxonomy:
            return
        allowed = set(ctx.repo.config.taxonomy_allowed)
        local = _local_taxonomy_subclasses(ctx.tree, taxonomy)
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if not isinstance(exc, ast.Call):
                continue  # `raise exc` of a variable: not classifiable
            name = terminal_name(exc.func)
            if name is None or not name[:1].isupper():
                continue  # factory call, not a class construction
            if name in taxonomy or name in local or name in allowed:
                continue
            resolved = resolve_name(exc.func, aliases) or ""
            if resolved.startswith("repro.errors."):
                continue
            if is_builtin_exception(name) or looks_like_exception(name):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"raise of {name} outside the repro.errors taxonomy; "
                    f"is_transient() cannot classify it — use a ReproError "
                    f"subtype (or add to taxonomy-allowed)",
                )
