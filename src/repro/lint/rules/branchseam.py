"""SIM010: branch units are constructed only through the factory seam.

Prediction-stream replay (``repro.branch.stream``) works because every
simulation obtains its branch unit through ``build_branch_unit``, the
one seam where a recorded stream can be substituted for the live
predictor.  A ``BranchUnit(...)`` (or ``ReplayBranchUnit(...)``)
constructed directly anywhere else silently bypasses that seam: the
cell runs live even when a stream was requested, and replay coverage
quietly erodes.  This rule flags direct constructions in the
determinism modules outside the two sanctioned factories
(``build_branch_unit`` and ``make_paper_branch_unit``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import RawFinding, Rule, register

#: Constructors that must go through the seam.
_UNIT_CLASSES = frozenset({"BranchUnit", "ReplayBranchUnit"})

#: Functions allowed to construct branch units directly: the seam itself
#: and the paper-parameter convenience factory it delegates to.
_ALLOWED_FACTORIES = frozenset({"build_branch_unit", "make_paper_branch_unit"})


def _constructed_class(call: ast.Call) -> str | None:
    """The branch-unit class a call constructs, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in _UNIT_CLASSES:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _UNIT_CLASSES:
        return func.attr
    return None


@register
class BranchSeamRule(Rule):
    id = "SIM010"
    name = "branch-seam"
    description = (
        "branch units are constructed only inside build_branch_unit / "
        "make_paper_branch_unit (the prediction-stream replay seam)"
    )

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        if not ctx.in_modules(ctx.repo.config.determinism_modules):
            return
        yield from self._walk(ctx.tree, inside_factory=False)

    def _walk(self, node: ast.AST, inside_factory: bool) -> Iterator[RawFinding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(
                    child,
                    inside_factory or child.name in _ALLOWED_FACTORIES,
                )
                continue
            if isinstance(child, ast.Call) and not inside_factory:
                cls = _constructed_class(child)
                if cls is not None:
                    yield (
                        child.lineno,
                        child.col_offset,
                        f"direct {cls}(...) construction bypasses the "
                        f"replay seam; obtain branch units through "
                        f"build_branch_unit (or make_paper_branch_unit)",
                    )
            yield from self._walk(child, inside_factory)
