"""SIM012: the engine hot path reads its policy through the schedule seam.

PR 7 turned the fetch policy from a construction-time constant into a
per-interval input: the engine asks its ``PolicySchedule``
(``repro.core.schedule``) which policy governs the current interval and
caches the answer in ``self.policy``.  A ``config.policy`` read inside
the engine hot path re-freezes the policy at construction time — under a
script/tournament/oracle schedule it silently simulates the wrong
policy for every interval after the first switch, and no differential
test catches it because the static matrix never switches.

This rule bans ``*.config.policy`` attribute reads in the engine-side
modules (``repro.core.engine``, ``repro.core.vector``,
``repro.core.adaptive``).  The sanctioned readers live elsewhere:
``build_schedule`` (the seam, in ``repro.core.schedule``) and the
display layer (``repro.core.results``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import RawFinding, Rule, register

#: Modules whose code runs per-interval and must take the policy from
#: the schedule seam, never from the frozen config.
_ENGINE_MODULES = (
    "repro.core.engine",
    "repro.core.vector",
    "repro.core.adaptive",
)


def _is_config_policy(node: ast.Attribute) -> bool:
    """True for ``config.policy`` / ``<anything>.config.policy``."""
    if node.attr != "policy":
        return False
    value = node.value
    if isinstance(value, ast.Name):
        return value.id == "config"
    if isinstance(value, ast.Attribute):
        return value.attr == "config"
    return False


@register
class PolicySeamRule(Rule):
    id = "SIM012"
    name = "policy-seam"
    description = (
        "engine hot-path modules take the fetch policy from the "
        "PolicySchedule seam, never from config.policy"
    )

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        if not ctx.in_modules(_ENGINE_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and _is_config_policy(node):
                yield (
                    node.lineno,
                    node.col_offset,
                    "config.policy read in the engine hot path freezes "
                    "the policy at construction time; read the current "
                    "interval's policy through the PolicySchedule seam "
                    "(engine.policy / schedule.policy_for)",
                )
