"""SIM011: engines are constructed only through the factory seam.

The vectorized batch backend (``repro.core.vector``) works because every
simulation obtains its engine through ``build_engine``, the one seam
where backend selection, replay-stream availability, and observer
constraints are all checked.  A ``FetchEngine(...)`` (or
``VectorEngine(...)``) constructed directly anywhere else silently
bypasses that seam: the cell pins one backend regardless of the
``engine_backend`` knob, and the cross-backend differential guarantees
quietly erode.  The same seam discipline covers the backend's lowered
kernel state (``repro.core.vector_kernels``): ``TraceArrays`` /
``ProbeArrays`` / ``WalkArrays`` and their geometry splits are memoized
read-only data shared across engines and ``AdaptiveEngine`` forks, and
a direct construction launders a private un-memoized copy past that
sharing (and past the identity keying that makes it correct).  This
rule flags direct constructions in the determinism modules outside the
sanctioned factories (``build_engine`` and the ``*_arrays`` /
``*_split`` lowering factories).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import RawFinding, Rule, register

#: Constructors that must go through a seam: the engines themselves and
#: the vector backend's lowered kernel state.
_ENGINE_CLASSES = frozenset(
    {
        "FetchEngine",
        "VectorEngine",
        "TraceArrays",
        "ProbeArrays",
        "WalkArrays",
        "ProbeSplit",
        "WalkSplit",
    }
)

#: Functions allowed to construct seam-guarded classes directly: the
#: engine seam and the memoized lowering factories.
_ALLOWED_FACTORIES = frozenset(
    {
        "build_engine",
        "trace_arrays",
        "probe_arrays",
        "walk_arrays",
        "probe_split",
        "walk_split",
    }
)


def _constructed_class(call: ast.Call) -> str | None:
    """The engine class a call constructs, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in _ENGINE_CLASSES:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _ENGINE_CLASSES:
        return func.attr
    return None


@register
class EngineSeamRule(Rule):
    id = "SIM011"
    name = "engine-seam"
    description = (
        "engines are constructed only inside build_engine (the "
        "backend-selection seam)"
    )

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        if not ctx.in_modules(ctx.repo.config.determinism_modules):
            return
        yield from self._walk(ctx.tree, inside_factory=False)

    def _walk(self, node: ast.AST, inside_factory: bool) -> Iterator[RawFinding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(
                    child,
                    inside_factory or child.name in _ALLOWED_FACTORIES,
                )
                continue
            if isinstance(child, ast.Call) and not inside_factory:
                cls = _constructed_class(child)
                if cls is not None:
                    yield (
                        child.lineno,
                        child.col_offset,
                        f"direct {cls}(...) construction bypasses the "
                        f"backend-selection seam; obtain engines through "
                        f"build_engine",
                    )
            yield from self._walk(child, inside_factory)
