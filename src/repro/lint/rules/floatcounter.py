"""SIM007: integer counters must never accumulate float literals.

Every metric in the observability layer is integer-valued on purpose:
integer addition is associative, so per-worker registries merge to
bit-identical totals regardless of completion order — the property the
serial-vs-parallel differential tests assert.  One ``counter += 0.5``
(or ``registry.inc("engine.x", 1.5)``) turns that into float
accumulation, where merge order changes the low bits and the golden
snapshots start flaking by one ULP.  The rule flags:

* augmented ``+=`` / ``-=`` of a float literal onto a counter-shaped
  name (``*_count``, ``*_total``, ``*_slots``, ``*_hits`` ...);
* float literals passed to ``.inc()`` / ``.observe()``;
* float literals in ``Counter(...)``-style histogram ``observe`` calls.

Quantities that are genuinely fractional (wall-clock seconds, rates)
belong in the profiler or in derived statistics, not in counters.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import RawFinding, Rule, register

#: Name shapes treated as integer counters.
COUNTERISH = re.compile(
    r"(^|_)(count|counts|counter|total|totals|slots|hits|misses|fills|"
    r"probes|blocks|instructions|retries|timeouts|emitted|fired|issued)($|_)"
)


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


def _target_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register
class FloatCounterRule(Rule):
    id = "SIM007"
    name = "float-counter"
    description = "integer counters must not accumulate float literals"

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, (ast.Add, ast.Sub))
                and _is_float_literal(node.value)
            ):
                name = _target_name(node.target)
                if name is not None and COUNTERISH.search(name):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"float accumulation into counter-like {name!r}; "
                        f"counters are integers so parallel merges stay "
                        f"bit-identical",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("inc", "observe")
            ):
                for arg in node.args:
                    if _is_float_literal(arg):
                        yield (
                            arg.lineno,
                            arg.col_offset,
                            f"float literal passed to .{node.func.attr}(); "
                            f"metrics are integer-valued by contract",
                        )
