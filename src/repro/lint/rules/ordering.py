"""SIM002: no unordered set / dict-keys iteration in simulation modules.

Iterating a ``set`` visits elements in hash order, which varies across
interpreter runs (string hash randomisation) and across insertion
histories; ``dict.keys()`` is insertion-ordered, which is stable only if
every insertion site is itself deterministic — an assumption this repo
refuses to lean on for simulator state.  An unordered walk that feeds
state (filling a cache, draining a station, merging results) is exactly
the kind of bug the serial-vs-parallel differential tests catch weeks
later with no pointer back to the cause.

The rule is syntactic: it flags ``for``/comprehension iteration whose
iterable is a set constructor, set literal/comprehension, set-union
expression, ``.keys()`` call, or a filesystem enumerator
(``iterdir``/``listdir``/``glob``/``rglob``/``scandir`` — directory
order is OS- and history-dependent) — and the same expressions flowing into
order-preserving collectors (``list(...)``, ``tuple(...)``,
``".".join(...)``).  Wrapping the expression in ``sorted(...)`` makes
the order explicit and satisfies the rule; iteration over plain dicts
and ``.items()``/``.values()`` is left alone.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import RawFinding, Rule, register


#: Filesystem enumerators whose yield order is OS-dependent.
FS_ENUMERATORS = frozenset({"iterdir", "listdir", "glob", "rglob", "scandir"})


def _unordered_reason(node: ast.expr) -> str | None:
    """Why *node* produces values in no deterministic order (or None)."""
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set",
            "frozenset",
        ):
            return f"{node.func.id}(...)"
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "keys":
                return ".keys()"
            if node.func.attr in FS_ENUMERATORS:
                return f".{node.func.attr}() (OS-dependent directory order)"
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # a | b, a & b, a - b: flag only when a side is itself set-shaped,
        # so integer arithmetic is never touched.
        if _unordered_reason(node.left) or _unordered_reason(node.right):
            return "a set expression"
    return None


@register
class OrderedIterationRule(Rule):
    id = "SIM002"
    name = "ordered-iteration"
    description = (
        "iteration over sets or dict.keys() in simulation modules must be "
        "wrapped in sorted(...)"
    )

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        if not ctx.in_modules(ctx.repo.config.determinism_modules):
            return
        for node in ast.walk(ctx.tree):
            iterables: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iterables.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                iterables.extend(self._collector_args(node))
            for iterable in iterables:
                reason = _unordered_reason(iterable)
                if reason is not None:
                    yield (
                        iterable.lineno,
                        iterable.col_offset,
                        f"iteration over {reason} has no deterministic "
                        f"order; wrap it in sorted(...)",
                    )

    @staticmethod
    def _collector_args(call: ast.Call) -> list[ast.expr]:
        """Args of order-preserving collectors fed by this call."""
        if isinstance(call.func, ast.Name) and call.func.id in (
            "list",
            "tuple",
        ):
            return list(call.args[:1])
        if isinstance(call.func, ast.Attribute) and call.func.attr == "join":
            return list(call.args[:1])
        return []
