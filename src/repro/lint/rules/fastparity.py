"""SIM008: every ``_fast`` code-path variant needs a differential test.

The PR 2 fast path is trusted only because
``tests/core/test_engine_fast_path.py`` proves it bit-identical to the
general path on every policy; a future ``_fast`` variant added without
such a test is an unverified fork of the simulator.  This rule finds
``_fast``-named functions and attributes defined in source modules and
requires the same identifier to appear somewhere under the tests tree
(the corpus configured by ``tests-path``).  It runs only over the
determinism module prefixes — simulation code is where unverified fast
paths are dangerous.  A name-level check is
deliberately cheap: it cannot prove the test is *differential*, but it
guarantees a test that at least touches the variant exists, and the
fixture convention (name the test after the variant) makes review easy.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import RawFinding, Rule, register


def _fast_identifiers(tree: ast.Module) -> dict[str, tuple[int, int]]:
    """``_fast``-ish names defined in this module -> first (line, col)."""
    found: dict[str, tuple[int, int]] = {}

    def record(name: str, node: ast.AST) -> None:
        if "_fast" in name and name not in found:
            found[name] = (node.lineno, node.col_offset)

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            record(node.name, node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute):
                    record(target.attr, target)
                elif isinstance(target, ast.Name):
                    record(target.id, target)
    return found


@register
class FastPathParityRule(Rule):
    id = "SIM008"
    name = "fast-parity"
    description = (
        "every _fast code-path variant must be exercised by a test "
        "under the tests tree"
    )

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        if not ctx.in_modules(ctx.repo.config.determinism_modules):
            return
        identifiers = _fast_identifiers(ctx.tree)
        if not identifiers:
            return
        corpus = ctx.repo.tests_corpus
        for name in sorted(identifiers):
            line, col = identifiers[name]
            if name not in corpus:
                yield (
                    line,
                    col,
                    f"fast-path variant {name!r} has no test under "
                    f"{ctx.repo.config.tests_path}/; add a differential "
                    f"test proving it matches the general path",
                )
