"""SIM003: exception types must survive the process-pool boundary.

``ParallelRunner`` workers report failure by raising; the exception is
pickled in the worker, unpickled in the parent, and fed to
``is_transient`` to decide retry-vs-fail-fast.  Two static properties
make that safe:

* the class must be importable at module level — an exception defined
  inside a function unpickles as ``AttributeError: can't get attribute``
  in the parent, turning a precise failure into a pool crash;
* extra constructor state must survive the ``(class, args)``
  round-trip.  Exceptions pickle by re-calling ``cls(*self.args)``, and
  ``self.args`` is whatever reached ``BaseException.__init__`` — so an
  ``__init__(self, message, transient=True)`` that forwards only
  ``message`` silently resets ``transient`` to its default on the far
  side of the pool.  That is the PR 3 ``InjectedFault.__reduce__``
  regression, generalised: any exception ``__init__`` with defaulted or
  extra parameters needs a ``__reduce__`` (or must forward every
  parameter to ``super().__init__``).

The companion runtime guard is ``tests/core/test_error_pickling.py``,
which round-trips every concrete taxonomy type through pickle.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.asthelpers import (
    is_builtin_exception,
    looks_like_exception,
    terminal_name,
    walk_with_parents,
)
from repro.lint.context import FileContext
from repro.lint.registry import RawFinding, Rule, register


def _is_exception_class(node: ast.ClassDef, taxonomy: frozenset[str]) -> bool:
    for base in node.bases:
        name = terminal_name(base)
        if name is None:
            continue
        if name in taxonomy or is_builtin_exception(name) or looks_like_exception(name):
            return True
    return looks_like_exception(node.name)


def _method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None


def _init_param_count(init: ast.FunctionDef) -> tuple[int, bool]:
    """(# parameters after self, any parameter has a default)."""
    args = init.args
    positional = args.posonlyargs + args.args
    count = max(len(positional) - 1, 0)  # drop self
    count += len(args.kwonlyargs)
    if args.vararg is not None or args.kwarg is not None:
        count += 1
    has_default = bool(args.defaults) or any(
        default is not None for default in args.kw_defaults
    )
    return count, has_default


def _super_init_arg_count(init: ast.FunctionDef) -> int | None:
    """Args forwarded to ``super().__init__(...)`` (None if no such call)."""
    for node in ast.walk(init):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__init__"
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        ):
            if any(isinstance(arg, ast.Starred) for arg in node.args):
                return None  # *args forwarding: assume everything passes
            return len(node.args) + len(node.keywords)
    return 0


@register
class PoolPicklableRule(Rule):
    id = "SIM003"
    name = "pool-picklable"
    description = (
        "exception classes must be module-level and round-trip pickle "
        "(the InjectedFault.__reduce__ regression class)"
    )

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        taxonomy = ctx.repo.taxonomy_types
        for node, parents in walk_with_parents(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_exception_class(node, taxonomy):
                continue
            if any(
                isinstance(p, (ast.FunctionDef, ast.AsyncFunctionDef))
                for p in parents
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"exception class {node.name} is defined inside a "
                    f"function; it cannot be unpickled across the "
                    f"ParallelRunner pool boundary",
                )
                continue
            message = self._args_roundtrip_violation(node)
            if message is not None:
                yield node.lineno, node.col_offset, message

    @staticmethod
    def _args_roundtrip_violation(node: ast.ClassDef) -> str | None:
        init = _method(node, "__init__")
        if init is None:
            return None
        if _method(node, "__reduce__") is not None:
            return None
        if _method(node, "__getnewargs__") is not None:
            return None
        param_count, has_default = _init_param_count(init)
        if param_count == 0:
            return None
        forwarded = _super_init_arg_count(init)
        if forwarded is None or forwarded >= param_count:
            return None
        if has_default or forwarded < param_count:
            return (
                f"exception {node.name}.__init__ takes {param_count} "
                f"parameter(s) but forwards {forwarded} to "
                f"super().__init__; state will not survive pickling "
                f"across the process pool — define __reduce__ "
                f"(see InjectedFault)"
            )
        return None
