"""SIM005 / SIM009: metric-name and event-type registration conventions.

The robustness suite asserts that a fault-injected sweep differs from a
clean one *only* in the fault-tolerance counters — an assertion written
as namespace prefixes (``sweep.*``, ``checkpoint.*``, ``faults.*``).  A
counter published under a typo'd or unregistered namespace silently
escapes those assertions and every dashboard grouped by prefix.  SIM005
therefore requires each string-literal metric name passed to
``.inc()`` / ``.counter()`` / ``.histogram()`` / ``.value()`` to carry a
namespace from the registered set (``[tool.simlint]``
``metric-namespaces`` extends it).

SIM009 is the event-side twin: every event class handed to an
``EventSink.emit()`` call must be declared in :mod:`repro.obs.events` —
the registry that ``event_from_dict`` uses to round-trip JSONL traces.
An undeclared event type serialises fine and then explodes on replay.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import RawFinding, Rule, register

#: MetricsRegistry methods whose first argument is a metric name.
METRIC_METHODS = ("inc", "counter", "histogram", "value")


@register
class MetricNamespaceRule(Rule):
    id = "SIM005"
    name = "metric-namespace"
    description = (
        "metric name literals must use a registered namespace prefix "
        "(sweep.*, engine.*, ...)"
    )

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        namespaces = ctx.repo.config.metric_namespaces
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in METRIC_METHODS
                and node.args
            ):
                continue
            literal = node.args[0]
            if not isinstance(literal, ast.Constant) or not isinstance(
                literal.value, str
            ):
                continue
            name = literal.value
            prefix, dot, _ = name.partition(".")
            if not dot:
                yield (
                    literal.lineno,
                    literal.col_offset,
                    f"metric name {name!r} has no namespace; use "
                    f"'<namespace>.{name}' with a registered namespace",
                )
            elif prefix not in namespaces:
                yield (
                    literal.lineno,
                    literal.col_offset,
                    f"metric namespace {prefix!r} (in {name!r}) is not "
                    f"registered; known: {', '.join(namespaces)} — extend "
                    f"metric-namespaces in [tool.simlint] to add one",
                )


@register
class EventRegistryRule(Rule):
    id = "SIM009"
    name = "event-registry"
    description = (
        "event classes passed to EventSink.emit() must be declared in "
        "repro.obs.events"
    )

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        declared = ctx.repo.event_classes
        if not declared:
            return  # foreign tree: no registry to check against
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and len(node.args) == 1
            ):
                continue
            arg = node.args[0]
            if not (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id[:1].isupper()
            ):
                continue
            if arg.func.id not in declared:
                yield (
                    arg.lineno,
                    arg.col_offset,
                    f"event type {arg.func.id} is not declared in "
                    f"repro.obs.events; undeclared events break "
                    f"event_from_dict round-trips",
                )
