"""SIM013: service request handlers stay honest and non-blocking.

The sweep service (``repro.service``) is the one part of the repository
that runs unattended: a handler bug does not crash a foreground run the
user is watching, it silently degrades a server other people depend on.
Two failure patterns are therefore banned outright in service modules:

* **Swallowed failures.**  A bare ``except:`` (which also eats
  ``asyncio.CancelledError`` and breaks shutdown) or an ``except``
  handler whose body is nothing but ``pass``.  Every caught failure
  must leave a trace — a counter bump, a :class:`ServiceIncident`, a
  journal entry — or use :func:`contextlib.suppress` to declare the
  suppression explicitly at the call site.
* **Blocking calls on the event loop.**  ``time.sleep``, ``open``,
  ``subprocess.*`` and friends called directly inside an ``async def``
  stall every connected client for the duration.  Await an async
  equivalent (``asyncio.sleep``) or push the work through
  ``run_in_executor``.  Nested *sync* ``def`` bodies are exempt — they
  only run when something schedules them off-loop.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import RawFinding, Rule, register

#: Module prefixes whose handlers this rule polices.
_SERVICE_MODULES = ("repro.service",)

#: ``module.attribute`` calls that block the calling thread.
_BLOCKING_ATTRS = frozenset(
    {
        ("time", "sleep"),
        ("io", "open"),
        ("os", "system"),
        ("socket", "create_connection"),
        ("subprocess", "run"),
        ("subprocess", "Popen"),
        ("subprocess", "call"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
    }
)

#: Bare-name calls that block the calling thread.
_BLOCKING_NAMES = frozenset({"open"})


def _blocking_call_name(node: ast.Call) -> str | None:
    """Dotted name of a blacklisted blocking call, or ``None``."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in _BLOCKING_NAMES:
        return func.id
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and (func.value.id, func.attr) in _BLOCKING_ATTRS
    ):
        return f"{func.value.id}.{func.attr}"
    return None


def _async_body_nodes(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes that execute on the event loop inside *func*.

    Nested function definitions are skipped: a nested sync ``def`` runs
    off-loop (or not at all), and a nested ``async def`` is visited by
    the outer module walk in its own right.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class ServiceHygieneRule(Rule):
    id = "SIM013"
    name = "service-hygiene"
    description = (
        "repro.service handlers must not swallow exceptions (bare "
        "except / pass-only handlers) or call blocking APIs inside "
        "async def"
    )

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        if not ctx.in_modules(_SERVICE_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "bare except in a service module swallows "
                        "CancelledError and unclassified failures; catch "
                        "explicit exception types",
                    )
                elif all(isinstance(stmt, ast.Pass) for stmt in node.body):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "except handler that only passes hides a service "
                        "failure; bump a counter, emit a ServiceIncident, "
                        "or use contextlib.suppress at the call site",
                    )
            elif isinstance(node, ast.AsyncFunctionDef):
                for inner in _async_body_nodes(node):
                    if not isinstance(inner, ast.Call):
                        continue
                    name = _blocking_call_name(inner)
                    if name is not None:
                        yield (
                            inner.lineno,
                            inner.col_offset,
                            f"blocking call {name}() inside 'async def "
                            f"{node.name}' stalls the event loop for every "
                            "connected client; await an async equivalent "
                            "or use run_in_executor",
                        )
