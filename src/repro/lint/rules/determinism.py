"""SIM001: ban wall-clock and unseeded-randomness calls in sim modules.

The chaos and differential suites only prove anything because the same
(workload, trace_length, seed) always produces bit-identical results.
One ``time.time()`` folded into simulator state, or one draw from the
process-global ``random`` generator, silently breaks every such test.
This rule bans the nondeterminism *sources* inside the simulation
module prefixes (``repro.core``, ``repro.cache``, ...):

* wall clocks — ``time.time``/``time.time_ns``, ``datetime.now`` and
  friends (``time.monotonic``/``perf_counter``/``sleep`` stay legal:
  watchdogs and profilers measure *duration*, which never feeds state);
* entropy — ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``;
* the unseeded global RNG — any module-level ``random.*`` draw, a
  zero-argument ``random.Random()``, the legacy ``numpy.random.*``
  global functions, and a zero-argument ``numpy.random.default_rng()``
  / ``RandomState()``.  Seeded constructions (``random.Random(seed)``,
  ``numpy.random.default_rng(seed)``) are the approved idiom and pass.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.asthelpers import import_aliases, resolve_name
from repro.lint.context import FileContext
from repro.lint.registry import RawFinding, Rule, register

#: Calls that are nondeterministic no matter how they are invoked.
BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Module-level draws from the process-global (unseeded) ``random`` RNG.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``numpy.random`` names that are fine *when given a seed argument*.
NUMPY_SEEDABLE = frozenset({"default_rng", "RandomState"})

#: ``numpy.random`` names that are never draws (types/helpers).
NUMPY_NEUTRAL = frozenset({"Generator", "SeedSequence", "BitGenerator"})


@register
class DeterminismRule(Rule):
    id = "SIM001"
    name = "determinism"
    description = (
        "no wall-clock time, entropy, or unseeded randomness in "
        "simulation modules"
    )

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        if not ctx.in_modules(ctx.repo.config.determinism_modules):
            return
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_name(node.func, aliases)
            if target is None:
                continue
            message = self._violation(target, node)
            if message is not None:
                yield node.lineno, node.col_offset, message

    def _violation(self, target: str, call: ast.Call) -> str | None:
        if target in BANNED_CALLS:
            return (
                f"nondeterministic call {target}() in a simulation module; "
                f"simulator state must derive from the run seed only"
            )
        head, _, tail = target.rpartition(".")
        if head == "random" and tail in GLOBAL_RANDOM_FUNCS:
            return (
                f"draw from the unseeded global RNG ({target}()); use a "
                f"random.Random(seed) instance threaded from the run config"
            )
        if target in ("random.Random", "numpy.random.default_rng",
                      "numpy.random.RandomState"):
            if not call.args and not call.keywords:
                return (
                    f"{target}() without a seed falls back to OS entropy; "
                    f"pass an explicit seed"
                )
            return None
        if head == "numpy.random" and tail not in NUMPY_SEEDABLE | NUMPY_NEUTRAL:
            return (
                f"legacy numpy global-RNG call {target}(); use "
                f"numpy.random.default_rng(seed)"
            )
        return None
