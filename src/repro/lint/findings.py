"""The unit of lint output: a :class:`Finding` pinned to file/line/col.

Findings are deliberately plain, hashable data — the runner produces
them, suppression filters drop them, and reporters render them, with no
behaviour hiding in between.  Severities form a tiny ordered scale:
``error`` findings gate the build (CLI exit code 1), ``warning``
findings are reported but do not fail the gate, and a rule configured
``off`` never runs at all.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Recognised severities, from most to least gating.
SEVERITIES = ("error", "warning", "off")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    #: Stable rule identifier, e.g. ``"SIM001"``.
    rule: str
    #: Human-oriented rule slug, e.g. ``"determinism"``.
    name: str
    #: ``"error"`` or ``"warning"`` (``"off"`` rules emit nothing).
    severity: str
    #: Path as given to the runner (repo-relative when possible).
    path: str
    #: 1-based line number.
    line: int
    #: 0-based column offset (matches :mod:`ast` node offsets).
    col: int
    #: One-sentence description of the violation.
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (stable key order)."""
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
