"""Text, JSON, and SARIF reporters for lint results.

The text form is for humans at a terminal (one ``path:line:col`` line
per finding, grouped naturally by the sort order, with a one-line
summary).  The JSON form is a stable machine schema consumed by the
gate tooling and asserted structurally in ``tests/lint``::

    {
      "version": 2,
      "files_checked": 87,
      "suppressed": 2,
      "findings": [
        {"rule": "SIM001", "name": "determinism", "severity": "error",
         "path": "src/repro/core/engine.py", "line": 12, "col": 8,
         "message": "..."},
        ...
      ],
      "parse_errors": [{"path": "...", "message": "..."}],
      "flow": {"files_indexed": 87, "cache_hits": 0, "cache_misses": 87,
               "store_failures": 0, "jobs": 1},
      "summary": {"errors": 1, "warnings": 0, "by_rule": {"SIM001": 1}}
    }

(``flow`` is ``null`` when the whole-program phase was skipped via
``--no-flow`` or rule selection.)  The SARIF form is the 2.1.0 subset
GitHub code scanning and most SARIF viewers consume: one run, one
``tool.driver`` listing the rules that fired, one result per finding,
and parse errors as tool-execution notifications.
"""

from __future__ import annotations

import json

from repro.lint.registry import all_rules
from repro.lint.runner import LintResult

#: Schema version of the JSON report (bump on breaking changes).
#: 2: added the ``flow`` key; ``parse_errors`` paths are repo-relative.
JSON_REPORT_VERSION = 2

#: The SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(result: LintResult) -> str:
    """Human-oriented report, one line per finding plus a summary."""
    lines = []
    for path, message in result.parse_errors:
        lines.append(f"{path}: parse error: {message}")
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.severity} {finding.rule} ({finding.name}): "
            f"{finding.message}"
        )
    errors, warnings = len(result.errors), len(result.warnings)
    summary = (
        f"{result.files_checked} file(s) checked: "
        f"{errors} error(s), {warnings} warning(s)"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    if result.parse_errors:
        summary += f", {len(result.parse_errors)} unparseable"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-oriented report (schema above, stable key order)."""
    by_rule: dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_REPORT_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "findings": [finding.as_dict() for finding in result.findings],
        "parse_errors": [
            {"path": path, "message": message}
            for path, message in result.parse_errors
        ],
        "flow": (
            None if result.flow_stats is None else result.flow_stats.as_dict()
        ),
        "summary": {
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "by_rule": {rule: by_rule[rule] for rule in sorted(by_rule)},
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _sarif_uri(path: str) -> str:
    """Repo-relative forward-slash URI, per SARIF artifactLocation."""
    return path.replace("\\", "/")


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report for CI code-scanning upload."""
    catalogue = {rule.id: rule for rule in all_rules()}
    fired = sorted({finding.rule for finding in result.findings})
    rules = []
    for rule_id in fired:
        rule = catalogue.get(rule_id)
        entry: dict[str, object] = {"id": rule_id}
        if rule is not None:
            entry["name"] = rule.name
            entry["shortDescription"] = {"text": rule.description}
        rules.append(entry)
    rule_index = {rule_id: pos for pos, rule_id in enumerate(fired)}
    results = []
    for finding in result.findings:
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": "error" if finding.severity == "error" else "warning",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _sarif_uri(finding.path),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    notifications = [
        {
            "level": "error",
            "message": {"text": f"parse error: {message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _sarif_uri(path),
                            "uriBaseId": "SRCROOT",
                        }
                    }
                }
            ],
        }
        for path, message in result.parse_errors
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": (
                            "docs/static-analysis.md"
                        ),
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": True,
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
