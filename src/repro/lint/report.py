"""Text and JSON reporters for lint results.

The text form is for humans at a terminal (one ``path:line:col`` line
per finding, grouped naturally by the sort order, with a one-line
summary).  The JSON form is a stable machine schema consumed by the
gate tooling and asserted structurally in ``tests/lint``::

    {
      "version": 1,
      "files_checked": 87,
      "suppressed": 2,
      "findings": [
        {"rule": "SIM001", "name": "determinism", "severity": "error",
         "path": "src/repro/core/engine.py", "line": 12, "col": 8,
         "message": "..."},
        ...
      ],
      "parse_errors": [{"path": "...", "message": "..."}],
      "summary": {"errors": 1, "warnings": 0, "by_rule": {"SIM001": 1}}
    }
"""

from __future__ import annotations

import json

from repro.lint.runner import LintResult

#: Schema version of the JSON report (bump on breaking changes).
JSON_REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-oriented report, one line per finding plus a summary."""
    lines = []
    for path, message in result.parse_errors:
        lines.append(f"{path}: parse error: {message}")
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.severity} {finding.rule} ({finding.name}): "
            f"{finding.message}"
        )
    errors, warnings = len(result.errors), len(result.warnings)
    summary = (
        f"{result.files_checked} file(s) checked: "
        f"{errors} error(s), {warnings} warning(s)"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    if result.parse_errors:
        summary += f", {len(result.parse_errors)} unparseable"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-oriented report (schema above, stable key order)."""
    by_rule: dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_REPORT_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "findings": [finding.as_dict() for finding in result.findings],
        "parse_errors": [
            {"path": path, "message": message}
            for path, message in result.parse_errors
        ],
        "summary": {
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "by_rule": {rule: by_rule[rule] for rule in sorted(by_rule)},
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)
