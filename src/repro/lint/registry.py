"""Rule base classes and the global rule registry.

Two rule kinds share one registry, one id space, and one configuration
surface:

* **per-file rules** (:class:`Rule`) — a ``check(ctx)`` generator
  yielding ``(line, col, message)`` triples for one
  :class:`FileContext`;
* **flow rules** (:class:`FlowRule`) — a ``check_project(project)``
  generator over the assembled whole-program
  :class:`~repro.lint.flow.project.ProjectContext`, yielding
  ``(relpath, line, col, message)`` since a whole-program rule pins its
  own file.

Rules register themselves with the :func:`register` decorator at import
time; :func:`all_rules` returns fresh instances in id order, so a lint
run never shares mutable rule state with a previous one.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.errors import ExperimentError

from repro.lint.context import FileContext
from repro.lint.findings import SEVERITIES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (flow -> rules)
    from repro.lint.flow.project import ProjectContext

#: One raw violation before it is bound to a rule/severity/path.
RawFinding = tuple[int, int, str]

#: One raw whole-program violation: (relpath, line, col, message).
FlowRawFinding = tuple[str, int, int, str]


class Rule:
    """Base class for simlint rules (subclass and :func:`register`)."""

    #: Stable identifier used in reports, config, and suppressions.
    id: str = ""
    #: Short human slug, e.g. ``"determinism"``.
    name: str = ""
    #: One-line description shown by ``--list-rules``.
    description: str = ""
    #: Severity when the config does not override it.
    default_severity: str = "error"

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        """Yield ``(line, col, message)`` for each violation in *ctx*."""
        raise NotImplementedError
        yield  # pragma: no cover - makes every override a generator


class FlowRule(Rule):
    """Base class for whole-program (phase-2 flow) rules.

    A flow rule never runs per file — ``check`` is a no-op so the
    driver can hold one rule list — and instead sees the project once,
    after every file has been indexed and the call graph assembled.
    """

    def check(self, ctx: FileContext) -> Iterator[RawFinding]:
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[FlowRawFinding]:
        """Yield ``(relpath, line, col, message)`` per violation."""
        raise NotImplementedError
        yield  # pragma: no cover - makes every override a generator


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding *rule_cls* to the global registry."""
    if not rule_cls.id or not rule_cls.name:
        raise ExperimentError(
            f"rule {rule_cls.__name__} must define id and name"
        )
    if rule_cls.default_severity not in SEVERITIES:
        raise ExperimentError(
            f"rule {rule_cls.id} has bad default severity "
            f"{rule_cls.default_severity!r}"
        )
    existing = _REGISTRY.get(rule_cls.id)
    if existing is not None and existing is not rule_cls:
        raise ExperimentError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in id order."""
    import repro.lint.rules  # noqa: F401  (registers the built-in rules)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def known_rule_ids() -> list[str]:
    """Ids of every registered rule, sorted."""
    import repro.lint.rules  # noqa: F401

    return sorted(_REGISTRY)
