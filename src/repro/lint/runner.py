"""The lint driver: collect files, run rules, filter suppressions.

:func:`run_lint` is the single entry point shared by the CLI, the
``tools/check_lint.py`` gate, and the in-tree self-clean test, so all
three see byte-identical results.  A run has two phases: the per-file
rules stream over each parsed file as before, and — when any flow rule
is active — the same parsed files are indexed into module summaries
(cache-first, optionally across a process pool) and the whole-program
rules run once over the assembled call graph.  Flow findings pass
through the same inline-suppression filter and land in the same sorted
finding list, so reporters cannot tell the phases apart.

The outcome is a :class:`LintResult` holding the surviving findings
(sorted by location) plus the bookkeeping reporters need: files
checked, suppression count, parse errors (repo-relative, like
findings), and the flow phase's cache statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.context import FileContext, RepoContext, collect_files
from repro.lint.findings import Finding
from repro.lint.flow.cache import SummaryCache
from repro.lint.flow.project import (
    FlowStats,
    IndexEntry,
    ProjectContext,
    index_entries,
)
from repro.lint.registry import FlowRule, Rule, all_rules


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Files that could not be parsed: (repo-relative path, message).
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    #: Flow-phase accounting (``None`` when the flow phase did not run).
    flow_stats: FlowStats | None = None

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(self) -> int:
        """CLI convention: 0 clean, 1 gating findings (parse errors gate)."""
        return 1 if self.errors or self.parse_errors else 0


def _active_rules(
    config: LintConfig, select: tuple[str, ...] | None
) -> list[tuple[Rule, str]]:
    """(rule, effective severity) for every rule that should run."""
    active: list[tuple[Rule, str]] = []
    for rule in all_rules():
        if select is not None and rule.id not in select:
            continue
        severity = config.severity_for(rule.id, rule.default_severity)
        if severity == "off":
            continue
        active.append((rule, severity))
    return active


def _relative_to_root(path: Path, root: Path) -> str:
    """Repo-relative display path (same convention as FileContext)."""
    try:
        return str(path.resolve().relative_to(root))
    except ValueError:
        return str(path)


def lint_file(ctx: FileContext, rules: list[tuple[Rule, str]], result: LintResult) -> None:
    """Run every active per-file rule over one parsed file."""
    for rule, severity in rules:
        for line, col, message in rule.check(ctx):
            if ctx.suppressions.suppresses(rule.id, line):
                result.suppressed += 1
                continue
            result.findings.append(
                Finding(
                    rule=rule.id,
                    name=rule.name,
                    severity=severity,
                    path=ctx.relpath,
                    line=line,
                    col=col,
                    message=message,
                )
            )


def _run_flow_phase(
    contexts: list[FileContext],
    rules: list[tuple[FlowRule, str]],
    repo: RepoContext,
    result: LintResult,
    cache_dir: str | Path | None,
    jobs: int,
) -> None:
    """Index every parsed file, assemble the project, run flow rules."""
    entries = [
        IndexEntry(
            relpath=ctx.relpath,
            module=ctx.module,
            source=ctx.source,
            tree=ctx.tree,
        )
        for ctx in contexts
    ]
    summaries, stats = index_entries(entries, SummaryCache(cache_dir), jobs)
    result.flow_stats = stats
    project = ProjectContext(
        root=repo.root, config=repo.config, summaries=summaries, stats=stats
    )
    suppressions = {ctx.relpath: ctx.suppressions for ctx in contexts}
    for rule, severity in rules:
        for relpath, line, col, message in rule.check_project(project):
            known = suppressions.get(relpath)
            if known is not None and known.suppresses(rule.id, line):
                result.suppressed += 1
                continue
            result.findings.append(
                Finding(
                    rule=rule.id,
                    name=rule.name,
                    severity=severity,
                    path=relpath,
                    line=line,
                    col=col,
                    message=message,
                )
            )


def run_lint(
    paths: list[str | Path],
    config: LintConfig | None = None,
    root: str | Path | None = None,
    select: tuple[str, ...] | None = None,
    flow: bool = True,
    flow_cache: str | Path | None = None,
    jobs: int = 1,
) -> LintResult:
    """Lint *paths* (files or directories) and return the result.

    With no explicit *config*, the nearest ``pyproject.toml`` above the
    first path (or *root*) supplies ``[tool.simlint]``; *root* anchors
    repo-relative paths in findings and the registry/tests lookups.
    *select* restricts the run to the given rule ids (CLI ``--select``).
    ``flow=False`` skips the whole-program phase (CLI ``--no-flow``);
    *flow_cache* names the on-disk summary-cache directory (``None``
    indexes from scratch); *jobs* fans phase-1 indexing across a
    process pool when > 1.
    """
    path_objs = [Path(p) for p in paths]
    if root is None:
        anchor = path_objs[0] if path_objs else Path.cwd()
        pyproject = find_pyproject(anchor)
        root_path = pyproject.parent if pyproject else Path.cwd()
    else:
        root_path = Path(root)
        pyproject = root_path / "pyproject.toml"
    if config is None:
        config = load_config(pyproject)
    repo = RepoContext(root=root_path.resolve(), config=config)
    rules = _active_rules(config, select)
    file_rules = [
        (rule, sev) for rule, sev in rules if not isinstance(rule, FlowRule)
    ]
    flow_rules = [
        (rule, sev) for rule, sev in rules if isinstance(rule, FlowRule)
    ]
    run_flow = flow and config.flow and bool(flow_rules)
    if flow_cache is None and config.flow_cache:
        flow_cache = repo.root / config.flow_cache
    result = LintResult()
    contexts: list[FileContext] = []
    for file_path in collect_files(path_objs):
        try:
            ctx = FileContext.load(file_path, repo)
        except (SyntaxError, ValueError) as exc:
            result.parse_errors.append(
                (_relative_to_root(file_path, repo.root), str(exc))
            )
            continue
        result.files_checked += 1
        lint_file(ctx, file_rules, result)
        if run_flow:
            contexts.append(ctx)
    if run_flow:
        _run_flow_phase(contexts, flow_rules, repo, result, flow_cache, jobs)
    result.findings.sort(key=Finding.sort_key)
    return result
