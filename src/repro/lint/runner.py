"""The lint driver: collect files, run rules, filter suppressions.

:func:`run_lint` is the single entry point shared by the CLI, the
``tools/check_lint.py`` gate, and the in-tree self-clean test, so all
three see byte-identical results.  The outcome is a :class:`LintResult`
holding the surviving findings (sorted by location) plus the bookkeeping
reporters need: files checked, suppression count, and per-rule totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.context import FileContext, RepoContext, collect_files
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Files that could not be parsed: (path, message).
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(self) -> int:
        """CLI convention: 0 clean, 1 gating findings (parse errors gate)."""
        return 1 if self.errors or self.parse_errors else 0


def _active_rules(
    config: LintConfig, select: tuple[str, ...] | None
) -> list[tuple[Rule, str]]:
    """(rule, effective severity) for every rule that should run."""
    active: list[tuple[Rule, str]] = []
    for rule in all_rules():
        if select is not None and rule.id not in select:
            continue
        severity = config.severity_for(rule.id, rule.default_severity)
        if severity == "off":
            continue
        active.append((rule, severity))
    return active


def lint_file(ctx: FileContext, rules: list[tuple[Rule, str]], result: LintResult) -> None:
    """Run every active rule over one parsed file."""
    for rule, severity in rules:
        for line, col, message in rule.check(ctx):
            if ctx.suppressions.suppresses(rule.id, line):
                result.suppressed += 1
                continue
            result.findings.append(
                Finding(
                    rule=rule.id,
                    name=rule.name,
                    severity=severity,
                    path=ctx.relpath,
                    line=line,
                    col=col,
                    message=message,
                )
            )


def run_lint(
    paths: list[str | Path],
    config: LintConfig | None = None,
    root: str | Path | None = None,
    select: tuple[str, ...] | None = None,
) -> LintResult:
    """Lint *paths* (files or directories) and return the result.

    With no explicit *config*, the nearest ``pyproject.toml`` above the
    first path (or *root*) supplies ``[tool.simlint]``; *root* anchors
    repo-relative paths in findings and the registry/tests lookups.
    *select* restricts the run to the given rule ids (CLI ``--select``).
    """
    path_objs = [Path(p) for p in paths]
    if root is None:
        anchor = path_objs[0] if path_objs else Path.cwd()
        pyproject = find_pyproject(anchor)
        root_path = pyproject.parent if pyproject else Path.cwd()
    else:
        root_path = Path(root)
        pyproject = root_path / "pyproject.toml"
    if config is None:
        config = load_config(pyproject)
    repo = RepoContext(root=root_path.resolve(), config=config)
    rules = _active_rules(config, select)
    result = LintResult()
    for file_path in collect_files(path_objs):
        try:
            ctx = FileContext.load(file_path, repo)
        except (SyntaxError, ValueError) as exc:
            result.parse_errors.append((str(file_path), str(exc)))
            continue
        result.files_checked += 1
        lint_file(ctx, rules, result)
    result.findings.sort(key=Finding.sort_key)
    return result
