"""simlint: repo-aware static analysis for the repro codebase.

Every result this reproduction publishes rests on invariants no unit
test can watch continuously: core simulation code must be bit-
deterministic, objects crossing the ``ParallelRunner`` pool boundary
must survive pickling, raise sites must speak the ``repro.errors``
taxonomy that ``is_transient`` classifies, and metrics/events must land
in their registered namespaces.  This package machine-checks those
invariants over the AST on every commit, via ``python -m repro.lint``
(see :mod:`repro.lint.cli`), the ``tools/check_lint.py`` gate, and the
tier-1 self-clean test in ``tests/lint/test_self_clean.py``.

Public surface:

* :func:`repro.lint.runner.run_lint` — lint paths, get a
  :class:`~repro.lint.runner.LintResult`;
* :class:`repro.lint.findings.Finding` — one violation;
* :class:`repro.lint.registry.Rule` + :func:`repro.lint.registry.register`
  — how rules are added (see ``docs/static-analysis.md``);
* :mod:`repro.lint.report` — text/JSON rendering.

Inline suppressions use ``# simlint: disable=SIM00X`` (same line or a
comment line directly above) and ``# simlint: disable-file=SIM00X``.
Repo policy lives in ``[tool.simlint]`` in ``pyproject.toml``.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, known_rule_ids, register
from repro.lint.runner import LintResult, run_lint

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "known_rule_ids",
    "load_config",
    "register",
    "run_lint",
]
