"""Configuration for the simlint pass, sourced from ``[tool.simlint]``.

The linter must run identically from the CLI, from ``tools/check_lint.py``
and from the in-tree self-clean test, so all policy lives in one place:
the ``[tool.simlint]`` table of ``pyproject.toml``.  Everything has a
working default — an empty table (or a missing pyproject) yields the
configuration this repository is actually linted with.

Recognised keys::

    [tool.simlint]
    disable = ["SIM002"]              # rules to switch off entirely
    metric-namespaces = ["engine"]    # extends the default namespace set
    taxonomy-allowed = ["KeyError"]   # extra builtin raises tolerated
    determinism-modules = [...]       # module prefixes for SIM001/SIM002
    taxonomy-modules = [...]          # module prefixes for SIM004
    tests-path = "tests"              # corpus for SIM008 parity lookups
    flow = true                       # run whole-program rules (SIM014+)
    flow-cache = ".cache/simflow"     # summary cache dir, repo-relative

    [tool.simlint.severity]
    SIM007 = "warning"                # per-rule severity override
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ExperimentError

from repro.lint.findings import SEVERITIES

#: Counter/histogram namespaces that may appear before the first dot of a
#: metric name literal (SIM005).
DEFAULT_METRIC_NAMESPACES = (
    "adaptive",
    "artifacts",
    "checkpoint",
    "classify",
    "engine",
    "faults",
    "l2",
    "prefetch",
    "service",
    "stream",
    "sweep",
)

#: Module prefixes whose code feeds simulator state and therefore must be
#: deterministic (SIM001 banned calls, SIM002 ordered iteration).
DEFAULT_DETERMINISM_MODULES = (
    "repro.core",
    "repro.cache",
    "repro.branch",
    "repro.memory",
    "repro.trace",
    "repro.program",
)

#: Module prefixes whose ``raise`` sites must use the repro.errors
#: taxonomy (SIM004).
DEFAULT_TAXONOMY_MODULES = (
    "repro.core",
    "repro.experiments",
    "repro.service",
)

#: Builtin exceptions tolerated by SIM004 even inside taxonomy modules:
#: protocol-mandated types a library cannot substitute (``__getattr__``
#: must raise AttributeError), the not-implemented convention, and
#: ConnectionError — a torn transport read *is* an OS-level connection
#: failure (``is_transient(OSError)`` is True), so raising it keeps the
#: client's retry classification honest.
DEFAULT_TAXONOMY_ALLOWED = (
    "AttributeError",
    "ConnectionError",
    "NotImplementedError",
)


class LintConfigError(ExperimentError):
    """The ``[tool.simlint]`` table is malformed."""


@dataclass(frozen=True, slots=True)
class LintConfig:
    """Resolved linter configuration (defaults merged with pyproject)."""

    metric_namespaces: tuple[str, ...] = DEFAULT_METRIC_NAMESPACES
    determinism_modules: tuple[str, ...] = DEFAULT_DETERMINISM_MODULES
    taxonomy_modules: tuple[str, ...] = DEFAULT_TAXONOMY_MODULES
    taxonomy_allowed: tuple[str, ...] = DEFAULT_TAXONOMY_ALLOWED
    disabled_rules: tuple[str, ...] = ()
    severity_overrides: dict[str, str] = field(default_factory=dict)
    tests_path: str = "tests"
    #: Whether the whole-program flow phase runs at all.
    flow: bool = True
    #: Repo-relative summary-cache directory ("" = no on-disk cache).
    flow_cache: str = ""

    def severity_for(self, rule_id: str, default: str) -> str:
        """Effective severity for one rule (``"off"`` if disabled)."""
        if rule_id in self.disabled_rules:
            return "off"
        return self.severity_overrides.get(rule_id, default)


def _string_tuple(table: dict, key: str) -> tuple[str, ...] | None:
    value = table.get(key)
    if value is None:
        return None
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise LintConfigError(
            f"[tool.simlint] {key} must be a list of strings, got {value!r}"
        )
    return tuple(value)


def config_from_table(table: dict) -> LintConfig:
    """Build a :class:`LintConfig` from a parsed ``[tool.simlint]`` table."""
    known = {
        "disable",
        "metric-namespaces",
        "taxonomy-allowed",
        "determinism-modules",
        "taxonomy-modules",
        "tests-path",
        "severity",
        "flow",
        "flow-cache",
    }
    unknown = sorted(set(table) - known)
    if unknown:
        raise LintConfigError(
            f"unknown [tool.simlint] keys: {', '.join(unknown)}"
        )
    severity_table = table.get("severity", {})
    if not isinstance(severity_table, dict):
        raise LintConfigError(
            f"[tool.simlint.severity] must be a table, got {severity_table!r}"
        )
    for rule_id, severity in severity_table.items():
        if severity not in SEVERITIES:
            raise LintConfigError(
                f"[tool.simlint.severity] {rule_id} = {severity!r}; "
                f"expected one of {', '.join(SEVERITIES)}"
            )
    tests_path = table.get("tests-path", "tests")
    if not isinstance(tests_path, str):
        raise LintConfigError(
            f"[tool.simlint] tests-path must be a string, got {tests_path!r}"
        )
    flow = table.get("flow", True)
    if not isinstance(flow, bool):
        raise LintConfigError(
            f"[tool.simlint] flow must be a boolean, got {flow!r}"
        )
    flow_cache = table.get("flow-cache", "")
    if not isinstance(flow_cache, str):
        raise LintConfigError(
            f"[tool.simlint] flow-cache must be a string, got {flow_cache!r}"
        )
    extra_namespaces = _string_tuple(table, "metric-namespaces") or ()
    extra_allowed = _string_tuple(table, "taxonomy-allowed") or ()
    return LintConfig(
        metric_namespaces=tuple(
            sorted(set(DEFAULT_METRIC_NAMESPACES) | set(extra_namespaces))
        ),
        determinism_modules=_string_tuple(table, "determinism-modules")
        or DEFAULT_DETERMINISM_MODULES,
        taxonomy_modules=_string_tuple(table, "taxonomy-modules")
        or DEFAULT_TAXONOMY_MODULES,
        taxonomy_allowed=tuple(
            sorted(set(DEFAULT_TAXONOMY_ALLOWED) | set(extra_allowed))
        ),
        disabled_rules=_string_tuple(table, "disable") or (),
        severity_overrides=dict(severity_table),
        tests_path=tests_path,
        flow=flow,
        flow_cache=flow_cache,
    )


def load_config(pyproject: str | Path | None) -> LintConfig:
    """Load configuration from a ``pyproject.toml`` path (or defaults).

    A missing file or a pyproject without a ``[tool.simlint]`` table is
    not an error — the defaults are the policy.  A *malformed* table is
    an error: silently ignoring it would un-gate the build.
    """
    if pyproject is None:
        return LintConfig()
    path = Path(pyproject)
    if not path.is_file():
        return LintConfig()
    with open(path, "rb") as handle:
        try:
            data = tomllib.load(handle)
        except tomllib.TOMLDecodeError as exc:
            raise LintConfigError(f"cannot parse {path}: {exc}") from None
    table = data.get("tool", {}).get("simlint", {})
    if not isinstance(table, dict):
        raise LintConfigError(
            f"[tool.simlint] in {path} must be a table, got {table!r}"
        )
    return config_from_table(table)


def find_pyproject(start: str | Path) -> Path | None:
    """Walk up from *start* to the nearest ``pyproject.toml``."""
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
