"""``python -m repro.lint`` — the simlint command-line interface.

Exit codes follow the experiments-CLI convention:

* ``0`` — no gating findings (warnings may still have been printed);
* ``1`` — at least one error-severity finding (or an unparseable file);
* ``2`` — the linter itself failed (bad flags, broken config, crash).

The fast pre-commit loop is ``python -m repro.lint --changed``: only
files differing from a git ref (default ``HEAD``, staged or unstaged,
plus untracked files) are linted.  Whole-program (flow) rules then see
only that subset of the call graph, so the full run stays authoritative
— ``--changed`` trades completeness for latency, on purpose.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.errors import ReproError
from repro.lint.config import find_pyproject
from repro.lint.context import collect_files
from repro.lint.registry import all_rules, known_rule_ids
from repro.lint.report import render_json, render_sarif, render_text
from repro.lint.runner import run_lint

_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "simlint: repo-aware static analysis enforcing determinism, "
            "process-boundary, and taxonomy invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=tuple(_RENDERERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help=(
            "repo root anchoring [tool.simlint] config, the event/error "
            "registries, and relative paths (default: nearest pyproject)"
        ),
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "lint only files differing from REF (default HEAD) plus "
            "untracked files; falls back to a full run outside git"
        ),
    )
    parser.add_argument(
        "--no-flow",
        action="store_true",
        help="skip the whole-program flow rules (SIM014-SIM016)",
    )
    parser.add_argument(
        "--flow-cache",
        default=None,
        metavar="DIR",
        help=(
            "directory for the content-addressed flow summary cache; "
            "warm runs re-index only edited files (default: no cache)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="index flow summaries across N worker processes (default: 1)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(
            f"{rule.id}  {rule.name:<18} [{rule.default_severity}]  "
            f"{rule.description}"
        )
    return "\n".join(lines)


def _lint_root(args: argparse.Namespace) -> Path:
    """The repo root the run will anchor to (mirrors run_lint)."""
    if args.root is not None:
        return Path(args.root)
    anchor = Path(args.paths[0]) if args.paths else Path.cwd()
    pyproject = find_pyproject(anchor)
    return pyproject.parent if pyproject else Path.cwd()


def _changed_files(root: Path, ref: str) -> set[Path] | None:
    """Resolved paths differing from *ref*, or ``None`` outside git.

    The union of ``git diff --name-only REF`` (staged and unstaged
    edits) and ``git ls-files --others --exclude-standard`` (untracked
    files) — exactly what a pre-commit check needs to look at.
    """
    commands = (
        ["git", "-C", str(root), "diff", "--name-only", "-z", ref, "--"],
        ["git", "-C", str(root), "ls-files", "--others",
         "--exclude-standard", "-z"],
    )
    changed: set[Path] = set()
    for command in commands:
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, check=False
            )
        except OSError:
            return None
        if proc.returncode != 0:
            return None
        for name in proc.stdout.split("\0"):
            if name:
                changed.add((root / name).resolve())
    return changed


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on bad usage, 0 on --help: keep its code but
        # normalise unexpected values to the internal-error convention.
        code = exc.code if isinstance(exc.code, int) else 2
        return code if code in (0, 2) else 2
    if args.list_rules:
        print(_list_rules())
        return 0
    select: tuple[str, ...] | None = None
    if args.select is not None:
        select = tuple(
            part.strip() for part in args.select.split(",") if part.strip()
        )
        unknown = sorted(set(select) - set(known_rule_ids()))
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(known_rule_ids())}",
                file=sys.stderr,
            )
            return 2
    paths: list[str | Path] = list(args.paths)
    root = args.root
    if args.changed is not None:
        lint_root = _lint_root(args)
        changed = _changed_files(lint_root, args.changed)
        if changed is None:
            print(
                "warning: --changed needs a git checkout and a valid ref; "
                "linting all given paths",
                file=sys.stderr,
            )
        else:
            candidates = collect_files([Path(p) for p in args.paths])
            paths = [p for p in candidates if p in changed]
            if root is None:
                root = str(lint_root)
    try:
        result = run_lint(
            paths,
            root=root,
            select=select,
            flow=not args.no_flow,
            flow_cache=args.flow_cache,
            jobs=args.jobs,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # pragma: no cover - defensive
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    print(_RENDERERS[args.format](result))
    return result.exit_code()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
