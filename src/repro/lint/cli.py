"""``python -m repro.lint`` — the simlint command-line interface.

Exit codes follow the experiments-CLI convention:

* ``0`` — no gating findings (warnings may still have been printed);
* ``1`` — at least one error-severity finding (or an unparseable file);
* ``2`` — the linter itself failed (bad flags, broken config, crash).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.errors import ReproError
from repro.lint.registry import all_rules, known_rule_ids
from repro.lint.report import render_json, render_text
from repro.lint.runner import run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "simlint: repo-aware static analysis enforcing determinism, "
            "process-boundary, and taxonomy invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help=(
            "repo root anchoring [tool.simlint] config, the event/error "
            "registries, and relative paths (default: nearest pyproject)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(
            f"{rule.id}  {rule.name:<18} [{rule.default_severity}]  "
            f"{rule.description}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on bad usage, 0 on --help: keep its code but
        # normalise unexpected values to the internal-error convention.
        code = exc.code if isinstance(exc.code, int) else 2
        return code if code in (0, 2) else 2
    if args.list_rules:
        print(_list_rules())
        return 0
    select: tuple[str, ...] | None = None
    if args.select is not None:
        select = tuple(
            part.strip() for part in args.select.split(",") if part.strip()
        )
        unknown = sorted(set(select) - set(known_rule_ids()))
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(known_rule_ids())}",
                file=sys.stderr,
            )
            return 2
    try:
        result = run_lint(args.paths, root=args.root, select=select)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # pragma: no cover - defensive
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    render = render_json if args.format == "json" else render_text
    print(render(result))
    return result.exit_code()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
