"""Phase assembly: the indexing pipeline and the whole-program context.

:func:`index_entries` turns parsed source files into
:class:`ModuleSummary` facts, consulting the on-disk
:class:`~repro.lint.flow.cache.SummaryCache` first — a warm run
re-indexes only edited files — and fanning cache misses out across a
process pool when ``jobs > 1`` (indexing is a pure function of source
text, so workers need nothing but the text).  :class:`ProjectContext` is
what the flow rules actually receive: the summaries joined into a
:class:`~repro.lint.flow.symbols.SymbolTable` and
:class:`~repro.lint.flow.callgraph.CallGraph`, plus the run's config and
cache statistics.
"""

from __future__ import annotations

import ast
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.flow.cache import SummaryCache
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.facts import ModuleSummary, content_key
from repro.lint.flow.indexer import index_module, index_tree
from repro.lint.flow.symbols import SymbolTable


@dataclass(slots=True)
class IndexEntry:
    """One file queued for phase-1 indexing.

    ``tree`` is the already-parsed AST when the per-file phase has one
    in hand (the in-process fast path); pool workers re-parse from
    ``source`` instead, since ASTs do not cross process boundaries.
    """

    relpath: str
    module: str
    source: str
    tree: ast.Module | None = None


@dataclass(slots=True)
class FlowStats:
    """Phase-1 accounting surfaced in the JSON report and tests."""

    #: Files indexed fresh this run (== cache misses when caching).
    files_indexed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    store_failures: int = 0
    jobs: int = 1

    def as_dict(self) -> dict[str, int]:
        return {
            "files_indexed": self.files_indexed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "store_failures": self.store_failures,
            "jobs": self.jobs,
        }


def _index_worker(payload: tuple[str, str, str]) -> dict | None:
    """Pool entry point: index one file, returning a JSON-shaped dict.

    Summaries cross the pool as their ``to_dict`` form — the same bytes
    the cache persists — so the pool path and the cache path exercise
    one serialisation.  Files that fail to re-parse yield ``None`` (the
    per-file phase already reported them).
    """
    source, relpath, module = payload
    try:
        return index_module(source, relpath, module).to_dict()
    except SyntaxError:
        return None


def index_entries(
    entries: list[IndexEntry],
    cache: SummaryCache,
    jobs: int = 1,
) -> tuple[list[ModuleSummary], FlowStats]:
    """Summaries for *entries*, cache-first, pooled when ``jobs > 1``."""
    jobs = max(1, jobs)
    stats = FlowStats(jobs=jobs)
    summaries: list[ModuleSummary | None] = [None] * len(entries)
    pending: list[int] = []
    for pos, entry in enumerate(entries):
        cached = cache.load(content_key(entry.module, entry.source))
        if cached is not None:
            summaries[pos] = cached
        else:
            pending.append(pos)
    if jobs > 1 and len(pending) > 1:
        payloads = [
            (entries[pos].source, entries[pos].relpath, entries[pos].module)
            for pos in pending
        ]
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending))
        ) as pool:
            for pos, data in zip(pending, pool.map(_index_worker, payloads)):
                if data is not None:
                    summaries[pos] = ModuleSummary.from_dict(data)
    else:
        for pos in pending:
            entry = entries[pos]
            try:
                if entry.tree is not None:
                    summaries[pos] = index_tree(
                        entry.tree, entry.source, entry.relpath, entry.module
                    )
                else:
                    summaries[pos] = index_module(
                        entry.source, entry.relpath, entry.module
                    )
            except SyntaxError:
                continue
    for pos in pending:
        summary = summaries[pos]
        if summary is not None:
            stats.files_indexed += 1
            cache.store(summary)
    stats.cache_hits = cache.stats.hits
    stats.cache_misses = cache.stats.misses
    stats.store_failures = cache.stats.store_failures
    return [s for s in summaries if s is not None], stats


class ProjectContext:
    """Everything a flow rule may inspect about the whole program."""

    def __init__(
        self,
        root: Path,
        config: LintConfig,
        summaries: list[ModuleSummary],
        stats: FlowStats | None = None,
    ) -> None:
        self.root = root
        self.config = config
        self.summaries = summaries
        self.stats = stats or FlowStats()
        self.symbols = SymbolTable(summaries)
        self.graph = CallGraph(summaries, self.symbols)


def build_project(
    root: Path,
    config: LintConfig,
    entries: list[IndexEntry],
    cache: SummaryCache | None = None,
    jobs: int = 1,
) -> ProjectContext:
    """Index *entries* and assemble the project context in one step."""
    summaries, stats = index_entries(entries, cache or SummaryCache(None), jobs)
    return ProjectContext(root=root, config=config, summaries=summaries, stats=stats)
