"""The fact model: what phase 1 records about each module.

One :class:`ModuleSummary` per source file, built by
:mod:`repro.lint.flow.indexer` as a pure function of ``(module name,
source text)`` — no filesystem state, no imports executed — so summaries
are content-addressable and can be cached on disk and shipped across a
process pool.  A summary holds, per function (including methods, nested
functions, and the module body as the pseudo-function ``<module>``):

* the **call sites** executing in the function's own body (nested
  ``def`` bodies are excluded — they run when *called*, not when the
  enclosing function runs), each with a best-effort resolved target;
* the local **effect facts** the flow rules propagate: direct
  nondeterminism sources (wall clocks, entropy, unseeded RNGs, ``id()``,
  unordered ``set``/``dict.keys()`` iteration), direct blocking calls
  (``time.sleep``, ``open``, ``subprocess.*``, ...), seam-class
  constructions (``FetchEngine``/``VectorEngine``/``BranchUnit``/
  ``ReplayBranchUnit``), and mutated ``self.*`` attributes (the
  sim-state fingerprint used in SIM014 messages);

plus the module-level import alias map and, per class, the
syntactically inferable attribute types (``self.x = ClassName(...)``
assignments and annotated ``__init__`` parameters stored on ``self``)
that let phase 2 resolve ``self.store.load(...)`` to a concrete method.

Everything is a plain dataclass with a stable ``to_dict``/``from_dict``
JSON round-trip — the exact bytes the summary cache persists.  Bump
:data:`FLOW_FORMAT_VERSION` whenever the shape (or the indexer's
semantics) change: the cache keys on it, so stale layouts simply miss.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: Version of the summary shape *and* the indexing semantics.  Part of
#: every cache key: bumping it invalidates all cached summaries.
FLOW_FORMAT_VERSION = 1

#: Effect kinds recorded for nondeterminism sources (SIM014 taint).
NONDET_KINDS = ("clock", "entropy", "rng", "id", "ordering")

#: Fully-qualified calls that block the calling thread (SIM015).  The
#: set mirrors SIM013's per-file blacklist, but matched against
#: alias-resolved names so ``from time import sleep`` is still caught.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "io.open",
        "os.system",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

#: Bare-name builtins that block (``open`` without an import).
BLOCKING_BUILTINS = frozenset({"open"})

#: Seam-guarded classes, by family (SIM016).
ENGINE_SEAM_CLASSES = frozenset({"FetchEngine", "VectorEngine"})
BRANCH_SEAM_CLASSES = frozenset({"BranchUnit", "ReplayBranchUnit"})
SEAM_CLASSES = ENGINE_SEAM_CLASSES | BRANCH_SEAM_CLASSES

#: Functions allowed to construct seam classes: the seams themselves.
SEAM_FACTORIES = frozenset(
    {"build_engine", "build_branch_unit", "make_paper_branch_unit"}
)

#: The pseudo-function holding module-level statements.
MODULE_BODY = "<module>"


@dataclass(frozen=True, slots=True)
class CallSite:
    """One call in a function body, with a best-effort target name.

    ``kind`` says how to interpret ``target``:

    * ``"abs"``   — dotted name with import aliases already applied
      (``repro.core.engine.build_engine``, ``json.dumps``);
    * ``"self"``  — method/attribute path on the enclosing instance
      (``admit``, ``store.load``), resolved against the class in phase 2;
    * ``"local"`` — a nested function of the same enclosing function,
      ``target`` is its full in-module qualpath.
    """

    target: str
    kind: str
    line: int
    col: int
    #: The call is the direct argument of ``sorted(...)`` — the
    #: order-sanitizer recognised by SIM014.
    in_sorted: bool = False

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "kind": self.kind,
            "line": self.line,
            "col": self.col,
            "in_sorted": self.in_sorted,
        }

    @classmethod
    def from_dict(cls, data: dict) -> CallSite:
        return cls(
            target=str(data["target"]),
            kind=str(data["kind"]),
            line=int(data["line"]),
            col=int(data["col"]),
            in_sorted=bool(data["in_sorted"]),
        )


@dataclass(frozen=True, slots=True)
class Effect:
    """One local effect fact: a source/blocking call or construction.

    ``kind`` is a :data:`NONDET_KINDS` member for nondeterminism
    effects, the dotted call name for blocking effects, and the class
    name for constructions; ``detail`` is the human fragment quoted in
    finding messages (``"time.time()"``, ``"iteration over set(...)"``).
    """

    kind: str
    detail: str
    line: int
    col: int

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: dict) -> Effect:
        return cls(
            kind=str(data["kind"]),
            detail=str(data["detail"]),
            line=int(data["line"]),
            col=int(data["col"]),
        )


@dataclass(slots=True)
class FunctionFact:
    """Everything phase 2 needs to know about one function.

    ``qualpath`` is the in-module path: ``"build_engine"``,
    ``"SweepService.admit"``, ``"outer.<locals>.inner"``, or
    ``"<module>"`` for module-level statements.
    """

    qualpath: str
    line: int
    is_async: bool = False
    calls: tuple[CallSite, ...] = ()
    nondet: tuple[Effect, ...] = ()
    blocking: tuple[Effect, ...] = ()
    constructs: tuple[Effect, ...] = ()
    #: ``self.<attr>`` names assigned outside ``__init__`` — the
    #: syntactic fingerprint of simulator-state mutation.
    mutates: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        """Last path component (the factory-allowlist key)."""
        return self.qualpath.rpartition(".")[2]

    @property
    def class_name(self) -> str | None:
        """Enclosing class for a plain method, else ``None``."""
        head, _, _ = self.qualpath.rpartition(".")
        if head and "." not in head and head != MODULE_BODY:
            return head
        return None

    def to_dict(self) -> dict:
        return {
            "qualpath": self.qualpath,
            "line": self.line,
            "is_async": self.is_async,
            "calls": [c.to_dict() for c in self.calls],
            "nondet": [e.to_dict() for e in self.nondet],
            "blocking": [e.to_dict() for e in self.blocking],
            "constructs": [e.to_dict() for e in self.constructs],
            "mutates": list(self.mutates),
        }

    @classmethod
    def from_dict(cls, data: dict) -> FunctionFact:
        return cls(
            qualpath=str(data["qualpath"]),
            line=int(data["line"]),
            is_async=bool(data["is_async"]),
            calls=tuple(CallSite.from_dict(c) for c in data["calls"]),
            nondet=tuple(Effect.from_dict(e) for e in data["nondet"]),
            blocking=tuple(Effect.from_dict(e) for e in data["blocking"]),
            constructs=tuple(Effect.from_dict(e) for e in data["constructs"]),
            mutates=tuple(str(m) for m in data["mutates"]),
        )


@dataclass(slots=True)
class ClassFact:
    """Per-class facts: method names and inferable attribute types."""

    name: str
    line: int
    #: Method names defined directly on the class body.
    methods: tuple[str, ...] = ()
    #: ``self.<attr>`` -> alias-resolved dotted class name, from
    #: ``self.x = ClassName(...)`` or an annotated parameter stored on
    #: ``self`` (``def __init__(self, store: ResultStore): self.store =
    #: store``).
    attr_types: dict[str, str] = field(default_factory=dict)
    #: Alias-resolved base-class names (single-level MRO hints).
    bases: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "methods": list(self.methods),
            "attr_types": dict(sorted(self.attr_types.items())),
            "bases": list(self.bases),
        }

    @classmethod
    def from_dict(cls, data: dict) -> ClassFact:
        return cls(
            name=str(data["name"]),
            line=int(data["line"]),
            methods=tuple(str(m) for m in data["methods"]),
            attr_types={str(k): str(v) for k, v in data["attr_types"].items()},
            bases=tuple(str(b) for b in data["bases"]),
        )


@dataclass(slots=True)
class ModuleSummary:
    """Phase-1 output for one source file."""

    relpath: str
    module: str
    content_hash: str
    #: qualpath -> fact, in source order.
    functions: dict[str, FunctionFact] = field(default_factory=dict)
    #: class name -> fact, in source order.
    classes: dict[str, ClassFact] = field(default_factory=dict)
    #: local name -> dotted import origin (``repro.lint.asthelpers``
    #: convention: ``from a import b`` maps ``b`` to ``a.b``).
    imports: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "version": FLOW_FORMAT_VERSION,
            "relpath": self.relpath,
            "module": self.module,
            "content_hash": self.content_hash,
            "functions": {
                q: f.to_dict() for q, f in self.functions.items()
            },
            "classes": {n: c.to_dict() for n, c in self.classes.items()},
            "imports": dict(self.imports),
        }

    @classmethod
    def from_dict(cls, data: dict) -> ModuleSummary:
        if data.get("version") != FLOW_FORMAT_VERSION:
            raise ValueError(
                f"summary format {data.get('version')!r} != "
                f"{FLOW_FORMAT_VERSION}"
            )
        return cls(
            relpath=str(data["relpath"]),
            module=str(data["module"]),
            content_hash=str(data["content_hash"]),
            functions={
                str(q): FunctionFact.from_dict(f)
                for q, f in data["functions"].items()
            },
            classes={
                str(n): ClassFact.from_dict(c)
                for n, c in data["classes"].items()
            },
            imports={str(k): str(v) for k, v in data["imports"].items()},
        )


def content_key(module: str, source: str) -> str:
    """Cache key for one file: format version + module name + bytes.

    The module name participates because the summary embeds it (and the
    scoped rules key off it): the same bytes at a different package path
    must not share an entry.
    """
    digest = hashlib.sha256()
    digest.update(f"simflow-v{FLOW_FORMAT_VERSION}\x00".encode())
    digest.update(module.encode("utf-8", "surrogatepass"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8", "surrogatepass"))
    return digest.hexdigest()
