"""simflow: the whole-program (flow-aware) layer of simlint.

Per-file rules see one AST at a time; the invariants this package
polices — determinism, a non-blocked event loop, factory-only
construction of engine seams — are properties of *call paths*, and a
call path rarely stays inside one file.  The layer runs in two phases:

1. **index** (:mod:`~repro.lint.flow.indexer`): every file becomes a
   :class:`~repro.lint.flow.facts.ModuleSummary` of per-function call
   sites and local effect facts.  Indexing is a pure function of the
   source text, so summaries are content-addressed, cached on disk
   (:mod:`~repro.lint.flow.cache`), and shippable across a process
   pool (:mod:`~repro.lint.flow.project`);
2. **analyze** (:mod:`~repro.lint.flow.symbols`,
   :mod:`~repro.lint.flow.callgraph`): the summaries join into a
   repo-wide symbol table and call graph, over which the flow rules —
   SIM014 (:mod:`~repro.lint.flow.taint`), SIM015
   (:mod:`~repro.lint.flow.blocking`), SIM016
   (:mod:`~repro.lint.flow.seams`) — run fixed-point label
   propagations and report each violation with the concrete call chain
   that produced it.

The rules register into the same registry, config, and suppression
machinery as the per-file rules; the driver
(:func:`repro.lint.runner.run_lint`) decides when the phases run.
"""

from repro.lint.flow.cache import SummaryCache
from repro.lint.flow.callgraph import CallGraph, Node
from repro.lint.flow.facts import FLOW_FORMAT_VERSION, ModuleSummary, content_key
from repro.lint.flow.indexer import index_module, index_tree
from repro.lint.flow.project import (
    FlowStats,
    IndexEntry,
    ProjectContext,
    build_project,
    index_entries,
)
from repro.lint.flow.symbols import SymbolTable, node_id

__all__ = [
    "FLOW_FORMAT_VERSION",
    "CallGraph",
    "FlowStats",
    "IndexEntry",
    "ModuleSummary",
    "Node",
    "ProjectContext",
    "SummaryCache",
    "SymbolTable",
    "build_project",
    "content_key",
    "index_entries",
    "index_module",
    "index_tree",
    "node_id",
]
