"""Phase 1: index one source file into a :class:`ModuleSummary`.

:func:`index_module` is a pure function of ``(relpath, module, source)``
— it parses the text, walks the tree once, and records per-function call
sites and effect facts.  Purity is what makes the whole flow layer
cacheable: the summary cache keys on a content hash, and a process-pool
worker can index a file with nothing but its path and module name.

Resolution here is *local only*: import aliases are applied
(``from time import sleep`` → ``time.sleep``), module-level definitions
qualify bare names (``helper()`` → ``pkg.mod.helper``), and
``self.x(...)`` is recorded as a self-call for phase 2 to resolve
against the class.  Anything genuinely dynamic (calls on arbitrary
expressions, getattr, callbacks) is dropped, never guessed — the flow
rules prefer missed edges over false taint.

The effect detectors deliberately reuse the per-file rules' tables
(:mod:`repro.lint.rules.determinism` for nondeterminism sources,
:func:`repro.lint.rules.ordering._unordered_reason` for unordered
iteration) so a source that SIM001/SIM002 would flag directly is exactly
the source SIM014 propagates transitively — one definition of
"nondeterministic", two ranges.
"""

from __future__ import annotations

import ast

from repro.lint.asthelpers import dotted_name, import_aliases, resolve_name
from repro.lint.flow.facts import (
    BLOCKING_BUILTINS,
    BLOCKING_CALLS,
    MODULE_BODY,
    SEAM_CLASSES,
    CallSite,
    ClassFact,
    Effect,
    FunctionFact,
    ModuleSummary,
    content_key,
)
from repro.lint.rules.determinism import (
    BANNED_CALLS,
    GLOBAL_RANDOM_FUNCS,
    NUMPY_NEUTRAL,
    NUMPY_SEEDABLE,
)
from repro.lint.rules.ordering import OrderedIterationRule, _unordered_reason

#: BANNED_CALLS partitioned into taint kinds.
_CLOCK_CALLS = frozenset(
    name
    for name in BANNED_CALLS
    if name.startswith(("time.", "datetime."))
)
_ENTROPY_CALLS = BANNED_CALLS - _CLOCK_CALLS


def _nondet_call(target: str, call: ast.Call) -> tuple[str, str] | None:
    """(kind, detail) when *target* is a nondeterminism source call."""
    if target in _CLOCK_CALLS:
        return "clock", f"{target}()"
    if target in _ENTROPY_CALLS:
        return "entropy", f"{target}()"
    if target == "id":
        return "id", "id()"
    head, _, tail = target.rpartition(".")
    if head == "random" and tail in GLOBAL_RANDOM_FUNCS:
        return "rng", f"{target}()"
    if target in (
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
    ):
        if not call.args and not call.keywords:
            return "rng", f"unseeded {target}()"
        return None  # seeded construction: the sanctioned idiom
    if head == "numpy.random" and tail not in NUMPY_SEEDABLE | NUMPY_NEUTRAL:
        return "rng", f"{target}()"
    return None


class _FunctionWalker:
    """Collect the calls and effects of one function body.

    Walks every node that executes when the function runs; nested
    ``def``/``async def``/``lambda`` bodies are skipped (they execute
    when *called*), but their decorators and default expressions do run
    at definition time and stay in this walk.
    """

    def __init__(self, indexer: _ModuleIndexer, qualpath: str,
                 nested_names: dict[str, str]) -> None:
        self.indexer = indexer
        self.qualpath = qualpath
        #: bare nested-def name -> full qualpath (for "local" call kinds).
        self.nested_names = nested_names
        self.calls: list[CallSite] = []
        self.nondet: list[Effect] = []
        self.blocking: list[Effect] = []
        self.constructs: list[Effect] = []
        self.mutates: list[str] = []

    def walk(self, nodes: list[ast.stmt]) -> None:
        for node in nodes:
            self._visit(node, in_sorted=False)

    def _visit(self, node: ast.AST, in_sorted: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # The body runs later; decorators and defaults run now.
            for expr in (
                *node.decorator_list,
                *node.args.defaults,
                *(d for d in node.args.kw_defaults if d is not None),
            ):
                self._visit(expr, in_sorted=False)
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, in_sorted)
            # Arguments of sorted(...) are order-sanitized call sites.
            sanitizing = (
                isinstance(node.func, ast.Name) and node.func.id == "sorted"
            )
            self._visit(node.func, in_sorted=False)
            for child in (*node.args, *node.keywords):
                self._visit(child, in_sorted=sanitizing)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                self._record_self_mutation(target)
        self._record_unordered_iteration(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child, in_sorted=False)

    # -- effects --------------------------------------------------------------

    def _record_self_mutation(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.qualpath.rpartition(".")[2] != "__init__"
            and target.attr not in self.mutates
        ):
            self.mutates.append(target.attr)

    def _record_unordered_iteration(self, node: ast.AST) -> None:
        iterables: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            iterables.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call):
            iterables.extend(OrderedIterationRule._collector_args(node))
        for iterable in iterables:
            reason = _unordered_reason(iterable)
            if reason is not None:
                self.nondet.append(
                    Effect(
                        kind="ordering",
                        detail=f"iteration over {reason}",
                        line=iterable.lineno,
                        col=iterable.col_offset,
                    )
                )

    def _visit_call(self, call: ast.Call, in_sorted: bool) -> None:
        func = call.func
        line, col = call.lineno, call.col_offset
        # Seam-class construction (matched by terminal name, like
        # SIM010/SIM011, so ``engine.FetchEngine(...)`` is caught too).
        terminal = None
        if isinstance(func, ast.Name):
            terminal = func.id
        elif isinstance(func, ast.Attribute):
            terminal = func.attr
        if terminal in SEAM_CLASSES:
            self.constructs.append(
                Effect(
                    kind=terminal, detail=f"{terminal}(...)",
                    line=line, col=col,
                )
            )
        name = dotted_name(func)
        if name is None:
            return
        head, _, rest = name.partition(".")
        if head in ("self", "cls") and rest:
            self.calls.append(
                CallSite(
                    target=rest, kind="self",
                    line=line, col=col, in_sorted=in_sorted,
                )
            )
            return
        resolved = resolve_name(func, self.indexer.aliases)
        if resolved is None:
            return
        # Local effects first: sources and blockers are facts even when
        # the callee is not a repo function.
        nondet = _nondet_call(resolved, call)
        if nondet is not None:
            kind, detail = nondet
            if not (in_sorted and kind == "ordering"):
                self.nondet.append(
                    Effect(kind=kind, detail=detail, line=line, col=col)
                )
        if resolved in BLOCKING_CALLS or (
            resolved in BLOCKING_BUILTINS
            and resolved not in self.indexer.aliases
        ):
            self.blocking.append(
                Effect(
                    kind=resolved, detail=f"{resolved}()",
                    line=line, col=col,
                )
            )
        # The call edge itself.
        if "." not in name and name in self.nested_names:
            self.calls.append(
                CallSite(
                    target=self.nested_names[name], kind="local",
                    line=line, col=col, in_sorted=in_sorted,
                )
            )
            return
        if "." not in name and name not in self.indexer.aliases:
            # A bare name: either a module-level definition or a builtin.
            if name in self.indexer.toplevel:
                resolved = f"{self.indexer.module}.{name}"
            else:
                return  # builtin or dynamic local — no edge
        self.calls.append(
            CallSite(
                target=resolved, kind="abs",
                line=line, col=col, in_sorted=in_sorted,
            )
        )


class _ModuleIndexer:
    """Single-pass tree walk producing a :class:`ModuleSummary`."""

    def __init__(self, tree: ast.Module, relpath: str, module: str,
                 source: str) -> None:
        self.tree = tree
        self.relpath = relpath
        self.module = module
        self.aliases = import_aliases(tree)
        #: Names defined at module level (functions and classes), used
        #: to qualify bare-name calls.
        self.toplevel = {
            node.name
            for node in tree.body
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        }
        self.summary = ModuleSummary(
            relpath=relpath,
            module=module,
            content_hash=content_key(module, source),
            imports=dict(self.aliases),
        )

    def index(self) -> ModuleSummary:
        module_stmts = [
            stmt
            for stmt in self.tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        self._index_function(
            MODULE_BODY, line=1, is_async=False, body=module_stmts
        )
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_def(stmt, prefix="")
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(stmt)
        return self.summary

    def _index_class(self, node: ast.ClassDef) -> None:
        fact = ClassFact(
            name=node.name,
            line=node.lineno,
            methods=tuple(
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            ),
            bases=tuple(
                base
                for base in (
                    resolve_name(b, self.aliases) for b in node.bases
                )
                if base is not None
            ),
        )
        self.summary.classes[node.name] = fact
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_def(stmt, prefix=f"{node.name}.")
                self._infer_attr_types(stmt, fact)

    def _index_def(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, prefix: str
    ) -> None:
        qualpath = f"{prefix}{node.name}"
        direct = _direct_nested_defs(node.body)
        self._index_function(
            qualpath,
            line=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            body=node.body,
            nested_names={
                d.name: f"{qualpath}.<locals>.{d.name}" for d in direct
            },
        )
        # Nested definitions become their own nodes so off-loop sync
        # helpers inside async handlers keep their own blocking facts.
        for child in direct:
            self._index_def(child, prefix=f"{qualpath}.<locals>.")

    def _index_function(
        self,
        qualpath: str,
        line: int,
        is_async: bool,
        body: list[ast.stmt],
        nested_names: dict[str, str] | None = None,
    ) -> None:
        walker = _FunctionWalker(self, qualpath, nested_names or {})
        walker.walk(body)
        self.summary.functions[qualpath] = FunctionFact(
            qualpath=qualpath,
            line=line,
            is_async=is_async,
            calls=tuple(walker.calls),
            nondet=tuple(walker.nondet),
            blocking=tuple(walker.blocking),
            constructs=tuple(walker.constructs),
            mutates=tuple(walker.mutates),
        )

    # -- attribute-type inference ---------------------------------------------

    def _infer_attr_types(
        self, method: ast.FunctionDef | ast.AsyncFunctionDef, fact: ClassFact
    ) -> None:
        """Record ``self.<attr>`` types a method makes syntactically plain.

        Two patterns, both exact: ``self.x = ClassName(...)`` (the
        constructed class, alias-resolved) and ``self.x = param`` where
        *param* is annotated with a resolvable class name.  Re-assigning
        an attribute to something unresolvable erases the inference —
        half-knowledge must not survive as false certainty.
        """
        annotations: dict[str, str] = {}
        for arg in (*method.args.posonlyargs, *method.args.args,
                    *method.args.kwonlyargs):
            resolved = self._annotation_class(arg.annotation)
            if resolved is not None:
                annotations[arg.arg] = resolved
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            inferred: str | None = None
            value = node.value
            if isinstance(value, ast.Call):
                name = resolve_name(value.func, self.aliases)
                if name is not None:
                    head = name.partition(".")[0]
                    if head in self.toplevel:
                        name = f"{self.module}.{name}"
                    inferred = name
            elif isinstance(value, ast.Name):
                inferred = annotations.get(value.id)
            if inferred is not None:
                fact.attr_types[target.attr] = inferred
            else:
                fact.attr_types.pop(target.attr, None)

    def _annotation_class(self, annotation: ast.expr | None) -> str | None:
        """Dotted class name from a simple annotation (or ``None``).

        Handles ``ResultStore``, ``mod.ResultStore``, and
        ``ResultStore | None``; anything fancier (strings, subscripts)
        is ignored rather than misread.
        """
        if annotation is None:
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            for side in (annotation.left, annotation.right):
                if isinstance(side, ast.Constant) and side.value is None:
                    continue
                resolved = self._annotation_class(side)
                if resolved is not None:
                    return resolved
            return None
        if isinstance(annotation, (ast.Name, ast.Attribute)):
            name = resolve_name(annotation, self.aliases)
            if name is None:
                return None
            head = name.partition(".")[0]
            if head in self.toplevel:
                return f"{self.module}.{name}"
            return name
        return None


def _direct_nested_defs(
    body: list[ast.stmt],
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Defs whose nearest enclosing function is the *body*'s owner.

    Source order is preserved; defs inside deeper functions or lambdas
    belong to those scopes and are excluded.
    """
    found: list[ast.FunctionDef | ast.AsyncFunctionDef] = []

    def scan(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.append(child)
                continue
            if isinstance(child, ast.Lambda):
                continue
            scan(child)

    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append(stmt)
        elif not isinstance(stmt, ast.Lambda):
            scan(stmt)
    return found


def index_module(source: str, relpath: str, module: str) -> ModuleSummary:
    """Index *source* into a summary (raises ``SyntaxError`` on bad text)."""
    tree = ast.parse(source, filename=relpath)
    return index_tree(tree, source, relpath, module)


def index_tree(
    tree: ast.Module, source: str, relpath: str, module: str
) -> ModuleSummary:
    """Index an already-parsed *tree* (the in-process fast path)."""
    return _ModuleIndexer(tree, relpath, module, source).index()
