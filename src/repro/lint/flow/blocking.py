"""SIM015: async service handlers must not block the loop *transitively*.

SIM013 flags a ``time.sleep()`` or ``open()`` written directly inside an
``async def`` in ``repro.service``.  Its blind spot is exactly one hop
wide: the handler calls an innocuous-looking sync method, and the
blocking call lives in the method (often in a different file — a store,
a journal, a codec).  The event loop stalls just the same.

This rule propagates a single ``blocks`` label backwards over the call
graph — through sync callees only — and flags every call edge from an
async function in the service modules to a sync callee whose sync-only
closure reaches a blocking call.  The boundaries are deliberate:

* **depth 0 is SIM013's job** — a direct blocking call is an effect on
  the handler itself, not an edge, so it is never re-reported here;
* **async callees stop propagation** — an awaited coroutine that itself
  blocks is flagged at *its* edge (or by SIM013 in its body), not at
  every transitive awaiter;
* a nested sync ``def`` is exempt until the handler actually calls it,
  at which point the call edge carries the taint — closing the gap
  SIM013's nested-def exemption leaves open.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.context import module_in
from repro.lint.registry import FlowRawFinding, FlowRule, register

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle via rules/__init__
    from repro.lint.flow.project import ProjectContext

#: Module prefixes whose async handlers this rule polices (SIM013's
#: range, extended transitively).
_SERVICE_MODULES = ("repro.service",)


@register
class TransitiveBlockingRule(FlowRule):
    id = "SIM015"
    name = "flow-blocking"
    description = (
        "async service handlers must not reach blocking calls through "
        "sync callees (transitive SIM013)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[FlowRawFinding]:
        graph = project.graph
        sync_only = lambda node: not node.fact.is_async  # noqa: E731
        blocks = graph.propagate(
            direct=lambda node: (
                frozenset({"blocks"}) if node.fact.blocking else frozenset()
            ),
            follow=sync_only,
        )
        for node in graph:
            if not node.fact.is_async:
                continue
            if not module_in(node.module, _SERVICE_MODULES):
                continue
            for callee_id, site in node.edges:
                callee = graph.nodes[callee_id]
                if callee.fact.is_async or "blocks" not in blocks[callee_id]:
                    continue
                traced = graph.trace(
                    callee_id,
                    effect_of=lambda n: (
                        n.fact.blocking[0] if n.fact.blocking else None
                    ),
                    follow=sync_only,
                )
                chain = (
                    graph.render_trace(*traced)
                    if traced is not None
                    else callee.display
                )
                yield (
                    node.relpath,
                    site.line,
                    site.col,
                    f"'async def {node.fact.name}' calls a sync function "
                    f"that blocks the event loop: {chain}; await an async "
                    f"equivalent or push the chain through run_in_executor",
                )
