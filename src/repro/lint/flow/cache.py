"""On-disk cache of phase-1 module summaries.

Same conventions as :class:`repro.core.artifacts.ArtifactCache`, scaled
down to JSON blobs:

* **versioned layout** — ``<root>/v<FLOW_FORMAT_VERSION>/<hh>/<hash>.json``
  where ``<hash>`` is :func:`repro.lint.flow.facts.content_key` (format
  version + module name + source bytes) and ``<hh>`` its first two hex
  digits.  Invalidation is by construction: editing a file changes its
  hash, bumping the format version abandons the whole tree;
* **atomic writes** — temp file + ``os.replace``, so concurrent lint
  runs sharing one cache directory can at worst index a file twice,
  never read a half-written summary;
* **corruption = miss** — a truncated or hand-edited entry is silently
  re-indexed, never an error, and the first OS-level store failure
  (read-only directory, full disk) disables writes for the rest of the
  run rather than failing the lint pass.

The cache stores *facts*, not findings: rules always run fresh over the
assembled project, so a rule change never needs a cache flush (an
indexer change does, and must bump :data:`FLOW_FORMAT_VERSION`).
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.lint.flow.facts import FLOW_FORMAT_VERSION, ModuleSummary


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for one lint run (asserted in tests)."""

    hits: int = 0
    misses: int = 0
    store_failures: int = 0


class SummaryCache:
    """Content-addressed store of :class:`ModuleSummary` JSON blobs.

    ``SummaryCache(None)`` is a disabled no-op passthrough, so the
    indexing pipeline never branches on whether caching is configured.
    """

    def __init__(self, cache_dir: str | os.PathLike[str] | None) -> None:
        self.root: Path | None = None if cache_dir is None else Path(cache_dir)
        self.stats = CacheStats()
        self._disabled = False

    @property
    def enabled(self) -> bool:
        return self.root is not None and not self._disabled

    def entry_path(self, key: str) -> Path:
        if self.root is None:
            raise ValueError("summary cache is disabled (no cache_dir)")
        return self.root / f"v{FLOW_FORMAT_VERSION}" / key[:2] / f"{key}.json"

    def load(self, key: str) -> ModuleSummary | None:
        """The cached summary for *key*, or ``None`` on any miss."""
        if not self.enabled:
            return None
        try:
            with open(self.entry_path(key), "rb") as handle:
                data = json.load(handle)
            summary = ModuleSummary.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # Missing entry, torn JSON, or a stale/foreign shape: all
            # misses.  from_dict re-checks the embedded format version.
            self.stats.misses += 1
            return None
        if summary.content_hash != key:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return summary

    def store(self, summary: ModuleSummary) -> None:
        """Persist *summary* under its content hash (atomic, degrading)."""
        if not self.enabled:
            return
        try:
            path = self.entry_path(summary.content_hash)
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = json.dumps(
                summary.to_dict(), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        except OSError as exc:
            self.stats.store_failures += 1
            self._disabled = True
            warnings.warn(
                f"flow summary cache disabled for this run: storing "
                f"{summary.relpath!r} failed: {type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
