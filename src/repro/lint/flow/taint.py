"""SIM014: nondeterminism must not flow into simulator code transitively.

SIM001/SIM002 police *direct* sources inside the determinism modules —
a ``time.time()`` or unordered ``set`` iteration written in
``repro.core`` is flagged where it stands.  The classic laundering
pattern survives them: the source moves one module over, into a helper
outside the scoped prefixes, and the simulator calls the helper.  The
per-file rules see a clean call expression; the run is just as
irreproducible.

This rule closes that hole at the *scope boundary*: it propagates taint
kinds (``clock``, ``entropy``, ``rng``, ``id``, ``ordering``) backwards
over the project call graph and flags every call edge that leaves the
determinism modules for a callee whose transitive closure reaches a
source.  Edges between two in-scope functions are never flagged — any
source on that path has its own crossing edge (or is SIM001/SIM002's
direct business), so each laundering route is reported exactly once, at
the point where scoped code reaches out.

Sanitizers mirror the per-file rules: a seeded RNG construction is not
a source at all (the indexer drops it), and wrapping the offending call
in ``sorted(...)`` at the call site kills the ``ordering`` kind — and
only that kind — for that edge.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.context import module_in
from repro.lint.registry import FlowRawFinding, FlowRule, register

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle via rules/__init__
    from repro.lint.flow.callgraph import CallGraph, Node
    from repro.lint.flow.project import ProjectContext

#: Remedy fragment per taint kind, appended to the finding message.
_REMEDIES = {
    "clock": "inject the simulated clock instead of reading wall time",
    "entropy": "thread entropy through an explicit seeded source",
    "rng": "construct the RNG with an explicit seed and pass it down",
    "id": "derive keys from stable fields, not object identity",
    "ordering": "sort before iterating (or wrap the call in sorted(...))",
}


@register
class TransitiveDeterminismRule(FlowRule):
    id = "SIM014"
    name = "flow-determinism"
    description = (
        "determinism-scoped code must not reach nondeterminism sources "
        "through helpers outside the scoped modules (transitive SIM001/"
        "SIM002)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[FlowRawFinding]:
        scope = project.config.determinism_modules
        graph = project.graph
        tainted = graph.propagate(
            direct=lambda node: frozenset(e.kind for e in node.fact.nondet)
        )
        for node in graph:
            if not module_in(node.module, scope):
                continue
            for callee_id, site in node.edges:
                callee = graph.nodes[callee_id]
                if module_in(callee.module, scope):
                    continue
                kinds = set(tainted[callee_id])
                if site.in_sorted:
                    kinds.discard("ordering")
                if not kinds:
                    continue
                yield (
                    node.relpath,
                    site.line,
                    site.col,
                    self._message(graph, node, callee, kinds),
                )

    def _message(
        self, graph: CallGraph, node: Node, callee: Node, kinds: set[str]
    ) -> str:
        traced = graph.trace(
            callee.id,
            effect_of=lambda n: next(
                (e for e in n.fact.nondet if e.kind in kinds), None
            ),
        )
        ordered = sorted(kinds)
        chain = (
            graph.render_trace(*traced)
            if traced is not None
            else callee.display
        )
        message = (
            f"'{node.display}' calls outside the determinism scope and "
            f"reaches a nondeterminism source "
            f"({', '.join(ordered)}): {chain}"
        )
        if node.fact.mutates:
            touched = ", ".join(f"self.{attr}" for attr in node.fact.mutates)
            message += f"; the caller mutates simulator state ({touched})"
        return f"{message}; {_REMEDIES[ordered[0]]}"
