"""Phase 2a: the repo-wide symbol table.

Joins the per-module summaries into one name space and answers the only
question the call-graph builder asks: *which indexed function does this
call site refer to?*  Resolution handles

* plain module members (``repro.core.engine.build_engine``);
* import chasing through re-exports — ``from repro.lint import run_lint``
  resolves through ``repro.lint.__init__``'s own import of
  ``repro.lint.runner.run_lint`` (bounded depth, cycle-safe);
* relative imports (``from .store import ResultStore``), absolutised
  against the importing module's package;
* class constructions (``ResultStore(...)`` → ``ResultStore.__init__``)
  and method calls, including single-level base-class chasing;
* ``self.method(...)`` against the enclosing class, and
  ``self.attr.method(...)`` through the indexer's syntactic attribute
  types (``self.store = ResultStore(...)``).

Everything stays syntactic and conservative: a name that does not chase
to an indexed function yields no edge.  The flow rules are taint
analyses — a missed edge costs recall, a fabricated edge costs a false
positive in a gate, and the gate matters more.
"""

from __future__ import annotations

from repro.lint.flow.facts import (
    MODULE_BODY,
    CallSite,
    ClassFact,
    FunctionFact,
    ModuleSummary,
)

#: Import-chase depth bound (re-export chains are short in practice).
_MAX_CHASE = 8


def node_id(summary: ModuleSummary, qualpath: str) -> str:
    """Stable graph-node id for one function of one module."""
    return f"{summary.module}.{qualpath}"


class SymbolTable:
    """Name-resolution index over one lint run's summaries."""

    def __init__(self, summaries: list[ModuleSummary]) -> None:
        #: dotted module name -> summary.  Out-of-package scripts index
        #: under their bare stem; a stem collision keeps the last one
        #: (scripts are leaves — nothing resolves *into* them by name).
        self.modules: dict[str, ModuleSummary] = {}
        #: node id -> (summary, fact) for every indexed function.
        self.functions: dict[str, tuple[ModuleSummary, FunctionFact]] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        for summary in self.modules.values():
            for qualpath, fact in summary.functions.items():
                self.functions[node_id(summary, qualpath)] = (summary, fact)

    # -- call-site resolution -------------------------------------------------

    def resolve_call(
        self, summary: ModuleSummary, caller: FunctionFact, site: CallSite
    ) -> str | None:
        """Node id of the function *site* calls, or ``None``."""
        if site.kind == "local":
            candidate = node_id(summary, site.target)
            return candidate if candidate in self.functions else None
        if site.kind == "self":
            return self._resolve_self(summary, caller, site.target)
        return self.resolve_dotted(site.target)

    def _resolve_self(
        self, summary: ModuleSummary, caller: FunctionFact, target: str
    ) -> str | None:
        class_name = caller.class_name
        if class_name is None:
            return None
        cls = summary.classes.get(class_name)
        if cls is None:
            return None
        parts = target.split(".")
        if len(parts) == 1:
            return self._method(summary, cls, parts[0], 0)
        if len(parts) == 2:
            attr_class = cls.attr_types.get(parts[0])
            if attr_class is None:
                return None
            resolved = self.resolve_class(attr_class, 0)
            if resolved is None:
                return None
            return self._method(*resolved, parts[1], 0)
        return None

    # -- dotted-name resolution -----------------------------------------------

    def resolve_dotted(self, dotted: str, depth: int = 0) -> str | None:
        """Node id for an absolute dotted name, chasing re-exports."""
        if depth > _MAX_CHASE:
            return None
        module, rest = self._split_module(dotted)
        if module is None or not rest:
            return None
        return self._resolve_in(module, rest, depth)

    def resolve_class(
        self, dotted: str, depth: int
    ) -> tuple[ModuleSummary, ClassFact] | None:
        """The summary and fact of the class *dotted* names, if indexed."""
        if depth > _MAX_CHASE:
            return None
        module, rest = self._split_module(dotted)
        if module is None or not rest:
            return None
        parts = rest.split(".")
        head = parts[0]
        if head in module.classes and len(parts) == 1:
            return module, module.classes[head]
        origin = self._import_origin(module, head)
        if origin is not None:
            tail = ".".join(parts[1:])
            return self.resolve_class(
                origin + ("." + tail if tail else ""), depth + 1
            )
        return None

    def _split_module(
        self, dotted: str
    ) -> tuple[ModuleSummary | None, str]:
        """Longest indexed module prefix of *dotted* plus the remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return self.modules[prefix], ".".join(parts[cut:])
        return None, dotted

    def _resolve_in(
        self, summary: ModuleSummary, rest: str, depth: int
    ) -> str | None:
        """Resolve *rest* (``f`` / ``C.m`` / re-export) inside *summary*."""
        if rest in summary.functions and rest != MODULE_BODY:
            return node_id(summary, rest)
        parts = rest.split(".")
        head = parts[0]
        if head in summary.classes:
            cls = summary.classes[head]
            if len(parts) == 1:
                # Construction: the edge lands on __init__ when defined.
                return self._method(summary, cls, "__init__", depth)
            if len(parts) == 2:
                return self._method(summary, cls, parts[1], depth)
            return None
        origin = self._import_origin(summary, head)
        if origin is not None:
            tail = ".".join(parts[1:])
            return self.resolve_dotted(
                origin + ("." + tail if tail else ""), depth + 1
            )
        return None

    def _import_origin(
        self, summary: ModuleSummary, name: str
    ) -> str | None:
        """Absolute dotted origin of an import binding, or ``None``."""
        origin = summary.imports.get(name)
        if origin is None:
            return None
        if not origin.startswith("."):
            return origin
        # Relative import: absolutise against the importing package.
        level = len(origin) - len(origin.lstrip("."))
        remainder = origin[level:]
        package_parts = summary.module.split(".") if summary.module else []
        if not summary.relpath.endswith("__init__.py"):
            package_parts = package_parts[:-1]
        package_parts = package_parts[: len(package_parts) - (level - 1)]
        if not package_parts:
            return None
        base = ".".join(package_parts)
        return f"{base}.{remainder}" if remainder else base

    def _method(
        self, summary: ModuleSummary, cls: ClassFact, method: str, depth: int
    ) -> str | None:
        """Node id of ``cls.method``, chasing declared bases if needed."""
        if method in cls.methods:
            return node_id(summary, f"{cls.name}.{method}")
        if depth > _MAX_CHASE:
            return None
        for base in cls.bases:
            resolved = self.resolve_class(base, depth + 1)
            if resolved is None:
                continue
            found = self._method(*resolved, method, depth + 1)
            if found is not None:
                return found
        return None
