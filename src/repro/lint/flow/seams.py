"""SIM016: no call path constructs engines/branch units behind the seam.

SIM010/SIM011 flag direct ``FetchEngine(...)`` / ``BranchUnit(...)``
constructions — but only inside the determinism modules, and only
syntactically.  Both limits are bypassable with one wrapper: move the
construction into a helper outside the scoped prefixes and call the
helper from anywhere.  The cell still pins one backend and skips every
check ``build_engine`` performs; no per-file rule can see it.

This rule enforces the seam over the whole call graph:

* a function **leaks** when it constructs a seam class directly, or
  calls a leaking function — unless it is (or sits inside) a sanctioned
  factory, which is where constructions are supposed to live;
* construction sites *outside* the determinism modules are flagged
  directly (inside them, SIM010/SIM011 already fire — one finding per
  site, not two);
* every call edge to a leaking function is flagged, wherever the caller
  lives — this is the wrapper-bypass case, reported at the call site
  that launders the construction.

Propagation never crosses a sanctioned factory: calling
``build_engine`` is the *point* of the seam, not a leak.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.context import module_in
from repro.lint.flow.facts import (
    BRANCH_SEAM_CLASSES,
    SEAM_FACTORIES,
    FunctionFact,
)
from repro.lint.registry import FlowRawFinding, FlowRule, register

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle via rules/__init__
    from repro.lint.flow.project import ProjectContext


def _in_factory(fact: FunctionFact) -> bool:
    """Whether *fact* is a sanctioned factory or nested inside one."""
    return any(part in SEAM_FACTORIES for part in fact.qualpath.split("."))


def _remedy(classes: set[str]) -> str:
    if classes <= BRANCH_SEAM_CLASSES:
        return "obtain branch units through build_branch_unit"
    if classes & BRANCH_SEAM_CLASSES:
        return "route construction through build_engine / build_branch_unit"
    return "obtain engines through build_engine"


@register
class SeamReachabilityRule(FlowRule):
    id = "SIM016"
    name = "flow-seam"
    description = (
        "no call path may construct FetchEngine/VectorEngine/BranchUnit/"
        "ReplayBranchUnit outside the factory seams (transitive SIM010/"
        "SIM011)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[FlowRawFinding]:
        scope = project.config.determinism_modules
        graph = project.graph
        leaks = graph.propagate(
            direct=lambda node: (
                frozenset()
                if _in_factory(node.fact)
                else frozenset(e.kind for e in node.fact.constructs)
            ),
            follow=lambda node: not _in_factory(node.fact),
        )
        for node in graph:
            if _in_factory(node.fact):
                continue
            # Direct constructions, outside SIM010/SIM011's range.
            if not module_in(node.module, scope):
                for effect in node.fact.constructs:
                    yield (
                        node.relpath,
                        effect.line,
                        effect.col,
                        f"direct {effect.detail} construction bypasses the "
                        f"factory seam; {_remedy({effect.kind})}",
                    )
            # Call edges that launder a construction through a wrapper.
            for callee_id, site in node.edges:
                classes = set(leaks[callee_id])
                if not classes:
                    continue
                callee = graph.nodes[callee_id]
                traced = graph.trace(
                    callee_id,
                    effect_of=lambda n: (
                        None
                        if _in_factory(n.fact)
                        else next(iter(n.fact.constructs), None)
                    ),
                    follow=lambda n: not _in_factory(n.fact),
                )
                chain = (
                    graph.render_trace(*traced)
                    if traced is not None
                    else callee.display
                )
                yield (
                    node.relpath,
                    site.line,
                    site.col,
                    f"call to '{callee.display}' reaches a "
                    f"{'/'.join(sorted(classes))} construction outside "
                    f"the factory seam: {chain}; {_remedy(classes)}",
                )
