"""Phase 2b: the project call graph and its propagation utilities.

Nodes are indexed functions (``module.qualpath``); edges are resolved
call sites, kept in source order so every downstream traversal — and
therefore every finding — is deterministic for a given file set.  Two
graph algorithms cover all three flow rules:

* :meth:`CallGraph.propagate` — a worklist fixed point computing, for
  every node, the union of its own labels and its callees' (cycle-safe:
  recursion just converges).  SIM014 propagates nondeterminism kinds,
  SIM015 a single "blocks" label, SIM016 a "constructs" label per seam
  family;
* :meth:`CallGraph.trace` — shortest call path from a node to the
  nearest concrete effect, used to render the ``a -> b -> time.sleep()
  (path:line)`` chains in finding messages.  Taint without a trace is
  unactionable; the chain is the finding.

Both take a ``follow`` predicate so a rule can stop propagation at
boundaries the analysis must respect (SIM015 never crosses into
``async`` callees; SIM016 never looks past a sanctioned factory).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.lint.flow.facts import CallSite, Effect, FunctionFact, ModuleSummary
from repro.lint.flow.symbols import SymbolTable, node_id


@dataclass(slots=True)
class Node:
    """One function in the project graph."""

    id: str
    module: str
    relpath: str
    fact: FunctionFact
    #: Outgoing resolved edges, in source order.
    edges: list[tuple[str, CallSite]] = field(default_factory=list)

    @property
    def display(self) -> str:
        """Human name used in trace chains (module-qualified)."""
        return f"{self.module}.{self.fact.qualpath}"


class CallGraph:
    """Resolved call graph over one lint run's summaries."""

    def __init__(self, summaries: list[ModuleSummary], symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.nodes: dict[str, Node] = {}
        for summary in sorted(
            symbols.modules.values(), key=lambda s: s.relpath
        ):
            for qualpath, fact in summary.functions.items():
                nid = node_id(summary, qualpath)
                self.nodes[nid] = Node(
                    id=nid,
                    module=summary.module,
                    relpath=summary.relpath,
                    fact=fact,
                )
        for nid, node in self.nodes.items():
            summary = symbols.modules[node.module]
            for site in node.fact.calls:
                callee = symbols.resolve_call(summary, node.fact, site)
                if callee is not None and callee in self.nodes:
                    node.edges.append((callee, site))

    def __iter__(self) -> Iterable[Node]:
        return iter(self.nodes.values())

    # -- label propagation ----------------------------------------------------

    def propagate(
        self,
        direct: Callable[[Node], frozenset[str]],
        follow: Callable[[Node], bool] = lambda node: True,
    ) -> dict[str, frozenset[str]]:
        """Transitive label sets: own labels plus every followed callee's.

        ``direct`` gives a node's own labels; a callee contributes only
        when ``follow(callee)`` holds (the caller is always evaluated —
        ``follow`` guards *edges into* a node, not the node itself).
        Fixed point over reverse edges, so cycles simply converge.
        """
        labels: dict[str, set[str]] = {
            nid: set(direct(node)) for nid, node in self.nodes.items()
        }
        reverse: dict[str, list[str]] = {nid: [] for nid in self.nodes}
        for nid, node in self.nodes.items():
            for callee, _site in node.edges:
                if follow(self.nodes[callee]):
                    reverse[callee].append(nid)
        pending = deque(nid for nid, found in labels.items() if found)
        while pending:
            nid = pending.popleft()
            found = labels[nid]
            for caller in reverse[nid]:
                before = len(labels[caller])
                labels[caller] |= found
                if len(labels[caller]) != before:
                    pending.append(caller)
        return {nid: frozenset(found) for nid, found in labels.items()}

    # -- trace reconstruction -------------------------------------------------

    def trace(
        self,
        start: str,
        effect_of: Callable[[Node], Effect | None],
        follow: Callable[[Node], bool] = lambda node: True,
    ) -> tuple[list[Node], Effect] | None:
        """Shortest path from *start* to the nearest concrete effect.

        Returns ``(nodes, effect)`` where ``nodes`` runs from *start* to
        the node owning *effect* (inclusive).  Edge expansion respects
        ``follow`` exactly like :meth:`propagate`, so a traced path is
        always one the propagation actually used.
        """
        origin = self.nodes.get(start)
        if origin is None:
            return None
        parents: dict[str, str | None] = {start: None}
        queue: deque[str] = deque([start])
        while queue:
            nid = queue.popleft()
            node = self.nodes[nid]
            effect = effect_of(node)
            if effect is not None:
                path = [node]
                while parents[path[0].id] is not None:
                    path.insert(0, self.nodes[parents[path[0].id]])
                return path, effect
            for callee, _site in node.edges:
                if callee not in parents and follow(self.nodes[callee]):
                    parents[callee] = nid
                    queue.append(callee)
        return None

    def render_trace(self, path: list[Node], effect: Effect) -> str:
        """``a -> b -> <detail> (relpath:line)`` chain for messages."""
        chain = " -> ".join(node.display for node in path)
        last = path[-1]
        return f"{chain} -> {effect.detail} ({last.relpath}:{effect.line})"
