"""Small AST utilities shared by the simlint rules.

The rules care about *which fully-qualified callable* an expression
refers to — ``t.time()`` after ``import time as t`` must be recognised
as ``time.time``.  :func:`import_aliases` builds the local-name → origin
map for a module and :func:`resolve_call` applies it to a call's dotted
name.  Everything here is syntactic: no imports are executed and no
types are inferred, which keeps the linter safe to run on broken or
hostile trees.
"""

from __future__ import annotations

import ast
import builtins
from collections.abc import Iterator


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map each locally-bound import name to its dotted origin.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from random
    import random`` yields ``{"random": "random.random"}``.  Relative
    imports keep their leading dots, which by construction never match a
    banned absolute name.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                origin = alias.name if alias.asname else alias.name.partition(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return aliases


def resolve_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Fully-qualified dotted name of *node* under the import *aliases*."""
    name = dotted_name(node)
    if name is None:
        return None
    head, dot, rest = name.partition(".")
    origin = aliases.get(head, head)
    return origin + dot + rest if rest else origin


def terminal_name(node: ast.expr) -> str | None:
    """The last path component of a Name/Attribute chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def walk_with_parents(
    tree: ast.AST,
) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
    """Depth-first walk yielding each node with its ancestor chain."""
    stack: list[tuple[ast.AST, tuple[ast.AST, ...]]] = [(tree, ())]
    while stack:
        node, parents = stack.pop()
        yield node, parents
        child_parents = parents + (node,)
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_parents))


def is_builtin_exception(name: str) -> bool:
    """Whether *name* is a builtin exception type."""
    obj = getattr(builtins, name, None)
    return isinstance(obj, type) and issubclass(obj, BaseException)


def looks_like_exception(name: str) -> bool:
    """Name-shape heuristic for exception classes."""
    return name.endswith(("Error", "Exception", "Fault", "Warning", "Interrupt"))
