"""Instruction cache model.

The paper simulates blocking, direct-mapped I-caches (8K and 32K) with
32-byte lines.  We implement a general set-associative cache with LRU so
associativity can be ablated, with a fast path for the direct-mapped
configuration the paper uses.

Each resident line carries:

* a **first-reference bit**, set when the line is loaded and cleared on the
  first subsequent fetch from it — the trigger condition of the paper's
  "maximal fetchahead and first time referenced" next-line prefetcher;
* a **provenance** tag recording *why* the line was loaded (right-path
  demand, wrong-path fill, prefetch), used to account prefetch usefulness
  and wrong-path pollution.

Timing (when a fill completes, who waits for the bus) is owned by the
engine; the cache itself is a purely functional tag store.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class LineOrigin(enum.Enum):
    """Why a resident line was brought into the cache."""

    DEMAND_RIGHT = "demand_right"
    DEMAND_WRONG = "demand_wrong"
    PREFETCH = "prefetch"


@dataclass(slots=True)
class _Way:
    tag: int
    first_ref: bool
    origin: LineOrigin
    pf_fresh: bool = False


@dataclass(slots=True)
class CacheStats:
    """Access statistics (demand probes only; fills counted separately)."""

    probes: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    prefetch_hits: int = 0  # demand hits on lines whose origin is PREFETCH
    wrongpath_hits: int = 0  # demand hits on lines filled from a wrong path
    #: First demand hit per prefetched fill (each prefetch counted once).
    prefetch_used: int = 0
    #: Prefetched fills displaced before any demand hit consumed them.
    prefetch_evicted_unused: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per probe (0.0 when nothing was probed)."""
        return self.misses / self.probes if self.probes else 0.0


class InstructionCache:
    """Set-associative I-cache tag store with LRU replacement."""

    def __init__(
        self,
        size_bytes: int,
        line_size: int = 32,
        assoc: int = 1,
    ) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ConfigError(f"line size must be a power of two, got {line_size}")
        if size_bytes <= 0 or size_bytes % line_size:
            raise ConfigError(
                f"cache size {size_bytes} not a multiple of line size {line_size}"
            )
        n_lines = size_bytes // line_size
        if assoc < 1 or n_lines % assoc:
            raise ConfigError(
                f"{n_lines} lines not divisible into {assoc}-way sets"
            )
        n_sets = n_lines // assoc
        if n_sets & (n_sets - 1):
            raise ConfigError(f"set count {n_sets} must be a power of two")
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.assoc = assoc
        self.n_sets = n_sets
        self.set_mask = n_sets - 1
        self._set_shift = n_sets.bit_length() - 1
        self.stats = CacheStats()
        if assoc == 1:
            # Direct-mapped fast path: flat arrays indexed by set.
            self._tags: list[int] = [-1] * n_sets
            self._first_ref: list[bool] = [False] * n_sets
            self._origins: list[LineOrigin | None] = [None] * n_sets
            self._pf_fresh: list[bool] = [False] * n_sets
            self._sets = None
        else:
            self._sets: list[list[_Way]] | None = [[] for _ in range(n_sets)]
            self._tags = []
            self._first_ref = []
            self._origins = []
            self._pf_fresh = []

    # -- lookup ---------------------------------------------------------------

    def contains(self, line: int) -> bool:
        """Tag check only — no statistics, no LRU update."""
        set_idx = line & self.set_mask
        tag = line >> self._set_shift
        if self.assoc == 1:
            return self._tags[set_idx] == tag
        return any(way.tag == tag for way in self._sets[set_idx])

    def probe(self, line: int) -> bool:
        """Demand access: returns hit?, updates statistics and LRU."""
        self.stats.probes += 1
        set_idx = line & self.set_mask
        tag = line >> self._set_shift
        if self.assoc == 1:
            if self._tags[set_idx] == tag:
                self.stats.hits += 1
                origin = self._origins[set_idx]
                if origin is LineOrigin.PREFETCH:
                    self.stats.prefetch_hits += 1
                    if self._pf_fresh[set_idx]:
                        self._pf_fresh[set_idx] = False
                        self.stats.prefetch_used += 1
                elif origin is LineOrigin.DEMAND_WRONG:
                    self.stats.wrongpath_hits += 1
                return True
            self.stats.misses += 1
            return False
        ways = self._sets[set_idx]
        for i, way in enumerate(ways):
            if way.tag == tag:
                ways.append(ways.pop(i))
                self.stats.hits += 1
                if way.origin is LineOrigin.PREFETCH:
                    self.stats.prefetch_hits += 1
                    if way.pf_fresh:
                        way.pf_fresh = False
                        self.stats.prefetch_used += 1
                elif way.origin is LineOrigin.DEMAND_WRONG:
                    self.stats.wrongpath_hits += 1
                return True
        self.stats.misses += 1
        return False

    # -- fill -----------------------------------------------------------------

    def fill(self, line: int, origin: LineOrigin) -> None:
        """Install *line*; sets the first-reference bit; evicts LRU."""
        set_idx = line & self.set_mask
        tag = line >> self._set_shift
        self.stats.fills += 1
        fresh = origin is LineOrigin.PREFETCH
        if self.assoc == 1:
            if self._tags[set_idx] != -1 and self._tags[set_idx] != tag:
                self.stats.evictions += 1
            if self._pf_fresh[set_idx]:
                # The displaced (or refilled) frame held a prefetched line
                # that no demand fetch ever consumed.
                self.stats.prefetch_evicted_unused += 1
            self._tags[set_idx] = tag
            self._first_ref[set_idx] = True
            self._origins[set_idx] = origin
            self._pf_fresh[set_idx] = fresh
            return
        ways = self._sets[set_idx]
        for i, way in enumerate(ways):
            if way.tag == tag:
                # Refill of a resident line (e.g. racing prefetch): refresh.
                if way.pf_fresh:
                    self.stats.prefetch_evicted_unused += 1
                way.first_ref = True
                way.origin = origin
                way.pf_fresh = fresh
                ways.append(ways.pop(i))
                return
        if len(ways) >= self.assoc:
            victim = ways.pop(0)
            self.stats.evictions += 1
            if victim.pf_fresh:
                self.stats.prefetch_evicted_unused += 1
        ways.append(_Way(tag=tag, first_ref=True, origin=origin, pf_fresh=fresh))

    # -- first-reference bit (prefetch trigger) --------------------------------

    def test_and_clear_first_ref(self, line: int) -> bool:
        """If *line* is resident with its first-ref bit set: clear it and
        return True (i.e. "this fetch should trigger a next-line prefetch")."""
        set_idx = line & self.set_mask
        tag = line >> self._set_shift
        if self.assoc == 1:
            if self._tags[set_idx] == tag and self._first_ref[set_idx]:
                self._first_ref[set_idx] = False
                return True
            return False
        for way in self._sets[set_idx]:
            if way.tag == tag:
                if way.first_ref:
                    way.first_ref = False
                    return True
                return False
        return False

    def consume_prefetch(self, line: int) -> None:
        """Mark a resident prefetched *line* as used without counting it.

        Called when a prefetched fill is consumed through a channel the
        demand-probe accounting cannot see (an in-flight merge, a stream-
        buffer install), so the usefulness partition counts it exactly
        once.
        """
        set_idx = line & self.set_mask
        tag = line >> self._set_shift
        if self.assoc == 1:
            if self._tags[set_idx] == tag:
                self._pf_fresh[set_idx] = False
            return
        for way in self._sets[set_idx]:
            if way.tag == tag:
                way.pf_fresh = False
                return

    def fresh_prefetch_count(self) -> int:
        """Resident prefetched lines no demand fetch has consumed yet."""
        if self.assoc == 1:
            return sum(self._pf_fresh)
        return sum(
            1 for ways in self._sets for way in ways if way.pf_fresh
        )

    # -- observability ---------------------------------------------------------

    def publish_metrics(self, registry, prefix: str = "cache") -> None:
        """Publish access statistics into a metrics registry."""
        stats = self.stats
        registry.inc(f"{prefix}.probes", stats.probes)
        registry.inc(f"{prefix}.hits", stats.hits)
        registry.inc(f"{prefix}.misses", stats.misses)
        registry.inc(f"{prefix}.fills", stats.fills)
        registry.inc(f"{prefix}.evictions", stats.evictions)
        registry.inc(f"{prefix}.prefetch_hits", stats.prefetch_hits)
        registry.inc(f"{prefix}.wrongpath_hits", stats.wrongpath_hits)
        registry.inc(f"{prefix}.prefetch_used", stats.prefetch_used)
        registry.inc(
            f"{prefix}.prefetch_evicted_unused", stats.prefetch_evicted_unused
        )

    def reset(self) -> None:
        """Empty the cache and clear statistics."""
        if self.assoc == 1:
            self._tags = [-1] * self.n_sets
            self._first_ref = [False] * self.n_sets
            self._origins = [None] * self.n_sets
            self._pf_fresh = [False] * self.n_sets
        else:
            self._sets = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def resident_lines(self) -> set[int]:
        """The set of currently resident line numbers (diagnostics)."""
        lines: set[int] = set()
        if self.assoc == 1:
            for set_idx, tag in enumerate(self._tags):
                if tag != -1:
                    lines.add((tag << self._set_shift) | set_idx)
            return lines
        for set_idx, ways in enumerate(self._sets):
            for way in ways:
                lines.add((way.tag << self._set_shift) | set_idx)
        return lines

    def __repr__(self) -> str:
        return (
            f"InstructionCache(size={self.size_bytes}, line={self.line_size}, "
            f"assoc={self.assoc})"
        )
