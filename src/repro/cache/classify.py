"""Lockstep miss classification (the paper's Table 4).

The paper partitions misses by running Oracle and Optimistic and comparing:

* **Both Miss** — right-path access misses under both policies;
* **Spec Pollute** — misses only under Optimistic on the right path
  (wrong-path fills displaced useful lines);
* **Spec Prefetch** — misses only under Oracle (Optimistic hit because a
  wrong-path fill usefully prefetched the line);
* **Wrong Path** — Optimistic misses incurred on wrong paths (their main
  cost is memory bandwidth);
* **Traffic Ratio** — Optimistic fills / Oracle fills.

The :class:`MissClassifier` runs a *shadow* Oracle cache inside a single
Optimistic simulation: every right-path probe consults both tag stores, and
the shadow fills only on right-path accesses (exactly Oracle's fill rule —
note the paper observes Oracle and Pessimistic fill identically, as do
Optimistic and Resume).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.icache import InstructionCache, LineOrigin


@dataclass(slots=True)
class MissClassCounts:
    """Raw event counts accumulated during a classified run."""

    both_miss: int = 0
    spec_pollute: int = 0
    spec_prefetch: int = 0
    wrong_path: int = 0
    optimistic_fills: int = 0
    oracle_fills: int = 0

    @property
    def optimistic_misses(self) -> int:
        """Total Optimistic misses (right path + wrong path)."""
        return self.both_miss + self.spec_pollute + self.wrong_path

    @property
    def oracle_misses(self) -> int:
        """Total Oracle misses (right path only)."""
        return self.both_miss + self.spec_prefetch

    @property
    def traffic_ratio(self) -> float:
        """Optimistic memory accesses / Oracle memory accesses."""
        if self.oracle_fills == 0:
            return 0.0 if self.optimistic_fills == 0 else float("inf")
        return self.optimistic_fills / self.oracle_fills


@dataclass(frozen=True, slots=True)
class MissClassification:
    """Table 4 row: per-instruction percentages plus the traffic ratio."""

    program: str
    both_miss: float
    spec_pollute: float
    spec_prefetch: float
    wrong_path: float
    traffic_ratio: float

    @property
    def optimistic_miss_ratio(self) -> float:
        """Overall Optimistic miss ratio (BM + SPo + WP), percent."""
        return self.both_miss + self.spec_pollute + self.wrong_path

    @property
    def oracle_miss_ratio(self) -> float:
        """Overall Oracle miss ratio (BM + SPr), percent."""
        return self.both_miss + self.spec_prefetch


class MissClassifier:
    """Shadow-cache classifier driven by the Optimistic engine."""

    def __init__(self, size_bytes: int, line_size: int = 32, assoc: int = 1) -> None:
        self.shadow = InstructionCache(size_bytes, line_size=line_size, assoc=assoc)
        self.counts = MissClassCounts()

    def right_path_access(self, line: int, optimistic_hit: bool) -> None:
        """Record one right-path probe; fills the shadow on its own miss."""
        shadow_hit = self.shadow.probe(line)
        if not shadow_hit:
            self.shadow.fill(line, LineOrigin.DEMAND_RIGHT)
            self.counts.oracle_fills += 1
        if optimistic_hit and shadow_hit:
            return
        if not optimistic_hit and not shadow_hit:
            self.counts.both_miss += 1
        elif not optimistic_hit:
            self.counts.spec_pollute += 1
        else:
            self.counts.spec_prefetch += 1

    def wrong_path_miss(self) -> None:
        """Record one wrong-path miss serviced by the Optimistic cache."""
        self.counts.wrong_path += 1

    def optimistic_fill(self) -> None:
        """Record one memory access issued by the Optimistic cache."""
        self.counts.optimistic_fills += 1

    def finalize(self, program: str, n_instructions: int) -> MissClassification:
        """Convert raw counts to Table 4 percentages."""
        scale = 100.0 / n_instructions if n_instructions else 0.0
        return MissClassification(
            program=program,
            both_miss=self.counts.both_miss * scale,
            spec_pollute=self.counts.spec_pollute * scale,
            spec_prefetch=self.counts.spec_prefetch * scale,
            wrong_path=self.counts.wrong_path * scale,
            traffic_ratio=self.counts.traffic_ratio,
        )
