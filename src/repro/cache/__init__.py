"""Instruction-cache substrate.

Blocking tag-store model of the paper's I-caches (8K/32K direct-mapped,
32-byte lines; associativity available for ablations), with the
first-reference bits needed by next-line prefetching and the shadow-cache
miss classifier behind the paper's Table 4.
"""

from repro.cache.classify import (
    MissClassCounts,
    MissClassification,
    MissClassifier,
)
from repro.cache.icache import CacheStats, InstructionCache, LineOrigin
from repro.cache.l2 import SecondLevelCache

__all__ = [
    "CacheStats",
    "InstructionCache",
    "LineOrigin",
    "MissClassCounts",
    "MissClassification",
    "MissClassifier",
    "SecondLevelCache",
]
