"""A second-level cache between the I-cache and memory.

The paper evaluates fixed 5-cycle ("on-chip hierarchy of caches") and
20-cycle ("off-chip") miss penalties and concludes the best fetch policy
depends on which regime you are in.  A unified second level makes that
regime *endogenous*: an L1 miss costs the L2 hit time when the line is
L2-resident and the full memory latency otherwise, so one simulation
naturally mixes the paper's two regimes.  The ``extension_l2`` experiment
uses this to show both of the paper's recommendations emerging from a
single machine.

The L2 is a tag store only (it reuses :class:`InstructionCache`), indexed
by L1 line number; every L1 fill — demand, wrong-path, or prefetch — goes
through :meth:`access`, which also allocates into the L2 (so wrong-path
traffic pollutes the L2 as well, a second-order effect the paper could
not observe).
"""

from __future__ import annotations

from repro.cache.icache import InstructionCache, LineOrigin
from repro.errors import ConfigError


class SecondLevelCache:
    """Unified L2 tag store with fixed hit/miss service times."""

    def __init__(
        self,
        size_bytes: int,
        line_size: int = 32,
        assoc: int = 4,
        hit_cycles: int = 5,
        miss_cycles: int = 20,
    ) -> None:
        if hit_cycles < 1:
            raise ConfigError(f"L2 hit time must be >= 1 cycle, got {hit_cycles}")
        if miss_cycles < hit_cycles:
            raise ConfigError(
                f"memory latency ({miss_cycles}) must be >= the L2 hit "
                f"time ({hit_cycles})"
            )
        self._tags = InstructionCache(size_bytes, line_size=line_size, assoc=assoc)
        self.hit_cycles = hit_cycles
        self.miss_cycles = miss_cycles
        self.hits = 0
        self.misses = 0

    @property
    def size_bytes(self) -> int:
        """L2 capacity in bytes."""
        return self._tags.size_bytes

    def access(self, line: int) -> int:
        """Service one L1 fill request; returns the latency in cycles.

        A miss allocates the line (fetched from memory into both levels).
        """
        if self._tags.probe(line):
            self.hits += 1
            return self.hit_cycles
        self._tags.fill(line, LineOrigin.DEMAND_RIGHT)
        self.misses += 1
        return self.miss_cycles

    def contains(self, line: int) -> bool:
        """Tag check without statistics or allocation."""
        return self._tags.contains(line)

    @property
    def hit_rate(self) -> float:
        """L2 hits per L2 access."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        """Clear hit/miss counters (keeps contents; warmup boundary)."""
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"SecondLevelCache(size={self.size_bytes}, "
            f"hit={self.hit_cycles}cyc, miss={self.miss_cycles}cyc)"
        )
