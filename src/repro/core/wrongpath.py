"""Static wrong-path enumeration.

When the front end goes down a wrong path (mispredict or misfetch), the
addresses it fetches are determined by the *static* code image plus the
*current* predictor state: at each control transfer on the wrong path the
machine follows its own (speculative, read-only) prediction.

:func:`iter_wrong_path_runs` enumerates the straight-line ``(pc, n)``
segments such a walk touches; :func:`iter_lines_from_runs` splits any
segment sequence at cache-line boundaries; and
:func:`iter_wrong_path_lines` composes the two, leaving all timing/stall
decisions to the engine.  The split keeps the walker purely functional
and unit-testable, and lets prediction-stream replay
(:mod:`repro.branch.stream`) record walks once in line-size-independent
form and re-split them for each swept cache geometry.

Modelling notes (see DESIGN.md §4):

* wrong-path predictor probes use :meth:`BranchUnit.peek_*` so they cannot
  perturb predictor state (keeps runs comparable across policies);
* a direct transfer's static target is followed as soon as the transfer is
  reached (the real machine would only redirect at decode on a BTB miss;
  within a <= 4-cycle window the difference is second-order);
* dynamic-target transfers (returns, indirect calls) follow the BTB target
  when present, otherwise the walk continues sequentially (exactly what
  pre-decode hardware does);
* leaving the code image ends the walk.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.branch.unit import BranchUnit
from repro.isa import INSTRUCTION_SIZE, InstrKind
from repro.program.image import CodeImage

_COND = int(InstrKind.COND_BRANCH)
_JUMP = int(InstrKind.JUMP)
_CALL = int(InstrKind.CALL)
_RETURN = int(InstrKind.RETURN)
_ICALL = int(InstrKind.INDIRECT_CALL)


def iter_wrong_path_runs(
    image: CodeImage,
    unit: BranchUnit,
    start_pc: int,
    max_instructions: int,
) -> Iterator[tuple[int, int]]:
    """Yield ``(start_addr, n_instructions)`` straight-line wrong-path runs.

    The walk starts at *start_pc* and fetches at most *max_instructions*
    instructions; each yielded run ends at a control transfer (inclusive)
    or at the instruction budget.  Runs are independent of any cache
    geometry — split them with :func:`iter_lines_from_runs`.
    """
    if max_instructions <= 0:
        return
    base = image.base
    n_image = image.n_instructions
    kinds = image.kinds_list
    targets = image.targets_list
    next_ctrl = image.next_ctrl_list

    pc = start_pc
    remaining = max_instructions
    while remaining > 0:
        offset = pc - base
        if offset < 0 or offset % INSTRUCTION_SIZE:
            return
        idx = offset // INSTRUCTION_SIZE
        if idx >= n_image:
            return
        ctrl = next_ctrl[idx]
        run = (n_image if ctrl >= n_image else ctrl + 1) - idx
        take = run if run < remaining else remaining
        yield (base + idx * INSTRUCTION_SIZE, take)
        remaining -= take
        if take < run or ctrl >= n_image:
            return
        # Follow the speculative prediction at the control transfer.
        kind = kinds[ctrl]
        ctrl_addr = base + ctrl * INSTRUCTION_SIZE
        fall = ctrl_addr + INSTRUCTION_SIZE
        if kind == _COND:
            if unit.peek_direction(ctrl_addr):
                pc = targets[ctrl]
            else:
                pc = fall
        elif kind == _JUMP or kind == _CALL:
            pc = targets[ctrl]
        elif kind == _RETURN or kind == _ICALL:
            if kind == _RETURN and unit.ras is not None:
                predicted = unit.ras.peek()
            else:
                predicted = unit.peek_target(ctrl_addr)
            if predicted is None:
                predicted = unit.peek_target(ctrl_addr)
            pc = predicted if predicted is not None else fall
        else:  # pragma: no cover - images contain only the kinds above
            return


def iter_lines_from_runs(
    runs: Iterable[tuple[int, int]],
    line_size: int,
) -> Iterator[tuple[int, int]]:
    """Split ``(start_addr, n)`` runs into ``(line_number, n)`` chunks.

    Pure address arithmetic: the same recorded run sequence can be
    re-split for any swept line size.
    """
    line_shift = line_size.bit_length() - 1
    per_line = line_size // INSTRUCTION_SIZE
    for start_addr, count in runs:
        pos = start_addr // INSTRUCTION_SIZE
        left = count
        while left > 0:
            addr = pos * INSTRUCTION_SIZE
            line = addr >> line_shift
            in_line = per_line - pos % per_line
            chunk = in_line if in_line < left else left
            yield (line, chunk)
            pos += chunk
            left -= chunk


def lines_from_runs_arrays(run_pc, run_n, line_size: int):
    """Vectorized twin of :func:`iter_lines_from_runs`.

    Splits ``(start_addr, n)`` run arrays into flat ``(line, chunk)``
    probe arrays in one pass — the same address arithmetic as the
    iterator, batch form (the vector backend lowers a stream's recorded
    walks once per line size instead of re-splitting per redirect).
    Returns ``(line, chunk, run_off)`` where ``run_off[i] :
    run_off[i + 1]`` indexes run *i*'s probes.
    """
    run_pc = np.asarray(run_pc, dtype=np.int64)
    run_n = np.asarray(run_n, dtype=np.int64)
    shift = line_size.bit_length() - 1
    per_line = line_size // INSTRUCTION_SIZE
    first = run_pc >> shift
    last = (run_pc + (run_n - 1) * INSTRUCTION_SIZE) >> shift
    count = last - first + 1
    total = int(count.sum())
    run_off = np.zeros(run_pc.size + 1, dtype=np.int64)
    np.cumsum(count, out=run_off[1:])
    probe_run = np.repeat(np.arange(run_pc.size, dtype=np.int64), count)
    within = np.arange(total, dtype=np.int64) - run_off[probe_run]
    line = first[probe_run] + within
    idx0 = run_pc // INSTRUCTION_SIZE
    lo = np.maximum(line * per_line, idx0[probe_run])
    hi = np.minimum((line + 1) * per_line, idx0[probe_run] + run_n[probe_run])
    return line, hi - lo, run_off


def iter_wrong_path_lines(
    image: CodeImage,
    unit: BranchUnit,
    start_pc: int,
    max_instructions: int,
    line_size: int,
) -> Iterator[tuple[int, int]]:
    """Yield ``(line_number, n_instructions)`` runs of a wrong-path walk.

    The walk starts at *start_pc* and fetches at most *max_instructions*
    instructions, splitting each straight-line run at cache-line
    boundaries.  The caller (engine) decides how many of the yielded
    instructions actually fit in its redirect window.
    """
    yield from iter_lines_from_runs(
        iter_wrong_path_runs(image, unit, start_pc, max_instructions),
        line_size,
    )
