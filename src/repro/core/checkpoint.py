"""Checkpoint/resume journal for long sweeps.

A full-suite sweep (Table 5 scale and beyond) can run for hours; a
killed process used to discard every completed cell.  The
:class:`CheckpointJournal` fixes that: each completed
``(benchmark, config)`` cell is journalled to disk the moment it
finishes, and a restarted sweep satisfies journalled cells without
re-simulating — producing output bit-identical to an uninterrupted run
(results are pickled verbatim and validated on load).

Design mirrors :class:`~repro.core.artifacts.ArtifactCache`:

* **Versioned layout** — everything lives under
  ``<dir>/v<CHECKPOINT_FORMAT_VERSION>/``; bumping the version orphans
  old journals instead of misreading them.
* **Invalidation by construction** — every input that affects a result
  (benchmark, trace length, warmup, seed, the full ``SimConfig``) is part
  of the entry path, so a changed parameter simply misses.
* **Atomic writes** — temp file + ``os.replace``; a sweep killed
  mid-write leaves no torn entry.
* **Corruption = miss** — an unreadable or mismatched entry is
  re-simulated, never trusted and never fatal.

A disabled journal (``CheckpointJournal(None)``) is a no-op passthrough,
so the runners never branch on configuration.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import tempfile
from dataclasses import asdict
from pathlib import Path

from repro.config import SimConfig
from repro.core.results import SimulationResult
from repro.errors import CheckpointError

#: On-disk layout version.  Bump when the entry format or key scheme
#: changes; old journals are simply never read again.
CHECKPOINT_FORMAT_VERSION = 1


def config_key(config: SimConfig) -> str:
    """A short stable digest of every field of *config*.

    Enum fields hash by their ``value`` so the key survives re-imports;
    two configs collide only if every field is equal.
    """
    items = []
    for name, value in sorted(asdict(config).items()):
        value = getattr(value, "value", value)
        items.append(f"{name}={value!r}")
    digest = hashlib.sha256(";".join(items).encode("utf-8")).hexdigest()
    return digest[:16]


class CheckpointJournal:
    """Append-only journal of completed sweep cells.

    Safe to share between concurrent processes and across sessions.
    Concurrent writers of the *same* cell are **last-write-wins by
    construction**: every :meth:`store` writes a complete payload to a
    private temp file and publishes it with a single atomic
    ``os.replace``, so readers always see exactly one writer's entry in
    full — never a torn interleaving of two.  Since a cell's result is a
    pure function of its key, any winner is the right answer; the only
    cost of the race is the duplicated simulation.  Writers that want to
    avoid even that (e.g. two sweep-service workers completing the same
    digest) can elect a single owner up front with :meth:`claim`.
    """

    def __init__(self, directory: str | os.PathLike[str] | None) -> None:
        self.root: Path | None = None if directory is None else Path(directory)

    @property
    def enabled(self) -> bool:
        """True when a journal directory was configured."""
        return self.root is not None

    # -- keying --------------------------------------------------------------

    def entry_path(
        self,
        benchmark: str,
        config: SimConfig,
        trace_length: int,
        warmup: int,
        seed: int,
    ) -> Path:
        """File that holds (or will hold) one cell's result."""
        if self.root is None:
            raise CheckpointError("checkpoint journal is disabled (no directory)")
        if not benchmark or "/" in benchmark or benchmark.startswith("."):
            raise CheckpointError(f"unsafe benchmark name {benchmark!r}")
        key = f"t{trace_length}-w{warmup}-s{seed}-c{config_key(config)}"
        return (
            self.root
            / f"v{CHECKPOINT_FORMAT_VERSION}"
            / benchmark
            / f"{key}.pkl"
        )

    # -- concurrency ---------------------------------------------------------

    def claim(
        self,
        benchmark: str,
        config: SimConfig,
        trace_length: int,
        warmup: int,
        seed: int,
    ) -> bool:
        """Atomically claim one cell for this writer (``O_EXCL`` style).

        The first caller per cell gets ``True`` and should simulate and
        :meth:`store`; later callers get ``False`` and should wait for
        (or poll) the winner's entry instead of duplicating the work.
        Claims are advisory — :meth:`store` never requires one — and
        they fail *open*: with the journal disabled, or when the claim
        marker cannot be created for OS-level reasons, the caller is
        told to proceed (the worst outcome is the same duplicated
        simulation the journal always tolerated).
        """
        if self.root is None:
            return True
        path = self.entry_path(benchmark, config, trace_length, warmup, seed)
        marker = path.with_suffix(".claim")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return True
        os.close(fd)
        return True

    # -- lookup --------------------------------------------------------------

    def load(
        self,
        benchmark: str,
        config: SimConfig,
        trace_length: int,
        warmup: int,
        seed: int,
    ) -> SimulationResult | None:
        """The journalled result for one cell, or ``None`` on any miss.

        Entries that fail to unpickle, or whose recorded identity does
        not match the request, are treated as misses: correctness never
        depends on journal contents.
        """
        if self.root is None:
            return None
        path = self.entry_path(benchmark, config, trace_length, warmup, seed)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            return None
        if not isinstance(payload, dict) or payload.get("version") != (
            CHECKPOINT_FORMAT_VERSION
        ):
            return None
        result = payload.get("result")
        if not isinstance(result, SimulationResult):
            return None
        try:
            if result.program != benchmark or payload.get("config") != config:
                return None
        except AttributeError:
            # A pickled SimConfig from an older revision may lack newly
            # added slots; its __eq__ then raises instead of comparing.
            # Such an entry can never match the running config: miss.
            return None
        return result

    # -- store ---------------------------------------------------------------

    def store(
        self,
        benchmark: str,
        config: SimConfig,
        trace_length: int,
        warmup: int,
        seed: int,
        result: SimulationResult,
    ) -> None:
        """Journal one completed cell (atomic; failures are non-fatal).

        A journal that cannot be written (full disk, read-only dir) must
        not abort the sweep it exists to protect — the cell is simply not
        resumable.
        """
        if self.root is None:
            return
        path = self.entry_path(benchmark, config, trace_length, warmup, seed)
        payload = pickle.dumps(
            {
                "version": CHECKPOINT_FORMAT_VERSION,
                "config": config,
                "result": result,
            },
            protocol=4,
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        except OSError:
            return

    # -- introspection -------------------------------------------------------

    def completed(self) -> int:
        """Number of journalled cells (across all benchmarks)."""
        if self.root is None:
            return 0
        base = self.root / f"v{CHECKPOINT_FORMAT_VERSION}"
        if not base.is_dir():
            return 0
        return sum(1 for _ in sorted(base.glob("*/*.pkl")))
