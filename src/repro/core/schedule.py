"""Per-interval fetch-policy schedules: the ``PolicySchedule`` seam.

The paper treats the fetch policy as a property of the machine; PR 7
makes it a per-interval *input*.  A schedule answers one question — which
policy runs during interval ``k`` — and optionally learns from each
finished interval's :class:`~repro.core.results.IntervalStats`:

* :class:`StaticSchedule`     — one policy for the whole run (the paper's
  regime; bit-identical to the pre-seam engine by construction);
* :class:`ScriptSchedule`     — a fixed per-interval policy sequence;
* :class:`TournamentController` — EWMA shadow-ISPI estimates per
  candidate, switching at interval boundaries with hysteresis;
* :class:`OracleSchedule`     — marker for the per-interval upper bound
  (every interval re-simulated under each candidate from the same warm
  state; see :mod:`repro.core.adaptive`).

Static and script schedules run directly inside
:meth:`FetchEngine.run <repro.core.engine.FetchEngine.run>`; the
controller schedules set ``driver_required`` and are driven by
:class:`~repro.core.adaptive.AdaptiveEngine`, which can fork warm engine
state for shadow runs.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.config import FetchPolicy, SimConfig
from repro.errors import SimulationError


def interval_spans(records: Sequence, interval: int) -> list[tuple[int, int]]:
    """Cut *records* into spans of at least *interval* instructions.

    Returns ``[(lo, hi), ...]`` record-index ranges.  Cuts happen at
    block boundaries (the engine consumes whole trace records), so a span
    holds the smallest prefix of blocks reaching *interval* instructions;
    the final span keeps whatever remains.  The cut points depend only on
    the trace, never on policy or cache state — every schedule (and every
    shadow run) sees identical interval boundaries.
    """
    if interval <= 0:
        raise SimulationError(f"interval must be positive: {interval}")
    spans: list[tuple[int, int]] = []
    lo = 0
    acc = 0
    for i, record in enumerate(records):
        acc += record.length
        if acc >= interval:
            spans.append((lo, i + 1))
            lo = i + 1
            acc = 0
    if lo < len(records):
        spans.append((lo, len(records)))
    return spans


class PolicySchedule:
    """Base schedule: which fetch policy runs during interval *k*."""

    #: True when the schedule can only be honoured by a driver that forks
    #: warm engine state per interval (tournament shadow runs, oracle
    #: re-simulation).  ``FetchEngine.run`` refuses such schedules; they
    #: go through :class:`~repro.core.adaptive.AdaptiveEngine`.
    driver_required = False

    def policy_for(self, index: int) -> FetchPolicy:
        """The policy for interval *index*."""
        raise NotImplementedError

    def observe(self, stats) -> None:
        """Feed one finished interval's :class:`IntervalStats` (no-op by
        default; the tournament controller learns from its driver via
        :meth:`TournamentController.update` instead)."""


class StaticSchedule(PolicySchedule):
    """One policy for the whole run."""

    __slots__ = ("policy",)

    def __init__(self, policy: FetchPolicy) -> None:
        self.policy = policy

    def policy_for(self, index: int) -> FetchPolicy:
        return self.policy


class ScriptSchedule(PolicySchedule):
    """A fixed per-interval sequence; the last entry repeats forever."""

    __slots__ = ("script",)

    def __init__(self, script: Sequence[FetchPolicy]) -> None:
        if not script:
            raise SimulationError("policy script must be non-empty")
        self.script = tuple(script)

    def policy_for(self, index: int) -> FetchPolicy:
        if index < len(self.script):
            return self.script[index]
        return self.script[-1]


class TournamentController(PolicySchedule):
    """Shadow-estimator meta-controller with hysteresis.

    After every interval the driver hands :meth:`update` one ISPI
    estimate per candidate — measured for the incumbent, shadow-simulated
    for the rest.  Estimates are smoothed with an EWMA over
    ``tournament_history`` intervals; a challenger must beat the
    incumbent's estimate by at least ``tournament_margin`` (relative) on
    ``tournament_hysteresis`` *consecutive* boundaries before the
    controller switches.  Ties and near-ties keep the incumbent — the
    controller pays a switch only for a sustained, material win.
    """

    driver_required = True

    __slots__ = (
        "candidates",
        "incumbent",
        "hysteresis",
        "margin",
        "switches",
        "_alpha",
        "_estimates",
        "_streak_policy",
        "_streak",
    )

    def __init__(
        self,
        candidates: Sequence[FetchPolicy],
        incumbent: FetchPolicy,
        history: int = 4,
        hysteresis: int = 2,
        margin: float = 0.02,
    ) -> None:
        if not candidates:
            raise SimulationError("tournament needs at least one candidate")
        self.candidates = tuple(candidates)
        self.incumbent = (
            incumbent if incumbent in self.candidates else self.candidates[0]
        )
        self.hysteresis = hysteresis
        self.margin = margin
        self.switches = 0
        # Standard EWMA span weighting: ~`history` intervals of memory.
        self._alpha = 2.0 / (history + 1.0)
        self._estimates: dict[FetchPolicy, float] = {}
        self._streak_policy: FetchPolicy | None = None
        self._streak = 0

    def policy_for(self, index: int) -> FetchPolicy:
        return self.incumbent

    def update(self, estimates: dict[FetchPolicy, float]) -> FetchPolicy:
        """Fold one interval's per-candidate ISPI estimates in; return the
        policy for the next interval."""
        alpha = self._alpha
        smoothed = self._estimates
        for policy in self.candidates:
            value = estimates.get(policy)
            if value is None:
                continue
            prev = smoothed.get(policy)
            smoothed[policy] = (
                value if prev is None else prev + alpha * (value - prev)
            )
        incumbent_est = smoothed.get(self.incumbent)
        if incumbent_est is None:
            return self.incumbent
        challenger: FetchPolicy | None = None
        challenger_est = incumbent_est
        for policy in self.candidates:
            if policy is self.incumbent:
                continue
            est = smoothed.get(policy)
            if est is not None and est < challenger_est:
                challenger, challenger_est = policy, est
        threshold = incumbent_est * (1.0 - self.margin)
        if challenger is None or challenger_est > threshold:
            self._streak_policy, self._streak = None, 0
            return self.incumbent
        if challenger is self._streak_policy:
            self._streak += 1
        else:
            self._streak_policy, self._streak = challenger, 1
        if self._streak >= self.hysteresis:
            self.incumbent = challenger
            self.switches += 1
            self._streak_policy, self._streak = None, 0
        return self.incumbent


class OracleSchedule(PolicySchedule):
    """Marker schedule for the per-interval oracle upper bound.

    The adaptive driver re-simulates each interval under every candidate
    from the same warm state and keeps the best; the schedule itself only
    names the candidate set and the first interval's policy.
    """

    driver_required = True

    __slots__ = ("candidates", "initial")

    def __init__(
        self, candidates: Sequence[FetchPolicy], initial: FetchPolicy
    ) -> None:
        if not candidates:
            raise SimulationError("oracle schedule needs candidates")
        self.candidates = tuple(candidates)
        self.initial = (
            initial if initial in self.candidates else self.candidates[0]
        )

    def policy_for(self, index: int) -> FetchPolicy:
        return self.initial


def build_schedule(config: SimConfig) -> PolicySchedule:
    """Construct the schedule described by *config* (the seam the engine
    reads its per-interval policy through — SIM012)."""
    kind = config.policy_schedule
    if kind == "static":
        return StaticSchedule(config.policy)
    if kind == "script":
        return ScriptSchedule(config.policy_script)
    if kind == "tournament":
        return TournamentController(
            config.adaptive_policies,
            config.policy,
            history=config.tournament_history,
            hysteresis=config.tournament_hysteresis,
            margin=config.tournament_margin,
        )
    if kind == "oracle":
        return OracleSchedule(config.adaptive_policies, config.policy)
    raise SimulationError(f"unknown policy_schedule {kind!r}")
