"""High-level simulation runner with workload/trace caching.

Experiments sweep many configurations over the same benchmarks; building a
program and generating its trace dominates setup cost, so the runner memo-
izes both per ``(workload, n_instructions, seed)`` and replays the cached
trace through fresh engines.

The runner also carries the serial half of the fault-tolerant sweep
layer (the parallel half lives in :mod:`repro.core.parallel`): per-cell
retry with bounded deterministic exponential backoff, a signal-based
watchdog (``job_timeout``), graceful degradation (``on_error="skip"``
turns failed cells into :class:`MissingResult` placeholders recorded in
:attr:`failures`), checkpoint/resume through a
:class:`~repro.core.checkpoint.CheckpointJournal`, and deterministic
fault injection for chaos testing (see :mod:`repro.core.faults`).
Incidents publish ``sweep.*`` / ``checkpoint.*`` counters and
:class:`~repro.obs.events.SweepIncident` events through the observer.
"""

from __future__ import annotations

import contextlib
import time
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, replace

from repro.branch.stream import (
    PredictionStream,
    build_stream,
    replay_eligible,
    stream_digest,
)
from repro.config import ALL_POLICIES, FetchPolicy, SimConfig
from repro.core.artifacts import ArtifactCache
from repro.core.checkpoint import CheckpointJournal
from repro.core.engine import simulate
from repro.core.faults import FaultPlan, corrupt_entry, is_transient
from repro.core.results import MissingResult, SimulationResult, SweepFailure
from repro.errors import ExperimentError, JobTimeoutError
from repro.obs.events import StreamBuild, SweepIncident
from repro.obs.observer import Observer
from repro.program.program import Program
from repro.trace.event import Trace
from repro.trace.generator import generate_trace

#: Counter name per incident kind (see ``docs/robustness.md``).
_INCIDENT_COUNTERS = {
    "retry": "sweep.retries",
    "timeout": "sweep.timeouts",
    "skip": "sweep.skipped_cells",
    "checkpoint_hit": "checkpoint.hits",
    "cache_store_failure": "artifacts.store_failures",
    "fault_injected": "faults.injected",
}

#: Default dynamic trace length per benchmark.  The paper traces full runs
#: (10^7..10^9 instructions); intensive metrics converge far earlier for
#: our synthetic footprints (see DESIGN.md §2).
DEFAULT_TRACE_LENGTH = 200_000

#: Default measurement warmup: simulated but not measured, so compulsory
#: misses and predictor training do not pollute steady-state metrics.
DEFAULT_WARMUP = 50_000


@dataclass(frozen=True, slots=True)
class WorkloadRun:
    """A prepared (program, trace) pair ready to simulate."""

    program: Program
    trace: Trace


class SimulationRunner:
    """Caches programs/traces and fans configurations out over them."""

    def __init__(
        self,
        trace_length: int = DEFAULT_TRACE_LENGTH,
        seed: int = 1995,
        warmup: int | None = None,
        observer: Observer | None = None,
        cache_dir: str | None = None,
        retries: int = 2,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        job_timeout: float | None = None,
        on_error: str = "raise",
        checkpoint_dir: str | None = None,
        fault_plan: FaultPlan | None = None,
        replay: str = "auto",
        engine: str = "auto",
    ) -> None:
        if trace_length < 1:
            raise ExperimentError(f"trace_length must be >= 1: {trace_length}")
        if warmup is None:
            warmup = min(DEFAULT_WARMUP, trace_length // 4)
        if not 0 <= warmup < trace_length:
            raise ExperimentError(
                f"warmup {warmup} must lie in [0, trace_length={trace_length})"
            )
        if retries < 0:
            raise ExperimentError(f"retries must be >= 0: {retries}")
        if backoff_base < 0 or backoff_cap < 0:
            raise ExperimentError("backoff must be >= 0")
        if job_timeout is not None and job_timeout <= 0:
            raise ExperimentError(f"job_timeout must be > 0: {job_timeout}")
        if on_error not in ("raise", "skip"):
            raise ExperimentError(
                f"on_error must be 'raise' or 'skip': {on_error!r}"
            )
        if replay not in ("auto", "off"):
            raise ExperimentError(
                f"replay must be 'auto' or 'off': {replay!r}"
            )
        if engine not in ("auto", "event", "vector"):
            raise ExperimentError(
                f"engine must be 'auto', 'event' or 'vector': {engine!r}"
            )
        self.trace_length = trace_length
        self.seed = seed
        self.warmup = warmup
        #: Optional observability bundle; shared by every simulation this
        #: runner performs (metrics accumulate across runs).
        self.observer = observer
        #: Optional persistent artifact cache shared across processes
        #: (``None`` disables it; see ``repro.core.artifacts``).
        self.artifacts = ArtifactCache(cache_dir)
        #: Transient-failure retry budget per cell, with deterministic
        #: exponential backoff ``min(base * 2**(n-1), cap)`` seconds.
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: Per-cell watchdog (seconds); enforced via ``SIGALRM`` where
        #: available (POSIX main thread), otherwise ignored.
        self.job_timeout = job_timeout
        #: ``"raise"`` aborts on a failed cell; ``"skip"`` records it in
        #: :attr:`failures` and returns a :class:`MissingResult`.
        self.on_error = on_error
        #: Crash-resumable journal of completed cells (no-op when
        #: ``checkpoint_dir`` is ``None``; see ``repro.core.checkpoint``).
        self.checkpoint = CheckpointJournal(checkpoint_dir)
        #: Deterministic fault-injection plan (chaos testing only).
        self.fault_plan = fault_plan
        #: Prediction-stream replay: ``"auto"`` replays a recorded stream
        #: for every replay-eligible cell (architectural schedule or
        #: perfect cache; see ``repro.branch.stream``), ``"off"`` always
        #: runs the live predictor.
        self.replay = replay
        #: Engine backend override applied to every cell: ``"auto"``
        #: leaves ``config.engine_backend`` untouched (each cell decides
        #: through the ``build_engine`` seam), ``"event"`` / ``"vector"``
        #: force the corresponding backend (ineligible cells still fall
        #: back to the event loop; see ``repro.core.vector``).
        self.engine = engine
        #: Structured failure report (``on_error="skip"`` cells).
        self.failures: list[SweepFailure] = []
        # In-memory memos.  The keys repeat the runner attributes each
        # artifact actually depends on, so mutating ``runner.seed`` or
        # ``runner.trace_length`` between runs can never replay a stale
        # program or trace (it used to: the old keys were the bare name).
        self._programs: dict[tuple[str, int], Program] = {}
        self._traces: dict[tuple[str, int, int], Trace] = {}
        self._streams: dict[tuple[str, int, int, str], PredictionStream] = {}

    def _phase(self, name: str):
        """Profiling scope for *name* (no-op without an observer/profiler)."""
        if self.observer is not None and self.observer.profiler is not None:
            return self.observer.profiler.phase(name, observer=self.observer)
        return contextlib.nullcontext()

    # -- fault-tolerance plumbing -----------------------------------------------

    def _incident(
        self, kind: str, benchmark: str, detail: str = "", attempt: int = 0
    ) -> None:
        """Publish one sweep incident as a counter (+ event when traced)."""
        if self.observer is None:
            return
        self.observer.registry.inc(_INCIDENT_COUNTERS[kind])
        if self.observer.events_enabled:
            self.observer.sink.emit(
                SweepIncident(
                    t=0, benchmark=benchmark, kind=kind,
                    detail=detail, attempt=attempt,
                )
            )

    def _fire(self, phase: str, name: str) -> None:
        """Consult the fault plan at one phase boundary (no-op without one)."""
        if self.fault_plan is None:
            return
        spec = self.fault_plan.fire(phase, name)
        if spec is None:
            return
        self._incident("fault_injected", name, detail=f"{spec.phase}:{spec.kind}")
        if (
            spec.kind == "corrupt"
            and phase == "cache_load"
            and self.artifacts.enabled
        ):
            corrupt_entry(
                self.artifacts.entry_dir(name, self.trace_length, self.seed)
            )

    @contextlib.contextmanager
    def _watchdog(self, name: str) -> Iterator[None]:
        """Raise :class:`JobTimeoutError` if the body outlives ``job_timeout``.

        Signal-based (``SIGALRM``), so it works even while the pure-Python
        engine is busy; silently inactive off the POSIX main thread.  Any
        outer alarm (e.g. a test-harness deadline) is restored with its
        remaining time on exit.
        """
        if self.job_timeout is None:
            yield
            return
        import signal
        import threading

        if (
            not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()
        ):
            yield
            return

        def _on_alarm(signum, frame):
            raise JobTimeoutError(
                f"benchmark {name!r} exceeded job_timeout="
                f"{self.job_timeout}s"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        started = time.monotonic()
        old_delay, _ = signal.setitimer(signal.ITIMER_REAL, self.job_timeout)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
            if old_delay:
                remaining = old_delay - (time.monotonic() - started)
                signal.setitimer(signal.ITIMER_REAL, max(remaining, 0.001))

    # -- workload preparation ---------------------------------------------------

    def program(self, name: str) -> Program:
        """The (cached) synthetic program for benchmark *name*."""
        key = (name, self.seed)
        if key not in self._programs:
            from repro.program.workloads import build_workload

            self._fire("build", name)
            with self._phase("build_program"):
                self._programs[key] = build_workload(name, seed=self.seed)
        return self._programs[key]

    def trace(self, name: str) -> Trace:
        """The (cached) dynamic trace for benchmark *name*.

        With an artifact cache configured, a persisted (program, trace)
        pair satisfies the request without building anything; a miss
        builds as before and persists the pair for the next process.
        """
        key = (name, self.trace_length, self.seed)
        if key not in self._traces:
            if self.artifacts.enabled:
                self._fire("cache_load", name)
                with self._phase("artifact_cache"):
                    pair = self.artifacts.load(name, self.trace_length, self.seed)
                if pair is not None:
                    self._programs[(name, self.seed)], self._traces[key] = pair
                    return self._traces[key]
            program = self.program(name)
            self._fire("generate", name)
            with self._phase("generate_trace"):
                self._traces[key] = generate_trace(
                    program, self.trace_length, seed=self.seed
                )
            if self.artifacts.enabled:
                self._fire("cache_store", name)
                before = self.artifacts.store_failures
                self.artifacts.store(
                    name, self.trace_length, self.seed, program, self._traces[key]
                )
                if self.artifacts.store_failures > before:
                    self._incident(
                        "cache_store_failure", name,
                        detail="artifact cache disabled for this run",
                    )
        return self._traces[key]

    def _effective_config(self, config: SimConfig) -> SimConfig:
        """*config* with the runner's engine-backend override applied."""
        if self.engine == "auto" or config.engine_backend == self.engine:
            return config
        if self.engine == "vector" and (
            config.policy_schedule != "static"
            or config.adaptive_interval is not None
        ):
            # SimConfig rejects vector + per-interval scheduling outright;
            # a sweep-wide --engine vector request leaves adaptive cells
            # on the event loop instead of invalidating their configs.
            return config
        return replace(config, engine_backend=self.engine)

    def prepared(self, name: str) -> WorkloadRun:
        """Program and trace for *name*, building them if needed."""
        # Trace first: an artifact-cache hit satisfies the program memo
        # too, so program() must not run (and rebuild) before it.
        trace = self.trace(name)
        return WorkloadRun(program=self.program(name), trace=trace)

    def _stream_for(self, name: str, config: SimConfig) -> PredictionStream | None:
        """The prediction stream for one replay-eligible cell, or ``None``.

        Resolution order: in-memory memo, artifact cache (counter
        ``stream.cache_hits``), live build (counter ``stream.builds``,
        :class:`~repro.obs.events.StreamBuild` event) — built streams are
        persisted so the next process loads instead of rebuilding.
        Returns ``None`` when replay is off or the config is not
        replay-eligible (timing schedule with a real cache).
        """
        if self.replay == "off" or not replay_eligible(config):
            return None
        digest = stream_digest(config)
        key = (name, self.trace_length, self.seed, digest)
        stream = self._streams.get(key)
        if stream is not None:
            return stream
        source = "cache"
        if self.artifacts.enabled:
            with self._phase("stream_cache"):
                stream = self.artifacts.load_stream(
                    name, self.trace_length, self.seed, digest
                )
            if stream is not None and self.observer is not None:
                self.observer.registry.inc("stream.cache_hits")
        if stream is None:
            source = "build"
            prepared = self.prepared(name)
            with self._phase("build_stream"):
                stream = build_stream(prepared.program, prepared.trace, config)
            if self.observer is not None:
                self.observer.registry.inc("stream.builds")
            if self.artifacts.enabled:
                self.artifacts.store_stream(
                    name, self.trace_length, self.seed, stream
                )
        if self.observer is not None and self.observer.events_enabled:
            self.observer.sink.emit(
                StreamBuild(
                    t=0,
                    benchmark=name,
                    records=stream.n_records,
                    source=source,
                    digest=digest,
                )
            )
        self._streams[key] = stream
        return stream

    # -- simulation -------------------------------------------------------------

    def run(self, name: str, config: SimConfig) -> SimulationResult:
        """Simulate benchmark *name* under *config* (with warmup).

        The fault-tolerant cell executor: a journalled result satisfies
        the cell outright (checkpoint/resume); otherwise the cell runs
        under the watchdog with up to ``retries`` transient re-attempts,
        and a final failure either raises (``on_error="raise"``) or
        degrades to a :class:`MissingResult` recorded in
        :attr:`failures` (``on_error="skip"``).

        Faults fire at phase boundaries only (never mid-simulation), so
        a retried attempt re-publishes nothing twice and recovered runs
        stay bit-identical to undisturbed ones.
        """
        config = self._effective_config(config)
        if self.checkpoint.enabled:
            hit = self.checkpoint.load(
                name, config, self.trace_length, self.warmup, self.seed
            )
            if hit is not None:
                self._incident("checkpoint_hit", name)
                return hit
        attempts = 0
        while True:
            try:
                with self._watchdog(name):
                    prepared = self.prepared(name)
                    stream = self._stream_for(name, config)
                    if stream is not None and self.observer is not None:
                        self.observer.registry.inc("stream.replays")
                    self._fire("simulate", name)
                    with self._phase("simulate"):
                        result = simulate(
                            prepared.program,
                            prepared.trace,
                            config,
                            warmup=self.warmup,
                            observer=self.observer,
                            stream=stream,
                        )
                break
            except Exception as exc:
                attempts += 1
                transient = is_transient(exc)
                if transient and attempts <= self.retries:
                    if isinstance(exc, JobTimeoutError):
                        self._incident(
                            "timeout", name, detail=str(exc), attempt=attempts
                        )
                    delay = min(
                        self.backoff_base * (2 ** (attempts - 1)),
                        self.backoff_cap,
                    )
                    self._incident(
                        "retry", name,
                        detail=f"{type(exc).__name__}: {exc}",
                        attempt=attempts,
                    )
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if self.on_error == "skip":
                    self.failures.append(
                        SweepFailure(
                            benchmark=name,
                            error_type=type(exc).__name__,
                            message=str(exc),
                            attempts=attempts,
                            transient=transient,
                        )
                    )
                    self._incident(
                        "skip", name,
                        detail=f"{type(exc).__name__}: {exc}",
                        attempt=attempts,
                    )
                    return MissingResult(program=name, config=config)
                raise
        if self.checkpoint.enabled:
            self.checkpoint.store(
                name, config, self.trace_length, self.warmup, self.seed, result
            )
            if self.observer is not None:
                self.observer.registry.inc("checkpoint.stores")
        return result

    def run_policies(
        self,
        name: str,
        config: SimConfig,
        policies: Sequence[FetchPolicy] = ALL_POLICIES,
    ) -> dict[FetchPolicy, SimulationResult]:
        """Simulate *name* under each policy (same base config)."""
        return {
            policy: self.run(name, config.with_policy(policy))
            for policy in policies
        }

    def run_suite(
        self,
        names: Iterable[str],
        config: SimConfig,
    ) -> dict[str, SimulationResult]:
        """Simulate each benchmark in *names* under *config*."""
        return {name: self.run(name, config) for name in names}

    def run_matrix(
        self,
        names: Iterable[str],
        config: SimConfig,
        policies: Sequence[FetchPolicy] = ALL_POLICIES,
    ) -> dict[str, dict[FetchPolicy, SimulationResult]]:
        """The full benchmark x policy matrix for one base config."""
        return {name: self.run_policies(name, config, policies) for name in names}
