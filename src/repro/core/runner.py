"""High-level simulation runner with workload/trace caching.

Experiments sweep many configurations over the same benchmarks; building a
program and generating its trace dominates setup cost, so the runner memo-
izes both per ``(workload, n_instructions, seed)`` and replays the cached
trace through fresh engines.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.config import ALL_POLICIES, FetchPolicy, SimConfig
from repro.core.artifacts import ArtifactCache
from repro.core.engine import simulate
from repro.core.results import SimulationResult
from repro.errors import ExperimentError
from repro.obs.observer import Observer
from repro.program.program import Program
from repro.trace.event import Trace
from repro.trace.generator import generate_trace

#: Default dynamic trace length per benchmark.  The paper traces full runs
#: (10^7..10^9 instructions); intensive metrics converge far earlier for
#: our synthetic footprints (see DESIGN.md §2).
DEFAULT_TRACE_LENGTH = 200_000

#: Default measurement warmup: simulated but not measured, so compulsory
#: misses and predictor training do not pollute steady-state metrics.
DEFAULT_WARMUP = 50_000


@dataclass(frozen=True, slots=True)
class WorkloadRun:
    """A prepared (program, trace) pair ready to simulate."""

    program: Program
    trace: Trace


class SimulationRunner:
    """Caches programs/traces and fans configurations out over them."""

    def __init__(
        self,
        trace_length: int = DEFAULT_TRACE_LENGTH,
        seed: int = 1995,
        warmup: int | None = None,
        observer: Observer | None = None,
        cache_dir: str | None = None,
    ) -> None:
        if trace_length < 1:
            raise ExperimentError(f"trace_length must be >= 1: {trace_length}")
        if warmup is None:
            warmup = min(DEFAULT_WARMUP, trace_length // 4)
        if not 0 <= warmup < trace_length:
            raise ExperimentError(
                f"warmup {warmup} must lie in [0, trace_length={trace_length})"
            )
        self.trace_length = trace_length
        self.seed = seed
        self.warmup = warmup
        #: Optional observability bundle; shared by every simulation this
        #: runner performs (metrics accumulate across runs).
        self.observer = observer
        #: Optional persistent artifact cache shared across processes
        #: (``None`` disables it; see ``repro.core.artifacts``).
        self.artifacts = ArtifactCache(cache_dir)
        # In-memory memos.  The keys repeat the runner attributes each
        # artifact actually depends on, so mutating ``runner.seed`` or
        # ``runner.trace_length`` between runs can never replay a stale
        # program or trace (it used to: the old keys were the bare name).
        self._programs: dict[tuple[str, int], Program] = {}
        self._traces: dict[tuple[str, int, int], Trace] = {}

    def _phase(self, name: str):
        """Profiling scope for *name* (no-op without an observer/profiler)."""
        if self.observer is not None and self.observer.profiler is not None:
            return self.observer.profiler.phase(name, observer=self.observer)
        return contextlib.nullcontext()

    # -- workload preparation ---------------------------------------------------

    def program(self, name: str) -> Program:
        """The (cached) synthetic program for benchmark *name*."""
        key = (name, self.seed)
        if key not in self._programs:
            from repro.program.workloads import build_workload

            with self._phase("build_program"):
                self._programs[key] = build_workload(name, seed=self.seed)
        return self._programs[key]

    def trace(self, name: str) -> Trace:
        """The (cached) dynamic trace for benchmark *name*.

        With an artifact cache configured, a persisted (program, trace)
        pair satisfies the request without building anything; a miss
        builds as before and persists the pair for the next process.
        """
        key = (name, self.trace_length, self.seed)
        if key not in self._traces:
            if self.artifacts.enabled:
                with self._phase("artifact_cache"):
                    pair = self.artifacts.load(name, self.trace_length, self.seed)
                if pair is not None:
                    self._programs[(name, self.seed)], self._traces[key] = pair
                    return self._traces[key]
            program = self.program(name)
            with self._phase("generate_trace"):
                self._traces[key] = generate_trace(
                    program, self.trace_length, seed=self.seed
                )
            if self.artifacts.enabled:
                self.artifacts.store(
                    name, self.trace_length, self.seed, program, self._traces[key]
                )
        return self._traces[key]

    def prepared(self, name: str) -> WorkloadRun:
        """Program and trace for *name*, building them if needed."""
        # Trace first: an artifact-cache hit satisfies the program memo
        # too, so program() must not run (and rebuild) before it.
        trace = self.trace(name)
        return WorkloadRun(program=self.program(name), trace=trace)

    # -- simulation -------------------------------------------------------------

    def run(self, name: str, config: SimConfig) -> SimulationResult:
        """Simulate benchmark *name* under *config* (with warmup)."""
        prepared = self.prepared(name)
        with self._phase("simulate"):
            return simulate(
                prepared.program,
                prepared.trace,
                config,
                warmup=self.warmup,
                observer=self.observer,
            )

    def run_policies(
        self,
        name: str,
        config: SimConfig,
        policies: Sequence[FetchPolicy] = ALL_POLICIES,
    ) -> dict[FetchPolicy, SimulationResult]:
        """Simulate *name* under each policy (same base config)."""
        return {
            policy: self.run(name, config.with_policy(policy))
            for policy in policies
        }

    def run_suite(
        self,
        names: Iterable[str],
        config: SimConfig,
    ) -> dict[str, SimulationResult]:
        """Simulate each benchmark in *names* under *config*."""
        return {name: self.run(name, config) for name in names}

    def run_matrix(
        self,
        names: Iterable[str],
        config: SimConfig,
        policies: Sequence[FetchPolicy] = ALL_POLICIES,
    ) -> dict[str, dict[FetchPolicy, SimulationResult]]:
        """The full benchmark x policy matrix for one base config."""
        return {name: self.run_policies(name, config, policies) for name in names}
