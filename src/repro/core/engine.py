"""The speculative front-end fetch engine.

This is the paper's simulator: a cycle-approximate model of a 4-wide fetch
unit running a correct-path trace through a blocking I-cache, with branch
redirect windows during which the machine fetches down wrong paths, and
with one of the five fetch policies deciding what happens to I-cache
misses encountered there.

Time is measured in *issue slots* (1 cycle = ``issue_width`` slots).  Each
correct-path instruction consumes one slot; every stall charges its slots
to exactly one ISPI component (see :mod:`repro.core.results`).  The paper's
assumptions are kept: perfect pipelining below fetch, no data-cache
interference, no alignment losses.

The timeline of one control transfer fetched at slot ``t_br``:

====================  =====================================================
event                 slot
====================  =====================================================
decode                ``t_br + decode_latency``   (misfetch redirect point)
resolution            ``t_br + resolve_latency``  (mispredict redirect)
wrong-path window     ``[t_br + 1 + delay, t_br + 1 + penalty)``
correct-path resumes  ``t_br + 1 + penalty`` (later if a wrong-path fill
                      blocks past the window — Optimistic's wrong_icache)
====================  =====================================================
"""

from __future__ import annotations

import copy
from collections import deque

from repro.branch.unit import BranchUnit, FetchOutcome
from repro.branch.btb import BranchTargetBuffer
from repro.branch.history import GlobalHistory
from repro.branch.pht import make_pht
from repro.branch.ras import ReturnAddressStack
from repro.cache.classify import MissClassifier
from repro.cache.icache import InstructionCache, LineOrigin
from repro.cache.l2 import SecondLevelCache
from repro.config import FetchPolicy, SimConfig
from repro.core.results import (
    COMPONENTS,
    EngineCounters,
    IntervalStats,
    PenaltyAccumulator,
    SimulationResult,
)
from repro.core.schedule import build_schedule, interval_spans
from repro.core.wrongpath import iter_wrong_path_lines
from repro.errors import SimulationError
from repro.isa import INSTRUCTION_SIZE, InstrKind
from repro.memory.bus import MemoryBus
from repro.memory.pending import FillOrigin, PendingFillStation
from repro.memory.prefetcher import NextLinePrefetcher
from repro.memory.streambuffer import StreamBufferUnit
from repro.obs.events import (
    EngineFallback,
    FetchStall,
    MissService,
    PolicySwitch,
    Redirect,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer
from repro.program.program import Program
from repro.trace.event import Trace

_PLAIN = int(InstrKind.PLAIN)
_COND = int(InstrKind.COND_BRANCH)
_CALL = int(InstrKind.CALL)

#: Enum instances indexed by raw kind value, so the hot loop resolves a
#: trace record's kind without an ``InstrKind(...)`` constructor call.
_KIND_FROM_INT = tuple(InstrKind(value) for value in range(len(InstrKind)))

_CORRECT = FetchOutcome.CORRECT
_ORIGIN_RIGHT = LineOrigin.DEMAND_RIGHT
_ORIGIN_PREFETCH = LineOrigin.PREFETCH


def _resolve_noop(
    pht_index: int | None, taken: bool, pc: int | None = None
) -> None:
    """Stand-in for BranchUnit.resolve when the fetch-clock queue must
    keep gating (branch_full, force_resolve) without training the
    predictor — architectural-schedule and replay runs."""


def build_branch_unit(config: SimConfig, stream=None):
    """Construct the branch unit described by *config*.

    With a recorded :class:`~repro.branch.stream.PredictionStream`, a
    replay facade is returned instead of a live predictor — the seam
    prediction-stream replay plugs into (bit-identical results; see
    tests/core/test_stream_replay.py).
    """
    if stream is not None:
        # Deferred import: repro.branch.stream imports repro.core.wrongpath.
        from repro.branch.stream import ReplayBranchUnit

        return ReplayBranchUnit(stream, config)
    branch = config.branch
    return BranchUnit(
        btb=BranchTargetBuffer(entries=branch.btb_entries, assoc=branch.btb_assoc),
        pht=make_pht(branch.pht_kind, branch.pht_entries),
        history=GlobalHistory(branch.effective_history_bits),
        coupled=branch.coupled,
        speculative_btb_update=branch.speculative_btb_update,
        ras=ReturnAddressStack(branch.ras_depth) if branch.use_ras else None,
        misfetch_penalty_slots=config.misfetch_penalty_slots,
        mispredict_penalty_slots=config.mispredict_penalty_slots,
    )


class FetchEngine:
    """One simulation instance: program + configuration.

    With an :class:`~repro.obs.observer.Observer`, the engine emits typed
    cycle-level events into the observer's sink (when the sink is enabled)
    and publishes every component's counters into the observer's metrics
    registry at the end of the run.  Observation is strictly passive: the
    simulated timeline and all reported results are identical with or
    without it.
    """

    backend = "event"

    def __init__(
        self,
        program: Program,
        config: SimConfig,
        observer: Observer | None = None,
        stream=None,
    ) -> None:
        self.program = program
        self.config = config
        # The policy is a per-interval input read through the schedule
        # seam (SIM012): interval k runs schedule.policy_for(k).  Static
        # schedules resolve to config.policy for every interval, keeping
        # the paper's regime bit-identical.
        self.schedule = build_schedule(config)
        self.policy = self.schedule.policy_for(0)
        self.policy_switches = 0
        #: Shadow simulations run on forks of this engine (set by the
        #: adaptive driver; published under ``adaptive.shadow_runs``).
        self.shadow_runs = 0
        self.interval_log: list[IntervalStats] = []
        self._tau = 0
        if stream is not None:
            from repro.branch.stream import replay_eligible

            if not replay_eligible(config):
                raise SimulationError(
                    "prediction-stream replay requires "
                    "branch_schedule='architectural' or perfect_cache "
                    f"(config: {config.describe()})"
                )
            stream.require_compatible(program.name, config)
        self.unit = build_branch_unit(config, stream)
        self._replay = stream is not None
        # Architectural-schedule *live* runs keep predictor training on a
        # separate cache-independent clock (the tau timeline in run());
        # timing-schedule runs train on the fetch clock as always.
        self._arch_live = (
            config.branch_schedule == "architectural" and stream is None
        )
        self._timing_resolve = (
            self.unit.resolve
            if config.branch_schedule == "timing" and stream is None
            else _resolve_noop
        )
        # Unresolved branches on the architectural clock (arch-live only):
        # same tuple shape as _unresolved.
        self._arch_unresolved: deque[tuple[int, int | None, bool, int]] = deque()
        self.observer = observer
        if observer is not None:
            self._sink = observer.sink if observer.sink.enabled else None
            # Distribution samples are buffered as raw values (list.append
            # is several times cheaper than Histogram.observe) and folded
            # into the registry's histograms once, at publish time.
            self._miss_durations: list[int] | None = []
            self._redirect_penalties: list[int] | None = []
        else:
            self._sink = None
            self._miss_durations = None
            self._redirect_penalties = None
        interleave = (
            None
            if config.bus_interleave_cycles is None
            else config.bus_interleave_cycles * config.issue_width
        )
        self.bus = MemoryBus(interleave_slots=interleave)
        self.station = PendingFillStation(
            capacity=config.fill_buffers, sink=self._sink
        )
        self.l2 = (
            SecondLevelCache(
                config.l2_size_bytes,
                line_size=config.cache.line_size,
                assoc=config.l2_assoc,
                hit_cycles=config.l2_hit_cycles,
                miss_cycles=config.miss_penalty_cycles,
            )
            if config.l2_size_bytes is not None and not config.perfect_cache
            else None
        )
        if config.perfect_cache:
            self.cache: InstructionCache | None = None
            self.prefetcher: NextLinePrefetcher | None = None
        else:
            self.cache = InstructionCache(
                config.cache.size_bytes,
                line_size=config.cache.line_size,
                assoc=config.cache.assoc,
            )
            self.prefetcher = (
                NextLinePrefetcher(
                    self.cache,
                    self.bus,
                    self.station,
                    self._fill_duration,
                    variant=config.prefetch_variant,
                    next_line_enabled=config.prefetch,
                    sink=self._sink,
                )
                if config.prefetch or config.target_prefetch
                else None
            )
        self.streams = (
            StreamBufferUnit(
                self.bus,
                n_buffers=config.stream_buffers,
                depth=config.stream_buffer_depth,
                penalty_slots=self._fill_duration,
            )
            if config.stream_buffers and not config.perfect_cache
            else None
        )
        self.classifier = (
            MissClassifier(
                config.cache.size_bytes,
                line_size=config.cache.line_size,
                assoc=config.cache.assoc,
            )
            if config.classify and not config.perfect_cache
            else None
        )
        self.penalties = PenaltyAccumulator()
        self.counters = EngineCounters()
        # Prefetches issued before the warmup boundary but still live at
        # the reset (fresh in the cache or in flight in the station).
        # They are counted into prefetch.issued_total at publish time so
        # the usefulness partition stays exact across a warmup reset.
        self._carried_prefetches = 0
        # Unresolved conditional branches, in fetch order:
        # (resolve_at_slot, pht_index, actual_taken, branch_pc).
        self._unresolved: deque[tuple[int, int | None, bool, int]] = deque()
        # Cached geometry / latencies.
        self._line_shift = config.cache.line_size.bit_length() - 1
        self._per_line = config.cache.line_size // INSTRUCTION_SIZE
        self._penalty_slots = config.miss_penalty_slots
        self._decode_slots = config.decode_latency_slots
        self._resolve_slots = config.resolve_latency_slots
        self._max_unresolved = config.max_unresolved
        self._fetchahead = (
            config.fetchahead_distance
            if self.prefetcher is not None
            and config.prefetch
            and config.prefetch_variant == "fetchahead"
            else 0
        )
        # Hot-loop fast path eligibility: the common direct-mapped
        # configuration with no lockstep classifier and no stream buffers
        # can inline the all-hits case of _fetch_right_line (see
        # _issue_run).  Purely an optimisation — results are bit-identical
        # either way (tests/core/test_engine_fast_path.py).
        self._fast_path = (
            self.cache is not None
            and self.cache.assoc == 1
            and self.classifier is None
            and self.streams is None
        )

    def _fill_duration(self, line: int) -> int:
        """Service time (slots) for one line fill, touching the L2.

        Without an L2 this is the flat miss penalty; with one, the L2 is
        probed (and on a miss, allocated), so the duration is the L2 hit
        time or the memory latency.  Must be called exactly once per
        issued fill request.
        """
        if self.l2 is None:
            return self._penalty_slots
        return self.l2.access(line) * self.config.issue_width

    # -- resolution bookkeeping ------------------------------------------------

    def _apply_resolutions(self, now: int) -> None:
        """Resolve every queued branch whose resolve time has passed.

        Under the timing schedule this trains the predictor; under the
        architectural schedule (or replay) training happens elsewhere and
        this only drains the queue that gates fetch.
        """
        queue = self._unresolved
        resolve = self._timing_resolve
        while queue and queue[0][0] <= now:
            _, pht_index, taken, pc = queue.popleft()
            resolve(pht_index, taken, pc=pc)

    def _apply_arch_resolutions(self, now: int) -> None:
        """Train the predictor for every architectural-clock resolution
        whose time has passed (arch-live runs only)."""
        queue = self._arch_unresolved
        resolve = self.unit.resolve
        while queue and queue[0][0] <= now:
            _, pht_index, taken, pc = queue.popleft()
            resolve(pht_index, taken, pc=pc)

    def _depth_gate(self, t: int) -> int:
        """Stall (branch_full) until an unresolved-branch slot is free."""
        self._apply_resolutions(t)
        queue = self._unresolved
        if len(queue) < self._max_unresolved:
            return t
        head = queue[0][0]
        if head > t:
            self.penalties.branch_full += head - t
            if self._sink is not None:
                self._sink.emit(
                    FetchStall(t=t, cause="branch_full", slots=head - t)
                )
            t = head
        self._apply_resolutions(t)
        return t

    # -- right-path fetch --------------------------------------------------------

    def _fetch_right_line(self, line: int, t: int) -> int:
        """Probe *line* on the correct path at slot *t*; return the slot at
        which instructions from it can issue (>= t after any stalls)."""
        cache = self.cache
        if cache is None:
            return t
        station = self.station
        station.drain(t, cache)
        hit = cache.probe(line)
        self.counters.right_probes += 1
        if self.classifier is not None:
            self.classifier.right_path_access(line, hit)
        if hit:
            if self.prefetcher is not None:
                self.prefetcher.on_line_fetch(line, t)
            if self.streams is not None:
                # Demand accesses take priority on the channel; streams
                # refill their FIFOs during hit cycles.
                self.streams.pump(t)
            return t
        self.counters.right_misses += 1
        penalties = self.penalties
        inflight = station.lookup(line)
        if inflight is not None:
            # The very line is already in flight (wrong-path fill or
            # prefetch): wait for it instead of issuing a duplicate
            # request — the paper's resume-buffer index check.
            inflight_done = inflight.done_at
            penalties.bus += inflight_done - t
            if inflight.origin is FillOrigin.PREFETCH:
                self.counters.prefetch_late += 1
            if self._sink is not None:
                self._sink.emit(
                    FetchStall(
                        t=t, cause="bus", slots=inflight_done - t, line=line
                    )
                )
            t = inflight_done
            station.drain(t, cache)
            if inflight.origin is FillOrigin.PREFETCH:
                # The merge consumed the prefetch; keep the usefulness
                # partition from also counting a later demand hit.
                cache.consume_prefetch(line)
            self.counters.inflight_merges += 1
            if self.prefetcher is not None:
                self.prefetcher.on_line_fetch(line, t)
            return t
        if self.streams is not None:
            # Jouppi stream buffers: a head hit supplies the line without
            # a memory request, waiting only out any remaining flight
            # time.  No conservative guard applies — the line is already
            # on chip, so no (possibly wrong-path) memory fetch is risked.
            available_at = self.streams.probe(line, t)
            if available_at is not None:
                penalties.rt_icache += available_at - t
                if self._sink is not None and available_at > t:
                    self._sink.emit(
                        FetchStall(
                            t=t,
                            cause="rt_icache",
                            slots=available_at - t,
                            line=line,
                        )
                    )
                t = available_at
                cache.fill(line, LineOrigin.PREFETCH)
                # A stream install is demand-consumed on arrival; it must
                # not enter the next-line prefetch usefulness partition.
                cache.consume_prefetch(line)
                if self.classifier is not None:
                    self.classifier.optimistic_fill()
                self.streams.pump(t)
                if self.prefetcher is not None:
                    self.prefetcher.on_line_fetch(line, t)
                return t
        policy = self.policy
        if policy is FetchPolicy.PESSIMISTIC or policy is FetchPolicy.DECODE:
            # The conservative tax: the previous instruction (fetched at
            # t - 1) must decode; Pessimistic additionally waits for every
            # outstanding branch to resolve.
            guard = t - 1 + self._decode_slots
            if policy is FetchPolicy.PESSIMISTIC and self._unresolved:
                last_resolve = self._unresolved[-1][0]
                if last_resolve > guard:
                    guard = last_resolve
            if guard > t:
                penalties.force_resolve += guard - t
                if self._sink is not None:
                    self._sink.emit(
                        FetchStall(
                            t=t,
                            cause="force_resolve",
                            slots=guard - t,
                            line=line,
                        )
                    )
                t = guard
                self._apply_resolutions(t)
        duration = self._fill_duration(line)
        start, done = self.bus.request(t, duration)
        if start > t:
            penalties.bus += start - t
            if self._sink is not None:
                self._sink.emit(
                    FetchStall(t=t, cause="bus", slots=start - t, line=line)
                )
            t = start
        penalties.rt_icache += duration
        if self._miss_durations is not None:
            self._miss_durations.append(duration)
        if self._sink is not None:
            self._sink.emit(
                MissService(t=start, line=line, path="right", start=start, done=done)
            )
            self._sink.emit(
                FetchStall(t=start, cause="rt_icache", slots=duration, line=line)
            )
        t = done
        station.drain(t, cache)
        cache.fill(line, LineOrigin.DEMAND_RIGHT)
        self.counters.right_fills += 1
        if self.classifier is not None:
            self.classifier.optimistic_fill()
        if self.streams is not None:
            # A full miss (re)allocates a stream at the next line; the
            # bus just freed, so the first stream prefetch can start now.
            self.streams.allocate(line, t)
            self.streams.pump(t)
        if self.prefetcher is not None:
            self.prefetcher.on_demand_fill(line, t)
            self.prefetcher.on_line_fetch(line, t)
        return t

    def _issue_run(self, pc: int, n: int, t: int) -> int:
        """Issue *n* sequential correct-path instructions starting at *pc*.

        The run is consumed in per-line chunks (per-block arithmetic, not
        per-instruction dispatch).  Under the fast-path configuration
        (direct-mapped cache, no classifier, no stream buffers) a hit with
        an idle fill station is handled inline — replicating the
        bookkeeping of :meth:`InstructionCache.probe` and
        :meth:`_fetch_right_line` exactly — so the dominant all-hits case
        costs a tag compare and a few counter increments per line instead
        of a method-call chain.  Misses and in-flight fills always take
        the full :meth:`_fetch_right_line` path.
        """
        cache = self.cache
        if cache is None:
            # Perfect cache: every probe hits instantly and no unit below
            # fetch is modelled, so the run issues back-to-back.
            return t + n
        per_line = self._per_line
        shift = self._line_shift
        fetchahead = self._fetchahead
        idx = pc // INSTRUCTION_SIZE
        if self._fast_path:
            counters = self.counters
            stats = cache.stats
            tags = cache._tags
            origins = cache._origins
            pf_fresh = cache._pf_fresh
            set_mask = cache.set_mask
            set_shift = cache._set_shift
            pending = self.station._pending  # identity-stable (pending.py)
            prefetcher = self.prefetcher
            while n > 0:
                line = pc >> shift
                in_line = per_line - idx % per_line
                chunk = in_line if in_line < n else n
                set_idx = line & set_mask
                if not pending and tags[set_idx] == line >> set_shift:
                    # Inlined InstructionCache.probe() hit path plus the
                    # engine-side hit bookkeeping of _fetch_right_line.
                    stats.probes += 1
                    stats.hits += 1
                    counters.right_probes += 1
                    origin = origins[set_idx]
                    if origin is not _ORIGIN_RIGHT:
                        if origin is _ORIGIN_PREFETCH:
                            stats.prefetch_hits += 1
                            if pf_fresh[set_idx]:
                                pf_fresh[set_idx] = False
                                stats.prefetch_used += 1
                        else:
                            stats.wrongpath_hits += 1
                    if prefetcher is not None:
                        prefetcher.on_line_fetch(line, t)
                else:
                    t = self._fetch_right_line(line, t)
                if fetchahead and in_line - chunk < fetchahead:
                    prefetcher.on_line_end_near(line, t)
                t += chunk
                pc += chunk * INSTRUCTION_SIZE
                idx += chunk
                n -= chunk
            return t
        while n > 0:
            line = pc >> shift
            in_line = per_line - idx % per_line
            chunk = in_line if in_line < n else n
            t = self._fetch_right_line(line, t)
            if fetchahead and in_line - chunk < fetchahead:
                # Smith & Hsu trigger: fetch reached within the fetchahead
                # distance of the line's end.
                self.prefetcher.on_line_end_near(line, t)
            t += chunk
            pc += chunk * INSTRUCTION_SIZE
            idx += chunk
            n -= chunk
        return t

    # -- wrong-path fetch ----------------------------------------------------------

    def _walk_wrong_path(
        self,
        start_pc: int | None,
        window_start: int,
        window_end: int,
        outcome: FetchOutcome,
    ) -> int:
        """Fetch down the wrong path during a redirect window.

        Returns the slot at which correct-path fetch resumes — the window
        end, or later when a blocking policy is still waiting on a
        wrong-path fill (that overshoot is the ``wrong_icache`` component).
        """
        if start_pc is None or window_start >= window_end:
            return window_end
        cache = self.cache
        if cache is None:
            return window_end
        policy = self.policy
        if policy is FetchPolicy.OPTIMISTIC:
            fills, blocking = True, True
        elif policy is FetchPolicy.RESUME:
            fills, blocking = True, False
        elif policy is FetchPolicy.DECODE:
            # Decode's guard catches misfetches (the redirect arrives with
            # the decode it was waiting for) but not mispredicts.
            fills, blocking = outcome is FetchOutcome.MISPREDICT, True
        else:  # ORACLE, PESSIMISTIC
            fills, blocking = False, False

        station = self.station
        counters = self.counters
        penalties = self.penalties
        prefetcher = self.prefetcher
        cur = window_start
        if self._replay:
            # The recorded walk was bounded by the same window length and
            # depends only on the image + predictor state, so re-splitting
            # it at this cell's line size reproduces the live walk exactly.
            lines = self.unit.iter_last_wrong_path_lines(
                self.config.cache.line_size
            )
        else:
            lines = iter_wrong_path_lines(
                self.program.image,
                self.unit,
                start_pc,
                window_end - window_start,
                self.config.cache.line_size,
            )
        for line, n in lines:
            if cur >= window_end:
                break
            station.drain(cur, cache)
            counters.wrong_probes += 1
            if cache.contains(line):
                if prefetcher is not None:
                    prefetcher.on_line_fetch(line, cur)
                counters.wrong_instructions += n
                cur += n
                continue
            counters.wrong_misses += 1
            if self.classifier is not None:
                self.classifier.wrong_path_miss()
            inflight_done = station.done_at(line)
            if inflight_done is not None:
                # This very line is already in flight (e.g. a prefetch).
                if blocking and fills:
                    if inflight_done >= window_end:
                        penalties.wrong_icache += inflight_done - window_end
                        if self._sink is not None and inflight_done > window_end:
                            self._sink.emit(
                                FetchStall(
                                    t=window_end,
                                    cause="wrong_icache",
                                    slots=inflight_done - window_end,
                                    line=line,
                                )
                            )
                        return inflight_done
                    cur = inflight_done
                    station.drain(cur, cache)
                    counters.wrong_instructions += n
                    cur += n
                    continue
                if policy is FetchPolicy.RESUME and inflight_done < window_end:
                    cur = inflight_done
                    station.drain(cur, cache)
                    counters.wrong_instructions += n
                    cur += n
                    continue
                break  # redirect (or idle) until the window ends
            if not fills:
                break  # conservative policies idle out the window
            if policy is FetchPolicy.RESUME and station.busy(cur):
                # The single background-fill buffer is occupied; a second
                # outstanding background fill cannot be started.
                break
            request_at = cur + (self._decode_slots if policy is FetchPolicy.DECODE else 0)
            duration = self._fill_duration(line)
            start, done = self.bus.request(request_at, duration)
            counters.wrong_fills += 1
            if self._miss_durations is not None:
                self._miss_durations.append(duration)
            if self._sink is not None:
                self._sink.emit(
                    MissService(
                        t=start, line=line, path="wrong", start=start, done=done
                    )
                )
            if self.classifier is not None:
                self.classifier.optimistic_fill()
            if blocking:
                cache.fill(line, LineOrigin.DEMAND_WRONG)
                if done >= window_end:
                    penalties.wrong_icache += done - window_end
                    if self._sink is not None and done > window_end:
                        self._sink.emit(
                            FetchStall(
                                t=window_end,
                                cause="wrong_icache",
                                slots=done - window_end,
                                line=line,
                            )
                        )
                    return done
                cur = done
                if prefetcher is not None:
                    prefetcher.on_line_fetch(line, cur)
                counters.wrong_instructions += n
                cur += n
                continue
            # Resume: never stall past the window.
            if done <= window_end:
                cache.fill(line, LineOrigin.DEMAND_WRONG)
                cur = done
                if prefetcher is not None:
                    prefetcher.on_line_fetch(line, cur)
                counters.wrong_instructions += n
                cur += n
                continue
            station.start(line, done, FillOrigin.WRONG_PATH)
            break
        return window_end

    # -- measurement warmup ---------------------------------------------------------

    def _reset_measurement(self) -> None:
        """Zero all statistics while keeping architectural state.

        Used at the end of the warmup window: the caches, predictors, and
        the slot clock keep their contents (that is the point of warming
        up); only the measured counters restart.  This mirrors the paper's
        effectively-warm measurements (its traces are billions of
        instructions, so compulsory misses are negligible there).

        Prefetches issued during warmup that are still live at the reset
        (fresh lines in the cache, in-flight fills in the station) will be
        judged useful/late/wasted *after* the boundary, so their count is
        snapshotted here and folded into ``prefetch.issued_total`` at
        publish time — otherwise the usefulness partition would overflow
        its issue count for every warmed-up run.
        """
        self.penalties = PenaltyAccumulator()
        self.counters = EngineCounters()
        self.unit.stats = type(self.unit.stats)()
        if self.prefetcher is not None and self.cache is not None:
            self._carried_prefetches = (
                self.cache.fresh_prefetch_count()
                + self.station.pending_prefetches()
            )
        if self.cache is not None:
            self.cache.stats = type(self.cache.stats)()
        if self.prefetcher is not None:
            self.prefetcher.reset()
        if self.classifier is not None:
            self.classifier.counts = type(self.classifier.counts)()
        if self.streams is not None:
            self.streams.reset_stats()
        if self.l2 is not None:
            self.l2.reset_stats()
        self.bus.requests = 0
        self.bus.busy_wait_slots = 0
        # Station fill statistics restart with the measurement window (the
        # pending fills themselves are architectural state and survive).
        self.station.installed = 0
        self.station.overwritten = 0
        self.station.overwritten_prefetch = 0

    # -- the main loop ------------------------------------------------------------

    def run(self, trace: Trace, warmup_instructions: int = 0) -> SimulationResult:
        """Simulate *trace*; statistics restart after *warmup_instructions*.

        The warmup prefix is simulated in full (it populates the caches and
        predictors) but excluded from every reported metric.

        With ``config.adaptive_interval`` set, the trace is consumed in
        interval spans: the schedule seam supplies each interval's policy
        and :class:`IntervalStats` are recorded per span.  Without it the
        whole trace runs as one span — the exact pre-seam hot loop.
        """
        if trace.program_name != self.program.name:
            raise SimulationError(
                f"trace is for {trace.program_name!r}, "
                f"engine built for {self.program.name!r}"
            )
        if warmup_instructions < 0:
            raise SimulationError(
                f"negative warmup {warmup_instructions}"
            )
        if warmup_instructions >= trace.n_instructions:
            raise SimulationError(
                f"warmup {warmup_instructions} consumes the whole trace "
                f"({trace.n_instructions} instructions)"
            )
        if self.schedule.driver_required:
            raise SimulationError(
                f"policy_schedule={self.config.policy_schedule!r} needs "
                "the adaptive driver (shadow/oracle forks); build the "
                "engine through build_engine"
            )
        if self._replay:
            self.unit.rewind()
            self.unit.stream.require_trace(trace)
        self._tau = 0
        self.interval_log = []
        if self.config.adaptive_interval is None:
            t, _ = self._run_span(trace.records, 0, warmup_instructions)
        else:
            t = self._run_intervals(trace.records, warmup_instructions)
        self._finish_run(t)
        return self._build_result(trace)

    def _run_intervals(self, records, warmup_instructions: int) -> int:
        """Consume *records* interval by interval through the schedule."""
        schedule = self.schedule
        t = 0
        warm_left = warmup_instructions
        for k, (lo, hi) in enumerate(
            interval_spans(records, self.config.adaptive_interval)
        ):
            self.set_policy(schedule.policy_for(k), t=t, interval=k)
            snapshot = self.snapshot_stats()
            warm_before = warm_left
            t, warm_left = self._run_span(records[lo:hi], t, warm_left)
            reset = warm_before > 0 and warm_left <= 0
            stats = self.interval_delta(k, snapshot, reset=reset)
            self.commit_interval(stats, reset=reset)
            schedule.observe(stats)
        return t

    def _finish_run(self, t: int) -> None:
        """Drain the resolution queues after the last span."""
        self._apply_resolutions(t + self._resolve_slots)
        if self._arch_live:
            self._apply_arch_resolutions(self._tau + self._resolve_slots)

    def _run_span(
        self, records, t: int, warm_left: int
    ) -> tuple[int, int]:
        """Run one span of trace *records* starting at slot *t*.

        This is the engine hot loop.  All mutable component state lives on
        ``self`` and carries across spans; the only span-local state is
        the cached-locals block below (rebound per span, and after a
        warmup reset).  Returns the advanced ``(t, warm_left)``.
        """
        image = self.program.image
        targets = image.targets_list
        base = image.base
        counters = self.counters
        penalties = self.penalties
        unit = self.unit
        predict = unit.predict
        issue_run = self._issue_run
        resolve_slots = self._resolve_slots
        unresolved = self._unresolved
        max_unresolved = self._max_unresolved
        target_prefetch = self.config.target_prefetch and self.prefetcher is not None
        # Locals for the inlined single-instruction terminator issue (the
        # same fast path as _issue_run; see there for the invariants).
        cache = self.cache
        prefetcher = self.prefetcher
        shift = self._line_shift
        fast_term = self._fast_path and not self._fetchahead
        if fast_term:
            stats = cache.stats
            tags = cache._tags
            origins = cache._origins
            pf_fresh = cache._pf_fresh
            set_mask = cache.set_mask
            set_shift = cache._set_shift
            pending = self.station._pending  # identity-stable (pending.py)
        # Architectural-clock state (arch-live runs only): tau is the
        # perfect-cache fetch clock; predictor training follows it instead
        # of t, making the outcome stream cache/policy-independent.
        arch = self._arch_live
        arch_unresolved = self._arch_unresolved
        tau = self._tau
        for record in records:
            start, length, kind, taken, next_pc = record
            if warm_left > 0:
                warm_left -= length
                if warm_left <= 0:
                    self._reset_measurement()
                    counters = self.counters
                    penalties = self.penalties
                    if fast_term:
                        stats = cache.stats
            counters.blocks += 1
            counters.instructions += length
            if kind == _COND:
                if length > 1:
                    t = issue_run(start, length - 1, t)
                if arch:
                    # The architectural clock mirrors the perfect-cache
                    # timeline: block issue plus the same depth gate, but
                    # without charging any penalty (timing stays on t).
                    tau += length - 1
                    if arch_unresolved:
                        if arch_unresolved[0][0] <= tau:
                            self._apply_arch_resolutions(tau)
                        if len(arch_unresolved) >= max_unresolved:
                            head = arch_unresolved[0][0]
                            if head > tau:
                                tau = head
                            self._apply_arch_resolutions(tau)
                    tau += 1
                # _depth_gate, inlined for the common not-full case.
                if unresolved:
                    if unresolved[0][0] <= t:
                        self._apply_resolutions(t)
                    if len(unresolved) >= max_unresolved:
                        t = self._depth_gate(t)
                term_addr = start + (length - 1) * INSTRUCTION_SIZE
                line = term_addr >> shift
                if (
                    fast_term
                    and not pending
                    and tags[line & set_mask] == line >> set_shift
                ):
                    # Inlined _issue_run fast path for the lone terminator.
                    set_idx = line & set_mask
                    stats.probes += 1
                    stats.hits += 1
                    counters.right_probes += 1
                    origin = origins[set_idx]
                    if origin is not _ORIGIN_RIGHT:
                        if origin is _ORIGIN_PREFETCH:
                            stats.prefetch_hits += 1
                            if pf_fresh[set_idx]:
                                pf_fresh[set_idx] = False
                                stats.prefetch_used += 1
                        else:
                            stats.wrongpath_hits += 1
                    if prefetcher is not None:
                        prefetcher.on_line_fetch(line, t)
                    t += 1
                else:
                    t = issue_run(term_addr, 1, t)
            else:
                t = issue_run(start, length, t)
                if arch:
                    tau += length
                if kind == _PLAIN:
                    continue
                term_addr = start + (length - 1) * INSTRUCTION_SIZE
            t_br = t - 1
            if unresolved and unresolved[0][0] <= t_br:
                self._apply_resolutions(t_br)
            if arch:
                tau_br = tau - 1
                if arch_unresolved and arch_unresolved[0][0] <= tau_br:
                    self._apply_arch_resolutions(tau_br)
            ctrl_idx = (term_addr - base) // INSTRUCTION_SIZE
            raw_target = targets[ctrl_idx]
            static_target = None if raw_target < 0 else raw_target
            fall = term_addr + INSTRUCTION_SIZE
            result = predict(
                term_addr, _KIND_FROM_INT[kind], static_target, taken, next_pc, fall
            )
            if kind == _CALL:
                unit.notify_call(fall)
            if kind == _COND:
                unresolved.append(
                    (t_br + resolve_slots, result.pht_index, taken, term_addr)
                )
                if arch:
                    arch_unresolved.append(
                        (tau_br + resolve_slots, result.pht_index, taken, term_addr)
                    )
                if (
                    target_prefetch
                    and static_target is not None
                    and result.predicted_taken is not None
                ):
                    # Target prefetching: fetch the line of the arm the
                    # prediction did NOT follow (the predicted arm is
                    # being fetched anyway).
                    alt = fall if result.predicted_taken else static_target
                    self.prefetcher.prefetch_target(
                        alt >> self._line_shift, t_br + 1
                    )
            if result.outcome is _CORRECT:
                continue
            if arch:
                tau = tau_br + 1 + result.penalty_slots
            penalties.branch += result.penalty_slots
            if self._redirect_penalties is not None:
                self._redirect_penalties.append(result.penalty_slots)
            if self._sink is not None:
                self._sink.emit(
                    Redirect(
                        t=t_br,
                        pc=term_addr,
                        outcome=result.outcome.value,
                        cause=result.cause.value,
                        penalty_slots=result.penalty_slots,
                    )
                )
                self._sink.emit(
                    FetchStall(
                        t=t_br, cause="branch", slots=result.penalty_slots
                    )
                )
            window_start = t_br + 1 + result.wrong_path_delay
            window_end = t_br + 1 + result.penalty_slots
            t = self._walk_wrong_path(
                result.wrong_path_start, window_start, window_end, result.outcome
            )
        self._tau = tau
        return t, warm_left

    # -- per-interval policy machinery -----------------------------------------

    def set_policy(
        self, policy: FetchPolicy, t: int = 0, interval: int = 0
    ) -> None:
        """Swap the fetch policy at an interval boundary.

        In-flight state is deliberately untouched: pending fills keep
        draining, the bus stays busy until its scheduled time, and the
        unresolved-branch queues keep gating — the new policy only
        governs decisions taken from here on.  That is the warm-state
        handoff the adaptive schedules rely on.
        """
        if policy is self.policy:
            return
        previous = self.policy
        self.policy = policy
        self.policy_switches += 1
        if self._sink is not None:
            self._sink.emit(
                PolicySwitch(
                    t=t,
                    interval=interval,
                    previous=previous.value,
                    policy=policy.value,
                )
            )

    def snapshot_stats(self) -> tuple:
        """Opaque counter snapshot for :meth:`interval_delta`."""
        counters = self.counters
        return (
            self.penalties.as_dict(),
            counters.instructions,
            counters.blocks,
            counters.right_misses,
            counters.wrong_misses,
        )

    def interval_delta(
        self, index: int, snapshot: tuple, reset: bool = False
    ) -> IntervalStats:
        """Stats accumulated since *snapshot*, as one interval record.

        With *reset* (the warmup boundary fell inside the span), the
        measured counters were zeroed mid-span, so the current totals
        *are* the delta — subtracting the pre-span snapshot would go
        negative.
        """
        counters = self.counters
        pen = self.penalties.as_dict()
        if reset:
            penalties = pen
            instructions = counters.instructions
            blocks = counters.blocks
            right_misses = counters.right_misses
            wrong_misses = counters.wrong_misses
        else:
            pen0, instr0, blocks0, right0, wrong0 = snapshot
            penalties = {name: pen[name] - pen0[name] for name in COMPONENTS}
            instructions = counters.instructions - instr0
            blocks = counters.blocks - blocks0
            right_misses = counters.right_misses - right0
            wrong_misses = counters.wrong_misses - wrong0
        return IntervalStats(
            index=index,
            policy=self.policy,
            instructions=instructions,
            blocks=blocks,
            right_misses=right_misses,
            wrong_misses=wrong_misses,
            penalties=penalties,
        )

    def commit_interval(self, stats: IntervalStats, reset: bool = False) -> None:
        """Append one finished interval to the run's interval log.

        A warmup reset inside the interval invalidates every earlier
        entry (their counters were zeroed away), so the log restarts —
        keeping the partition invariant exact: logged intervals always
        sum to the measured whole-run totals.
        """
        if reset:
            self.interval_log.clear()
        self.interval_log.append(stats)

    def fork(self) -> FetchEngine:
        """A deep copy of this engine's warm state for shadow/oracle runs.

        The immutable cell inputs (program, config, and a replayed
        prediction stream) are shared, everything mutable — caches,
        predictor, bus, fill station, queues, counters — is copied.
        Observation is stripped from the fork: shadow timelines must
        never leak events or metrics into the committed run's observer.
        """
        memo = {
            id(self.program): self.program,
            id(self.config): self.config,
        }
        if self._replay:
            memo[id(self.unit.stream)] = self.unit.stream
        clone = copy.deepcopy(self, memo)
        clone.observer = None
        clone._sink = None
        clone._miss_durations = None
        clone._redirect_penalties = None
        clone.station.sink = None
        if clone.prefetcher is not None:
            clone.prefetcher.sink = None
        return clone

    def adopt(self, fork: FetchEngine) -> None:
        """Absorb *fork*'s warm state as this engine's committed timeline.

        The inverse hand-off of :meth:`fork`: after a shadow fork has
        already simulated an interval, the driver can *adopt* its end
        state instead of re-running the same interval on the committed
        engine — the simulation is deterministic, so the adopted state is
        bit-identical to what the redundant re-run would have produced.

        Only allowed on an observation-free engine: forks are stripped of
        sinks and distribution buffers (see :meth:`fork`), so adopting
        one under a live observer would silently drop the committed
        interval's events and samples.  The driver falls back to the
        re-run path in that case.

        Driver-owned bookkeeping stays put: the schedule (shared with the
        driver by identity), the interval log (committed by the driver
        via :meth:`commit_interval`), and the shadow-run count (the fork
        carries a stale pre-interval copy).
        """
        if self.observer is not None:
            raise SimulationError(
                "adopt() requires an observation-free engine; forks carry "
                "no events or distribution samples to adopt"
            )
        keep = (
            "observer", "_sink", "_miss_durations", "_redirect_penalties",
            "schedule", "shadow_runs", "interval_log",
        )
        for name, value in fork.__dict__.items():
            if name not in keep:
                self.__dict__[name] = value

    def _build_result(self, trace: Trace) -> SimulationResult:
        counters = self.counters
        if self.prefetcher is not None:
            counters.prefetches = self.prefetcher.issued
            counters.target_prefetches = self.prefetcher.target_issued
        if self.streams is not None:
            counters.stream_prefetches = self.streams.prefetches
            counters.stream_hits = self.streams.head_hits
        if self.l2 is not None:
            counters.l2_hits = self.l2.hits
            counters.l2_misses = self.l2.misses
        if self.cache is not None:
            counters.prefetch_hits = self.cache.stats.prefetch_hits
        classification = None
        if self.classifier is not None:
            classification = self.classifier.finalize(
                self.program.name, counters.instructions
            )
        if self.observer is not None:
            self._publish_metrics(self.observer.registry)
        metadata: dict[str, object] = {
            "trace_instructions": trace.n_instructions,
            "trace_blocks": trace.n_blocks,
            "trace_seed": trace.seed,
        }
        if self.interval_log:
            metadata["policy_switches"] = self.policy_switches
            metadata["shadow_runs"] = self.shadow_runs
        return SimulationResult(
            program=self.program.name,
            config=self.config,
            penalties=self.penalties,
            counters=counters,
            branch_stats=self.unit.stats,
            cache_stats=self.cache.stats if self.cache is not None else None,
            classification=classification,
            metadata=metadata,
            intervals=tuple(self.interval_log),
        )

    def _publish_metrics(self, registry: MetricsRegistry) -> None:
        """Publish every component's counters into *registry*.

        Called once at the end of a run; the names form the stable metric
        namespace documented in ``docs/observability.md``.  The prefetch
        usefulness partition (``useful + late + wasted == issued``) is
        computed independently of the issue count so tests can check it as
        a real invariant; prefetches still live across a warmup reset are
        counted into the issue side (see :meth:`_reset_measurement`), so
        the partition is exact for warmed-up runs too.
        """
        counters = self.counters
        penalties = self.penalties
        miss_hist = registry.histogram("engine.miss_service_slots")
        for value in self._miss_durations:
            miss_hist.observe(value)
        self._miss_durations.clear()
        redirect_hist = registry.histogram("engine.redirect_penalty_slots")
        for value in self._redirect_penalties:
            redirect_hist.observe(value)
        self._redirect_penalties.clear()
        for name in COMPONENTS:
            registry.inc(f"engine.stall_slots.{name}", getattr(penalties, name))
        registry.inc("engine.stall_slots_total", penalties.total_slots)
        registry.inc("engine.instructions", counters.instructions)
        registry.inc("engine.blocks", counters.blocks)
        registry.inc("engine.right_probes", counters.right_probes)
        registry.inc("engine.right_misses", counters.right_misses)
        registry.inc("engine.wrong_probes", counters.wrong_probes)
        registry.inc("engine.wrong_misses", counters.wrong_misses)
        registry.inc("engine.right_fills", counters.right_fills)
        registry.inc("engine.wrong_fills", counters.wrong_fills)
        registry.inc("engine.wrong_instructions", counters.wrong_instructions)
        registry.inc("engine.inflight_merges", counters.inflight_merges)
        if self.interval_log:
            registry.inc("adaptive.intervals", len(self.interval_log))
            registry.inc("adaptive.switches", self.policy_switches)
            registry.inc("adaptive.shadow_runs", self.shadow_runs)
        self.unit.publish_metrics(registry)
        self.bus.publish_metrics(registry)
        self.station.publish_metrics(registry)
        if self.cache is not None:
            self.cache.publish_metrics(registry)
        if self.prefetcher is not None and self.cache is not None:
            self.prefetcher.publish_metrics(registry)
            stats = self.cache.stats
            issued = (
                self.prefetcher.issued
                + self.prefetcher.target_issued
                + self._carried_prefetches
            )
            wasted = (
                stats.prefetch_evicted_unused
                + self.cache.fresh_prefetch_count()
                + self.station.pending_prefetches()
                + self.station.overwritten_prefetch
            )
            registry.inc("prefetch.issued_total", issued)
            registry.inc("prefetch.useful", stats.prefetch_used)
            registry.inc("prefetch.late", counters.prefetch_late)
            registry.inc("prefetch.wasted", wasted)
        if self.streams is not None:
            registry.inc("stream.allocations", self.streams.allocations)
            registry.inc("stream.prefetches", self.streams.prefetches)
            registry.inc("stream.head_hits", self.streams.head_hits)
        if self.l2 is not None:
            registry.inc("l2.hits", self.l2.hits)
            registry.inc("l2.misses", self.l2.misses)
        if self.classifier is not None:
            counts = self.classifier.counts
            registry.inc("classify.both_miss", counts.both_miss)
            registry.inc("classify.spec_pollute", counts.spec_pollute)
            registry.inc("classify.spec_prefetch", counts.spec_prefetch)
            registry.inc("classify.wrong_path", counts.wrong_path)
            registry.inc("classify.optimistic_fills", counts.optimistic_fills)
            registry.inc("classify.oracle_fills", counts.oracle_fills)


#: Fallback-reason -> per-reason counter name (all under ``engine.*``).
FALLBACK_COUNTERS = {
    "missing_stream": "engine.fallback.missing_stream",
    "ineligible_config": "engine.fallback.ineligible_config",
    "event_sink": "engine.fallback.event_sink",
}


def _record_fallback(
    observer: Observer, benchmark: str, config: SimConfig, reason: str
) -> None:
    """Count (and, with an enabled sink, narrate) one vector->event
    fallback so sweeps can explain why they ran slow."""
    registry = observer.registry
    registry.inc("engine.fallback_total")
    registry.inc(FALLBACK_COUNTERS[reason])
    if observer.sink.enabled:
        observer.sink.emit(
            EngineFallback(
                t=0,
                benchmark=benchmark,
                requested=config.engine_backend,
                reason=reason,
            )
        )


def build_engine(
    program: Program,
    config: SimConfig,
    observer: Observer | None = None,
    stream=None,
):
    """Construct the engine backend for one cell.

    The backend-selection seam, mirroring ``build_branch_unit``: every
    simulation obtains its engine here so ``SimConfig.engine_backend``
    can swap the vectorized batch backend in for the event loop.  With
    ``"auto"`` (the default) or ``"vector"``, the vector backend is used
    only when the cell can actually run on it: a recorded stream must be
    available, the config must be vector-eligible (see
    :func:`repro.core.vector.vector_eligible`), and no event sink may be
    listening (cycle-level events only exist in the event loop).  Every
    other case — including an explicit ``"vector"`` request on an
    ineligible cell — falls back to the event loop; the returned
    engine's ``backend`` attribute ("event" / "vector") records the
    choice.  Results are bit-identical either way
    (tests/core/test_engine_backends.py).

    A fallback that denies an **explicit** ``"vector"`` request is
    counted under ``engine.fallback_total`` plus a per-reason counter
    (:data:`FALLBACK_COUNTERS`) and narrated as an
    :class:`~repro.obs.events.EngineFallback` event, so sweeps pinned to
    the vector backend can explain why they ran slow.  ``"auto"``
    fallbacks stay uncounted on purpose: auto promises nothing, and both
    the golden metric snapshots and the replay-transparency invariant
    (live metrics == replayed metrics) depend on backend selection not
    perturbing the registry.

    Controller-driven schedules (``tournament`` / ``oracle``) need
    warm-state forks per interval, so the built event-loop engine is
    wrapped in :class:`~repro.core.adaptive.AdaptiveEngine`.
    """
    fallback_reason = None
    if config.engine_backend != "event":
        explicit = config.engine_backend == "vector"
        if stream is None:
            if explicit:
                fallback_reason = "missing_stream"
        else:
            # Deferred import: repro.core.vector imports repro.branch.stream.
            from repro.core.vector import VectorEngine, vector_eligible

            if not vector_eligible(config):
                # An adaptive schedule can never reach here explicitly:
                # SimConfig rejects engine_backend="vector" with one.
                if explicit:
                    fallback_reason = "ineligible_config"
            elif observer is not None and observer.sink.enabled:
                if explicit:
                    fallback_reason = "event_sink"
            else:
                return VectorEngine(
                    FetchEngine(
                        program, config, observer=observer, stream=stream
                    )
                )
    if fallback_reason is not None and observer is not None:
        _record_fallback(observer, program.name, config, fallback_reason)
    engine = FetchEngine(program, config, observer=observer, stream=stream)
    if engine.schedule.driver_required:
        # Deferred import: repro.core.adaptive imports this module's types.
        from repro.core.adaptive import AdaptiveEngine

        return AdaptiveEngine(engine)
    return engine


def simulate(
    program: Program,
    trace: Trace,
    config: SimConfig,
    warmup: int = 0,
    observer: Observer | None = None,
    stream=None,
) -> SimulationResult:
    """Build a fresh engine and run *trace* under *config*.

    *observer*, when given, receives typed events (if its sink is enabled)
    and the end-of-run metrics publication; it never changes the result.
    *stream*, when given, replays a recorded
    :class:`~repro.branch.stream.PredictionStream` instead of running the
    live predictor (bit-identical for replay-eligible configs), and —
    unless ``config.engine_backend`` forbids it — enables the vectorized
    batch backend for eligible cells (see :func:`build_engine`).
    """
    return build_engine(program, config, observer=observer, stream=stream).run(
        trace, warmup_instructions=warmup
    )
