"""Multi-process simulation sweeps.

Experiment sweeps are embarrassingly parallel across benchmarks (each
(program, trace) pair is independent), and the pure-Python engine is
CPU-bound, so a process pool gives near-linear speedups for the big
tables.  Jobs are grouped by benchmark so each worker builds a workload
and generates its trace once, then replays it through all of that
benchmark's configurations — the same amortisation the in-process
:class:`~repro.core.runner.SimulationRunner` gets from its caches.

Determinism is preserved: a parallel sweep returns bit-identical results
to the serial runner for the same (trace_length, seed, warmup).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.config import ALL_POLICIES, FetchPolicy, SimConfig
from repro.core.engine import simulate
from repro.core.results import SimulationResult
from repro.core.runner import DEFAULT_TRACE_LENGTH, DEFAULT_WARMUP
from repro.errors import ExperimentError


def _run_benchmark_jobs(
    args: tuple[str, tuple[SimConfig, ...], int, int, int],
) -> list[SimulationResult]:
    """Worker: one benchmark, many configurations (runs in a subprocess)."""
    name, configs, trace_length, warmup, seed = args
    from repro.program.workloads import build_workload
    from repro.trace.generator import generate_trace

    # Mirror SimulationRunner exactly: the runner seed perturbs both the
    # structure and the trace, so serial and parallel sweeps agree.
    program = build_workload(name, seed=seed)
    trace = generate_trace(program, trace_length, seed=seed)
    return [
        simulate(program, trace, config, warmup=warmup) for config in configs
    ]


class ParallelRunner:
    """Process-pool counterpart of :class:`SimulationRunner`.

    Presents the same sweep API; results are identical, only wall-clock
    differs.  Use for full-suite sweeps (Table 5-scale work); for single
    runs the in-process runner is cheaper.
    """

    def __init__(
        self,
        trace_length: int = DEFAULT_TRACE_LENGTH,
        seed: int = 1995,
        warmup: int | None = None,
        max_workers: int | None = None,
    ) -> None:
        if trace_length < 1:
            raise ExperimentError(f"trace_length must be >= 1: {trace_length}")
        if warmup is None:
            warmup = min(DEFAULT_WARMUP, trace_length // 4)
        if not 0 <= warmup < trace_length:
            raise ExperimentError(
                f"warmup {warmup} must lie in [0, trace_length={trace_length})"
            )
        if max_workers is not None and max_workers < 1:
            raise ExperimentError(f"max_workers must be >= 1: {max_workers}")
        self.trace_length = trace_length
        self.seed = seed
        self.warmup = warmup
        self.max_workers = max_workers

    def run_jobs(
        self, jobs: Iterable[tuple[str, SimConfig]]
    ) -> list[SimulationResult]:
        """Run ``(benchmark, config)`` jobs; results in job order."""
        jobs = list(jobs)
        if not jobs:
            return []
        # Group by benchmark, remembering each job's original position.
        grouped: dict[str, list[tuple[int, SimConfig]]] = {}
        for position, (name, config) in enumerate(jobs):
            grouped.setdefault(name, []).append((position, config))
        work = [
            (
                name,
                tuple(config for _, config in entries),
                self.trace_length,
                self.warmup,
                self.seed,
            )
            for name, entries in grouped.items()
        ]
        results: list[SimulationResult | None] = [None] * len(jobs)
        if self.max_workers == 1 or len(work) == 1:
            batches = [_run_benchmark_jobs(item) for item in work]
        else:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                batches = list(pool.map(_run_benchmark_jobs, work))
        for (name, entries), batch in zip(grouped.items(), batches):
            for (position, _), result in zip(entries, batch):
                results[position] = result
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:  # pragma: no cover - defensive
            raise ExperimentError(f"jobs {missing} produced no result")
        return results  # type: ignore[return-value]

    def run_matrix(
        self,
        names: Sequence[str],
        config: SimConfig,
        policies: Sequence[FetchPolicy] = ALL_POLICIES,
    ) -> dict[str, dict[FetchPolicy, SimulationResult]]:
        """Parallel benchmark x policy matrix (same shape as the serial
        runner's)."""
        jobs = [
            (name, config.with_policy(policy))
            for name in names
            for policy in policies
        ]
        results = self.run_jobs(jobs)
        matrix: dict[str, dict[FetchPolicy, SimulationResult]] = {}
        index = 0
        for name in names:
            matrix[name] = {}
            for policy in policies:
                matrix[name][policy] = results[index]
                index += 1
        return matrix
