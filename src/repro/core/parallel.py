"""Multi-process simulation sweeps with fault-tolerant execution.

Experiment sweeps are embarrassingly parallel across benchmarks (each
(program, trace) pair is independent), and the pure-Python engine is
CPU-bound, so a process pool gives near-linear speedups for the big
tables.  Jobs are grouped by benchmark so each worker builds a workload
and generates its trace once, then replays it through all of that
benchmark's configurations — the same amortisation the in-process
:class:`~repro.core.runner.SimulationRunner` gets from its caches.

Long sweeps must survive partial failure.  The runner therefore layers
fault tolerance over the pool:

* **Retry with bounded deterministic exponential backoff** — *transient*
  failures (``BrokenProcessPool``, OS-level worker death, watchdog
  timeouts, injected transient faults) requeue the failed batch up to
  ``retries`` times, sleeping ``min(backoff_base * 2**(attempt-1),
  backoff_cap)`` between attempts.  Library errors (:class:`ReproError`)
  and unknown exceptions are *deterministic* — retrying cannot help, so
  they fail fast (or are skipped, below).
* **Watchdog timeouts** — with ``job_timeout`` set, a batch still
  running when the deadline passes is killed (the whole pool is torn
  down, since a pool cannot kill one worker) and requeued against its
  retry budget; completed batches from the same round are kept.
* **Pool rebuild** — a broken pool is discarded and rebuilt; only
  unfinished batches are resubmitted.
* **Graceful degradation** — with ``on_error="skip"``, a batch that
  exhausts its budget (or fails deterministically) is recorded in
  :attr:`failures` as a structured :class:`SweepFailure` and its cells
  become :class:`MissingResult` placeholders instead of aborting the
  sweep.
* **Checkpoint/resume** — with ``checkpoint_dir`` set, every completed
  ``(benchmark, config)`` cell is journalled; a restarted sweep reuses
  journalled cells bit-identically (see :mod:`repro.core.checkpoint`).

Retries, timeouts, skips, pool rebuilds, and checkpoint activity are
published as ``sweep.*`` / ``checkpoint.*`` counters in :attr:`metrics`.

Determinism is preserved: with no faults injected, a parallel sweep
returns bit-identical results to the serial runner for the same
(trace_length, seed, warmup), and — with ``collect_metrics=True`` — a
metrics registry identical to a serial observed sweep (counter merge is
commutative, so retries and completion order cannot perturb it).  With
faults injected, a *recovered* sweep is still bit-identical: faults fire
at phase boundaries and failed attempts publish nothing, so only the new
``sweep.*`` counters differ.
"""

from __future__ import annotations

import contextlib
import time
from collections import deque
from collections.abc import Iterable, Sequence
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field, replace

from repro.config import ALL_POLICIES, FetchPolicy, SimConfig
from repro.core.checkpoint import CheckpointJournal
from repro.core.engine import simulate
from repro.core.faults import is_transient
from repro.core.results import MissingResult, SimulationResult, SweepFailure
from repro.core.runner import DEFAULT_TRACE_LENGTH, DEFAULT_WARMUP
from repro.errors import ExperimentError, JobTimeoutError
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer
from repro.obs.profile import PhaseProfiler

#: Injectable sleep (tests stub this out to keep backoff assertions fast).
_sleep = time.sleep

#: Worker payload: (results, metrics-registry dict or None, profile
#: summary or None).  Registries cross the process boundary as plain
#: dicts (via ``MetricsRegistry.as_dict``) to keep pickling trivial.
_WorkerReturn = tuple[
    list[SimulationResult],
    dict[str, object] | None,
    dict[str, dict[str, float]] | None,
]


def _run_benchmark_jobs(args) -> _WorkerReturn:
    """Worker: one benchmark, many configurations (runs in a subprocess).

    *args* is ``(name, configs, trace_length, warmup, seed, collect,
    cache_dir, replay, fault_plan)``; the trailing fault plan may be
    ``None`` (production) or a :class:`~repro.core.faults.FaultPlan`
    (chaos testing), which is consulted at every phase boundary.

    Prediction streams cross the process boundary as *cache keys*, never
    as pickled arrays: with ``replay="auto"`` and a cache configured, the
    worker memory-maps the stream's ``.npy`` files from the shared
    artifact cache (zero-copy transport) and builds + stores the stream
    itself on a miss.
    """
    (
        name, configs, trace_length, warmup, seed, collect, cache_dir,
        replay, plan,
    ) = args
    from repro.branch.stream import build_stream, replay_eligible, stream_digest
    from repro.core.artifacts import ArtifactCache
    from repro.core.faults import corrupt_entry
    from repro.program.workloads import build_workload
    from repro.trace.generator import generate_trace

    observer = Observer(profiler=PhaseProfiler()) if collect else None
    profiler = observer.profiler if observer is not None else PhaseProfiler()
    # Mirror SimulationRunner exactly: the runner seed perturbs both the
    # structure and the trace, so serial and parallel sweeps agree; the
    # shared on-disk artifact cache (atomic writes) lets every worker of
    # every sweep skip the build/generate phases after the first process.
    artifacts = ArtifactCache(cache_dir)
    pair = None
    if artifacts.enabled:
        if plan is not None:
            spec = plan.fire("cache_load", name)
            if spec is not None and spec.kind == "corrupt":
                corrupt_entry(artifacts.entry_dir(name, trace_length, seed))
        with profiler.phase("artifact_cache"):
            pair = artifacts.load(name, trace_length, seed)
    if pair is not None:
        program, trace = pair
    else:
        if plan is not None:
            plan.fire("build", name)
        with profiler.phase("build_program"):
            program = build_workload(name, seed=seed)
        if plan is not None:
            plan.fire("generate", name)
        with profiler.phase("generate_trace"):
            trace = generate_trace(program, trace_length, seed=seed)
        if artifacts.enabled:
            if plan is not None:
                plan.fire("cache_store", name)
            artifacts.store(name, trace_length, seed, program, trace)
    # Prediction streams, memoized per branch-config digest: every
    # replay-eligible configuration in this batch that shares a digest
    # shares one stream (mmapped from the cache when present, built and
    # persisted otherwise) — the counters mirror the serial runner's.
    streams: dict[str, object] = {}

    def _stream_for(config):
        if replay == "off" or not replay_eligible(config):
            return None
        digest = stream_digest(config)
        if digest in streams:
            return streams[digest]
        stream = None
        if artifacts.enabled:
            with profiler.phase("stream_cache"):
                stream = artifacts.load_stream(
                    name, trace_length, seed, digest, mmap=True
                )
            if stream is not None and observer is not None:
                observer.registry.inc("stream.cache_hits")
        if stream is None:
            with profiler.phase("build_stream"):
                stream = build_stream(program, trace, config)
            if observer is not None:
                observer.registry.inc("stream.builds")
            if artifacts.enabled:
                artifacts.store_stream(name, trace_length, seed, stream)
        streams[digest] = stream
        return stream

    if plan is not None:
        plan.fire("simulate", name)
    results = []
    for config in configs:
        stream = _stream_for(config)
        if stream is not None and observer is not None:
            observer.registry.inc("stream.replays")
        with profiler.phase("simulate"):
            results.append(
                simulate(
                    program, trace, config, warmup=warmup,
                    observer=observer, stream=stream,
                )
            )
    if observer is not None:
        if plan is not None and plan.fired_soft:
            observer.registry.inc("faults.injected", plan.fired_soft)
        if artifacts.store_failures:
            observer.registry.inc(
                "artifacts.store_failures", artifacts.store_failures
            )
        return results, observer.registry.as_dict(), profiler.summary()
    return results, None, None


@dataclass
class _Batch:
    """One benchmark's unfinished work and its retry bookkeeping."""

    name: str
    entries: list[tuple[int, SimConfig]]
    attempts: int = 0
    next_delay: float = 0.0

    def payload(self, runner: ParallelRunner):
        return (
            self.name,
            tuple(config for _, config in self.entries),
            runner.trace_length,
            runner.warmup,
            runner.seed,
            runner.collect_metrics,
            runner.cache_dir,
            runner.replay,
            runner.fault_plan,
        )


class ParallelRunner:
    """Process-pool counterpart of :class:`SimulationRunner`.

    Presents the same sweep API; results are identical, only wall-clock
    differs.  Use for full-suite sweeps (Table 5-scale work); for single
    runs the in-process runner is cheaper.

    With ``collect_metrics=True`` every worker runs under its own
    :class:`Observer` (null event sink — events do not cross processes)
    and the merged counters land in :attr:`metrics`, per-phase wall-clock
    in :attr:`profile`.

    Fault tolerance is configured per-runner: ``retries`` transient
    re-attempts per batch with deterministic exponential backoff,
    ``job_timeout`` seconds of watchdog per pooled round,
    ``on_error="skip"`` to degrade failed cells to
    :class:`MissingResult` (recorded in :attr:`failures`), and
    ``checkpoint_dir`` for crash-resumable journalling.  ``fault_plan``
    injects deterministic failures for chaos testing (see
    :mod:`repro.core.faults`).
    """

    def __init__(
        self,
        trace_length: int = DEFAULT_TRACE_LENGTH,
        seed: int = 1995,
        warmup: int | None = None,
        max_workers: int | None = None,
        collect_metrics: bool = False,
        cache_dir: str | None = None,
        retries: int = 2,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        job_timeout: float | None = None,
        on_error: str = "raise",
        checkpoint_dir: str | None = None,
        fault_plan=None,
        replay: str = "auto",
        engine: str = "auto",
    ) -> None:
        if trace_length < 1:
            raise ExperimentError(f"trace_length must be >= 1: {trace_length}")
        if warmup is None:
            warmup = min(DEFAULT_WARMUP, trace_length // 4)
        if not 0 <= warmup < trace_length:
            raise ExperimentError(
                f"warmup {warmup} must lie in [0, trace_length={trace_length})"
            )
        if max_workers is not None and max_workers < 1:
            raise ExperimentError(f"max_workers must be >= 1: {max_workers}")
        if retries < 0:
            raise ExperimentError(f"retries must be >= 0: {retries}")
        if backoff_base < 0 or backoff_cap < 0:
            raise ExperimentError("backoff must be >= 0")
        if job_timeout is not None and job_timeout <= 0:
            raise ExperimentError(f"job_timeout must be > 0: {job_timeout}")
        if on_error not in ("raise", "skip"):
            raise ExperimentError(
                f"on_error must be 'raise' or 'skip': {on_error!r}"
            )
        if replay not in ("auto", "off"):
            raise ExperimentError(
                f"replay must be 'auto' or 'off': {replay!r}"
            )
        if engine not in ("auto", "event", "vector"):
            raise ExperimentError(
                f"engine must be 'auto', 'event' or 'vector': {engine!r}"
            )
        self.trace_length = trace_length
        self.seed = seed
        self.warmup = warmup
        self.max_workers = max_workers
        self.collect_metrics = collect_metrics
        #: Shared persistent artifact cache directory handed to every
        #: worker (``None`` disables caching).
        self.cache_dir = cache_dir
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.job_timeout = job_timeout
        self.on_error = on_error
        self.checkpoint_dir = checkpoint_dir
        self.fault_plan = fault_plan
        #: Prediction-stream replay mode handed to every worker
        #: (``"auto"`` replays eligible cells, ``"off"`` never does).
        self.replay = replay
        #: Engine backend override applied to every job before it is
        #: dispatched (``"auto"`` leaves configs untouched; see
        #: ``SimulationRunner``): workers then route each cell through
        #: the ``build_engine`` seam as usual.
        self.engine = engine
        #: Merged worker metrics from the most recent ``run_jobs`` (always
        #: a registry; empty unless ``collect_metrics`` or the sweep
        #: needed fault-tolerance machinery, whose ``sweep.*`` counters
        #: always publish).
        self.metrics = MetricsRegistry()
        #: Merged worker phase profile from the most recent ``run_jobs``.
        self.profile = PhaseProfiler()
        #: Structured failure report from the most recent ``run_jobs``
        #: (non-empty only under ``on_error="skip"``).
        self.failures: list[SweepFailure] = []

    def _effective_config(self, config: SimConfig) -> SimConfig:
        """*config* with the runner's engine-backend override applied."""
        if self.engine == "auto" or config.engine_backend == self.engine:
            return config
        if self.engine == "vector" and (
            config.policy_schedule != "static"
            or config.adaptive_interval is not None
        ):
            # Mirrors SimulationRunner._effective_config: vector cannot
            # honour per-interval schedules, so adaptive cells keep their
            # own backend instead of building an invalid SimConfig.
            return config
        return replace(config, engine_backend=self.engine)

    # -- fault-tolerant execution -------------------------------------------

    def run_jobs(
        self, jobs: Iterable[tuple[str, SimConfig]]
    ) -> list[SimulationResult]:
        """Run ``(benchmark, config)`` jobs; results in job order.

        A worker failure is retried (transient causes) up to ``retries``
        times, then re-raised as :class:`ExperimentError` naming the
        benchmark whose jobs crashed (the original exception is chained)
        — or, under ``on_error="skip"``, recorded in :attr:`failures`
        with the affected cells returned as :class:`MissingResult`.
        """
        jobs = list(jobs)
        self.metrics = MetricsRegistry()
        self.profile = PhaseProfiler()
        self.failures = []
        if not jobs:
            return []
        journal = CheckpointJournal(self.checkpoint_dir)
        results: list[SimulationResult | None] = [None] * len(jobs)
        # Satisfy journalled cells first (checkpoint/resume), then group
        # the remainder by benchmark, remembering original positions.
        grouped: dict[str, _Batch] = {}
        for position, (name, config) in enumerate(jobs):
            config = self._effective_config(config)
            if journal.enabled:
                hit = journal.load(
                    name, config, self.trace_length, self.warmup, self.seed
                )
                if hit is not None:
                    results[position] = hit
                    self.metrics.inc("checkpoint.hits")
                    continue
            batch = grouped.get(name)
            if batch is None:
                batch = grouped[name] = _Batch(name=name, entries=[])
            batch.entries.append((position, config))
        batches = list(grouped.values())
        if batches:
            if self.max_workers == 1 or len(batches) == 1:
                self._run_in_process(batches, results, journal)
            else:
                self._run_pooled(batches, results, journal)
        missing = [
            i for i, r in enumerate(results) if r is None
        ]
        if missing:  # pragma: no cover - defensive
            raise ExperimentError(f"jobs {missing} produced no result")
        return results  # type: ignore[return-value]

    def _run_in_process(
        self,
        batches: Sequence[_Batch],
        results: list,
        journal: CheckpointJournal,
    ) -> None:
        """Single-process path (``max_workers=1`` or one batch).

        Same retry/skip semantics as the pooled path, minus the watchdog
        (an in-process batch cannot be killed from outside; use the pool
        or the serial runner's signal-based watchdog for that).
        """
        queue: deque[_Batch] = deque(batches)
        while queue:
            batch = queue.popleft()
            self._pause_before_retry(batch)
            try:
                ret = _run_benchmark_jobs(batch.payload(self))
            except Exception as exc:
                self._register_failure(batch, exc, queue, results)
                continue
            self._complete_batch(batch, ret, results, journal)

    def _run_pooled(
        self,
        batches: Sequence[_Batch],
        results: list,
        journal: CheckpointJournal,
    ) -> None:
        """Pool path: submit rounds, watchdog each round, rebuild on damage."""
        queue: deque[_Batch] = deque(batches)
        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        try:
            while queue:
                round_batches = list(queue)
                queue.clear()
                delay = max(b.next_delay for b in round_batches)
                if delay > 0:
                    _sleep(delay)
                for batch in round_batches:
                    batch.next_delay = 0.0
                futures = [
                    (batch, pool.submit(_run_benchmark_jobs, batch.payload(self)))
                    for batch in round_batches
                ]
                done, _ = wait(
                    [future for _, future in futures],
                    timeout=self.job_timeout,
                    return_when=FIRST_EXCEPTION
                    if self.on_error == "raise" and self.retries == 0
                    else "ALL_COMPLETED",
                )
                # Process finished batches first: a fail-fast raise must
                # happen before any still-running future could be
                # mislabelled as hung below.
                rebuild = False
                for batch, future in futures:
                    if future not in done:
                        continue
                    try:
                        ret = future.result()
                    except Exception as exc:
                        rebuild = rebuild or isinstance(exc, BrokenExecutor)
                        self._register_failure(batch, exc, queue, results)
                        continue
                    self._complete_batch(batch, ret, results, journal)
                hung: list[_Batch] = []
                for batch, future in futures:
                    if future in done:
                        continue
                    if future.cancel():
                        # Never started (queued behind a hung worker):
                        # requeue at no cost to the batch's retry budget.
                        queue.append(batch)
                    else:
                        hung.append(batch)
                if hung:
                    self.metrics.inc("sweep.timeouts", len(hung))
                    rebuild = True
                    for batch in hung:
                        timeout_exc = JobTimeoutError(
                            f"batch for benchmark {batch.name!r} exceeded "
                            f"job_timeout={self.job_timeout}s and was killed"
                        )
                        self._register_failure(
                            batch, timeout_exc, queue, results
                        )
                if rebuild:
                    # A broken or watchdog-killed pool can strand workers;
                    # tear it down hard and start fresh for the requeue.
                    self._terminate_pool(pool)
                    if queue:
                        pool = ProcessPoolExecutor(max_workers=self.max_workers)
                        self.metrics.inc("sweep.pool_rebuilds")
        except BaseException:
            # Fail-fast exit (or interrupt): cancel outstanding work so a
            # failed sweep does not keep burning cores behind the raise.
            self._terminate_pool(pool)
            raise
        else:
            self._terminate_pool(pool)

    # -- shared bookkeeping --------------------------------------------------

    def _pause_before_retry(self, batch: _Batch) -> None:
        if batch.next_delay > 0:
            _sleep(batch.next_delay)
            batch.next_delay = 0.0

    def _register_failure(
        self,
        batch: _Batch,
        exc: Exception,
        queue: deque,
        results: list,
    ) -> None:
        """Retry, skip, or raise for one failed batch attempt."""
        batch.attempts += 1
        transient = is_transient(exc)
        if transient and batch.attempts <= self.retries:
            batch.next_delay = min(
                self.backoff_base * (2 ** (batch.attempts - 1)),
                self.backoff_cap,
            )
            self.metrics.inc("sweep.retries")
            queue.append(batch)
            return
        if self.on_error == "skip":
            self.failures.append(
                SweepFailure(
                    benchmark=batch.name,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=batch.attempts,
                    transient=transient,
                    cells=len(batch.entries),
                )
            )
            self.metrics.inc("sweep.skipped_cells", len(batch.entries))
            for position, config in batch.entries:
                results[position] = MissingResult(
                    program=batch.name, config=config
                )
            return
        if isinstance(exc, ExperimentError):
            raise exc
        raise self._worker_error(batch.name, exc) from exc

    def _complete_batch(
        self,
        batch: _Batch,
        ret: _WorkerReturn,
        results: list,
        journal: CheckpointJournal,
    ) -> None:
        """Scatter one finished batch into the result list (+ journal)."""
        batch_results, registry_dict, profile_summary = ret
        # strict=: a lost or duplicated worker result must fail loudly
        # here, not surface later as a None result or dropped configs.
        if len(batch_results) != len(batch.entries):
            raise ExperimentError(
                f"worker for benchmark {batch.name!r} returned "
                f"{len(batch_results)} results for {len(batch.entries)} "
                f"configurations"
            )
        for (position, config), result in zip(
            batch.entries, batch_results, strict=True
        ):
            results[position] = result
            if journal.enabled:
                journal.store(
                    batch.name, config, self.trace_length, self.warmup,
                    self.seed, result,
                )
                self.metrics.inc("checkpoint.stores")
        if registry_dict is not None:
            self.metrics.merge(MetricsRegistry.from_dict(registry_dict))
        if profile_summary is not None:
            self.profile.merge_summary(profile_summary)

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Shut a pool down hard: cancel queued work, kill live workers."""
        pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            with contextlib.suppress(Exception):
                proc.terminate()
        for proc in list(processes.values()):
            with contextlib.suppress(Exception):
                proc.join(timeout=5)

    @staticmethod
    def _worker_error(name: str, exc: Exception) -> ExperimentError:
        """Wrap a worker crash, preserving which benchmark it belongs to."""
        error = ExperimentError(
            f"parallel worker failed for benchmark {name!r}: "
            f"{type(exc).__name__}: {exc}"
        )
        error.benchmark = name
        return error

    def run_matrix(
        self,
        names: Sequence[str],
        config: SimConfig,
        policies: Sequence[FetchPolicy] = ALL_POLICIES,
    ) -> dict[str, dict[FetchPolicy, SimulationResult]]:
        """Parallel benchmark x policy matrix (same shape as the serial
        runner's)."""
        jobs = [
            (name, config.with_policy(policy))
            for name in names
            for policy in policies
        ]
        results = self.run_jobs(jobs)
        matrix: dict[str, dict[FetchPolicy, SimulationResult]] = {}
        index = 0
        for name in names:
            matrix[name] = {}
            for policy in policies:
                matrix[name][policy] = results[index]
                index += 1
        return matrix
