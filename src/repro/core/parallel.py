"""Multi-process simulation sweeps.

Experiment sweeps are embarrassingly parallel across benchmarks (each
(program, trace) pair is independent), and the pure-Python engine is
CPU-bound, so a process pool gives near-linear speedups for the big
tables.  Jobs are grouped by benchmark so each worker builds a workload
and generates its trace once, then replays it through all of that
benchmark's configurations — the same amortisation the in-process
:class:`~repro.core.runner.SimulationRunner` gets from its caches.

Determinism is preserved: a parallel sweep returns bit-identical results
to the serial runner for the same (trace_length, seed, warmup), and — with
``collect_metrics=True`` — a metrics registry identical to a serial
observed sweep: each worker publishes into its own registry and the parent
merges them in job-submission order (counter merge is commutative, so any
order would do; the fixed order also keeps profiles deterministic).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.config import ALL_POLICIES, FetchPolicy, SimConfig
from repro.core.engine import simulate
from repro.core.results import SimulationResult
from repro.core.runner import DEFAULT_TRACE_LENGTH, DEFAULT_WARMUP
from repro.errors import ExperimentError
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer
from repro.obs.profile import PhaseProfiler

#: Worker payload: (results, metrics-registry dict or None, profile
#: summary or None).  Registries cross the process boundary as plain
#: dicts (via ``MetricsRegistry.as_dict``) to keep pickling trivial.
_WorkerReturn = tuple[
    list[SimulationResult],
    dict[str, object] | None,
    dict[str, dict[str, float]] | None,
]


def _run_benchmark_jobs(
    args: tuple[str, tuple[SimConfig, ...], int, int, int, bool, str | None],
) -> _WorkerReturn:
    """Worker: one benchmark, many configurations (runs in a subprocess)."""
    name, configs, trace_length, warmup, seed, collect, cache_dir = args
    from repro.core.artifacts import ArtifactCache
    from repro.program.workloads import build_workload
    from repro.trace.generator import generate_trace

    observer = Observer(profiler=PhaseProfiler()) if collect else None
    profiler = observer.profiler if observer is not None else PhaseProfiler()
    # Mirror SimulationRunner exactly: the runner seed perturbs both the
    # structure and the trace, so serial and parallel sweeps agree; the
    # shared on-disk artifact cache (atomic writes) lets every worker of
    # every sweep skip the build/generate phases after the first process.
    artifacts = ArtifactCache(cache_dir)
    pair = None
    if artifacts.enabled:
        with profiler.phase("artifact_cache"):
            pair = artifacts.load(name, trace_length, seed)
    if pair is not None:
        program, trace = pair
    else:
        with profiler.phase("build_program"):
            program = build_workload(name, seed=seed)
        with profiler.phase("generate_trace"):
            trace = generate_trace(program, trace_length, seed=seed)
        if artifacts.enabled:
            artifacts.store(name, trace_length, seed, program, trace)
    with profiler.phase("simulate"):
        results = [
            simulate(program, trace, config, warmup=warmup, observer=observer)
            for config in configs
        ]
    if observer is not None:
        return results, observer.registry.as_dict(), profiler.summary()
    return results, None, None


class ParallelRunner:
    """Process-pool counterpart of :class:`SimulationRunner`.

    Presents the same sweep API; results are identical, only wall-clock
    differs.  Use for full-suite sweeps (Table 5-scale work); for single
    runs the in-process runner is cheaper.

    With ``collect_metrics=True`` every worker runs under its own
    :class:`Observer` (null event sink — events do not cross processes)
    and the merged counters land in :attr:`metrics`, per-phase wall-clock
    in :attr:`profile`.
    """

    def __init__(
        self,
        trace_length: int = DEFAULT_TRACE_LENGTH,
        seed: int = 1995,
        warmup: int | None = None,
        max_workers: int | None = None,
        collect_metrics: bool = False,
        cache_dir: str | None = None,
    ) -> None:
        if trace_length < 1:
            raise ExperimentError(f"trace_length must be >= 1: {trace_length}")
        if warmup is None:
            warmup = min(DEFAULT_WARMUP, trace_length // 4)
        if not 0 <= warmup < trace_length:
            raise ExperimentError(
                f"warmup {warmup} must lie in [0, trace_length={trace_length})"
            )
        if max_workers is not None and max_workers < 1:
            raise ExperimentError(f"max_workers must be >= 1: {max_workers}")
        self.trace_length = trace_length
        self.seed = seed
        self.warmup = warmup
        self.max_workers = max_workers
        self.collect_metrics = collect_metrics
        #: Shared persistent artifact cache directory handed to every
        #: worker (``None`` disables caching).
        self.cache_dir = cache_dir
        #: Merged worker metrics from the most recent ``run_jobs`` (always
        #: a registry; empty unless ``collect_metrics``).
        self.metrics = MetricsRegistry()
        #: Merged worker phase profile from the most recent ``run_jobs``.
        self.profile = PhaseProfiler()

    def run_jobs(
        self, jobs: Iterable[tuple[str, SimConfig]]
    ) -> list[SimulationResult]:
        """Run ``(benchmark, config)`` jobs; results in job order.

        A worker failure is re-raised as :class:`ExperimentError` naming
        the benchmark whose jobs crashed (the original exception is
        chained), so a sweep over dozens of configurations points straight
        at the offending workload.
        """
        jobs = list(jobs)
        self.metrics = MetricsRegistry()
        self.profile = PhaseProfiler()
        if not jobs:
            return []
        # Group by benchmark, remembering each job's original position.
        grouped: dict[str, list[tuple[int, SimConfig]]] = {}
        for position, (name, config) in enumerate(jobs):
            grouped.setdefault(name, []).append((position, config))
        work = [
            (
                name,
                tuple(config for _, config in entries),
                self.trace_length,
                self.warmup,
                self.seed,
                self.collect_metrics,
                self.cache_dir,
            )
            for name, entries in grouped.items()
        ]
        results: list[SimulationResult | None] = [None] * len(jobs)
        batches: list[_WorkerReturn] = []
        if self.max_workers == 1 or len(work) == 1:
            for item in work:
                try:
                    batches.append(_run_benchmark_jobs(item))
                except ExperimentError:
                    raise
                except Exception as exc:
                    raise self._worker_error(item[0], exc) from exc
        else:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [
                    (item[0], pool.submit(_run_benchmark_jobs, item))
                    for item in work
                ]
                for name, future in futures:
                    try:
                        batches.append(future.result())
                    except ExperimentError:
                        raise
                    except Exception as exc:
                        raise self._worker_error(name, exc) from exc
        # strict=: a lost or duplicated worker batch must fail loudly here,
        # not surface later as a None result or silently-dropped configs.
        for (name, entries), (batch, registry_dict, profile_summary) in zip(
            grouped.items(), batches, strict=True
        ):
            if len(batch) != len(entries):
                raise ExperimentError(
                    f"worker for benchmark {name!r} returned {len(batch)} "
                    f"results for {len(entries)} configurations"
                )
            for (position, _), result in zip(entries, batch, strict=True):
                results[position] = result
            if registry_dict is not None:
                self.metrics.merge(MetricsRegistry.from_dict(registry_dict))
            if profile_summary is not None:
                self.profile.merge_summary(profile_summary)
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:  # pragma: no cover - defensive
            raise ExperimentError(f"jobs {missing} produced no result")
        return results  # type: ignore[return-value]

    @staticmethod
    def _worker_error(name: str, exc: Exception) -> ExperimentError:
        """Wrap a worker crash, preserving which benchmark it belongs to."""
        error = ExperimentError(
            f"parallel worker failed for benchmark {name!r}: "
            f"{type(exc).__name__}: {exc}"
        )
        error.benchmark = name
        return error

    def run_matrix(
        self,
        names: Sequence[str],
        config: SimConfig,
        policies: Sequence[FetchPolicy] = ALL_POLICIES,
    ) -> dict[str, dict[FetchPolicy, SimulationResult]]:
        """Parallel benchmark x policy matrix (same shape as the serial
        runner's)."""
        jobs = [
            (name, config.with_policy(policy))
            for name in names
            for policy in policies
        ]
        results = self.run_jobs(jobs)
        matrix: dict[str, dict[FetchPolicy, SimulationResult]] = {}
        index = 0
        for name in names:
            matrix[name] = {}
            for policy in policies:
                matrix[name][policy] = results[index]
                index += 1
        return matrix
