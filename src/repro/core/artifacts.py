"""Persistent on-disk cache of built programs and generated traces.

Sweeps re-build the same synthetic programs and re-generate the same
traces in every process that runs them — serial runners, every parallel
worker, every benchmark invocation.  Both artifacts are pure functions of
their inputs (``build_workload`` is deterministic; a trace is determined
by ``(program, n_instructions, seed)`` and the generation algorithm), so
they can be cached on disk across processes *and* process generations.

Layout (one directory per keyed artifact pair)::

    <cache_dir>/v<CACHE_FORMAT_VERSION>/<workload>/<key>/
        program.pkl   # pickled Program
        trace.npz     # trace/io.py npz format

where ``<key>`` is ``t<trace_length>-s<seed>-g<GENERATOR_VERSION>``.
Invalidation is by construction: any input that could change the bytes is
part of the path, so a bumped ``GENERATOR_VERSION`` or a different
``(trace_length, seed)`` simply misses and regenerates.  Nothing is ever
reused across a format bump.

Writes are atomic (temp file + ``os.replace``) so concurrent workers can
share one cache directory: the worst case under a race is building the
same artifact twice, never reading a half-written one.  Corrupt entries
(truncated files, unpicklable programs) are treated as misses and
overwritten, not errors.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import re
import shutil
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.branch.stream import STREAM_FORMAT_VERSION, PredictionStream
from repro.errors import ExperimentError, TraceError
from repro.program.program import Program
from repro.trace.event import Trace
from repro.trace.generator import GENERATOR_VERSION, generate_trace
from repro.trace.io import load_trace, save_trace

#: On-disk layout version.  Bump when the file formats or the key scheme
#: change; old trees are simply never read again.
CACHE_FORMAT_VERSION = 1

_PROGRAM_FILE = "program.pkl"
_TRACE_FILE = "trace.npz"

#: Entry-key shape: t<trace_length>-s<seed>-g<GENERATOR_VERSION>.
_ENTRY_KEY_RE = re.compile(r"^t\d+-s-?\d+-g(\d+)$")
#: Stream-subdirectory shape: stream-f<STREAM_FORMAT_VERSION>-<digest>.
_STREAM_DIR_RE = re.compile(r"^stream-f(\d+)-[0-9a-f]+$")


@dataclass(slots=True)
class PruneStats:
    """What :meth:`ArtifactCache.prune` reclaimed."""

    entries: int = 0
    bytes_freed: int = 0


class ArtifactCache:
    """Filesystem cache of ``(workload, trace_length, seed)`` artifacts.

    The cache is safe to share between concurrent processes and to keep
    across sessions.  A disabled cache (``ArtifactCache(None)``) is a
    no-op passthrough, so callers never need to branch.
    """

    def __init__(self, cache_dir: str | os.PathLike[str] | None) -> None:
        self.root: Path | None = None if cache_dir is None else Path(cache_dir)
        #: Stores that failed with an OS-level error (full disk, read-only
        #: directory, ...).  The first failure disables the cache for the
        #: rest of the run — a sweep must never die for its cache.
        self.store_failures = 0
        self._disabled = False

    @property
    def enabled(self) -> bool:
        """True when a cache directory was configured and still healthy."""
        return self.root is not None and not self._disabled

    # -- keying -------------------------------------------------------------

    def entry_dir(self, workload: str, trace_length: int, seed: int) -> Path:
        """Directory holding the artifacts for one key (may not exist)."""
        if self.root is None:
            raise ExperimentError("artifact cache is disabled (no cache_dir)")
        if not workload or "/" in workload or workload.startswith("."):
            raise ExperimentError(f"unsafe workload name {workload!r}")
        key = f"t{trace_length}-s{seed}-g{GENERATOR_VERSION}"
        return self.root / f"v{CACHE_FORMAT_VERSION}" / workload / key

    # -- lookup -------------------------------------------------------------

    def load(
        self, workload: str, trace_length: int, seed: int
    ) -> tuple[Program, Trace] | None:
        """The cached (program, trace) pair, or ``None`` on any miss.

        A corrupt or partially-deleted entry is a miss: simulation
        correctness never depends on cache contents, so the only sane
        response to damage is to regenerate.
        """
        if self.root is None or self._disabled:
            return None
        entry = self.entry_dir(workload, trace_length, seed)
        try:
            with open(entry / _PROGRAM_FILE, "rb") as fh:
                program = pickle.load(fh)
            trace = load_trace(entry / _TRACE_FILE)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, TraceError):
            # AttributeError/ImportError: pickles from an older code
            # revision whose classes moved; treat as stale, not fatal.
            return None
        if not isinstance(program, Program) or program.name != workload:
            return None
        if trace.program_name != workload or trace.seed != seed:
            return None
        if trace.n_instructions < trace_length:
            return None
        return program, trace

    # -- store --------------------------------------------------------------

    def store(
        self, workload: str, trace_length: int, seed: int,
        program: Program, trace: Trace,
    ) -> None:
        """Persist *program* and *trace* under their key (atomic).

        OS-level write failures (disk full, read-only directory) degrade
        gracefully: a warning is emitted, ``store_failures`` is counted,
        and the cache is disabled for the remainder of the run — the
        sweep itself continues uncached rather than aborting.
        """
        if self.root is None or self._disabled:
            return
        try:
            entry = self.entry_dir(workload, trace_length, seed)
            entry.mkdir(parents=True, exist_ok=True)
            _atomic_write(
                entry / _PROGRAM_FILE, pickle.dumps(program, protocol=4)
            )
            # The suffix must end in ".npz" or np.savez would append one
            # and write to a different path than the one we rename.
            fd, tmp = tempfile.mkstemp(dir=entry, suffix=".tmp.npz")
            try:
                os.close(fd)
                save_trace(trace, tmp)
                os.replace(tmp, entry / _TRACE_FILE)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        except OSError as exc:
            self.store_failures += 1
            self._disabled = True
            warnings.warn(
                f"artifact cache disabled for this run: storing "
                f"{workload!r} failed: {type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )

    # -- the one-call convenience used by the runners -----------------------

    def get_or_build(
        self, workload: str, trace_length: int, seed: int
    ) -> tuple[Program, Trace]:
        """Cached (program, trace), building + storing on a miss.

        *seed* seeds both the workload build and the trace generation,
        matching :class:`~repro.core.runner.SimulationRunner`'s use.
        """
        cached = self.load(workload, trace_length, seed)
        if cached is not None:
            return cached
        from repro.program.workloads import build_workload

        program = build_workload(workload, seed=seed)
        trace = generate_trace(program, n_instructions=trace_length, seed=seed)
        self.store(workload, trace_length, seed, program, trace)
        return program, trace

    # -- prediction streams ---------------------------------------------------

    def stream_dir(
        self, workload: str, trace_length: int, seed: int, digest: str
    ) -> Path:
        """Directory holding one recorded prediction stream (may not exist).

        Lives inside the (workload, trace_length, seed) entry so trace
        invalidation sweeps its streams along; the stream format version
        and branch-config digest complete the key.
        """
        return self.entry_dir(workload, trace_length, seed) / (
            f"stream-f{STREAM_FORMAT_VERSION}-{digest}"
        )

    def load_stream(
        self,
        workload: str,
        trace_length: int,
        seed: int,
        digest: str,
        mmap: bool = False,
    ) -> PredictionStream | None:
        """The cached prediction stream, or ``None`` on any miss.

        Corruption (truncated arrays, bad metadata, mismatched identity)
        is a miss — the stream is rebuilt, never trusted.  ``mmap=True``
        maps the arrays read-only (zero-copy for parallel workers).
        """
        if self.root is None or self._disabled:
            return None
        directory = self.stream_dir(workload, trace_length, seed, digest)
        try:
            stream = PredictionStream.load(directory, mmap=mmap)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if (
            stream.program_name != workload
            or stream.trace_seed != seed
            or stream.digest != digest
            or stream.trace_instructions < trace_length
        ):
            return None
        return stream

    def store_stream(
        self,
        workload: str,
        trace_length: int,
        seed: int,
        stream: PredictionStream,
    ) -> None:
        """Persist *stream* under its key (atomic; failures degrade).

        Same failure policy as :meth:`store`: an OS-level error counts a
        store failure and disables the cache for the rest of the run.
        """
        if self.root is None or self._disabled:
            return
        try:
            directory = self.stream_dir(workload, trace_length, seed, stream.digest)
            stream.save(directory)
        except OSError as exc:
            self.store_failures += 1
            self._disabled = True
            warnings.warn(
                f"artifact cache disabled for this run: storing stream for "
                f"{workload!r} failed: {type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )

    # -- maintenance ----------------------------------------------------------

    def prune(self) -> PruneStats:
        """Delete entries no current reader can ever hit.

        Reclaims three kinds of garbage that otherwise grow without
        bound across code revisions:

        * version trees other than ``v<CACHE_FORMAT_VERSION>``;
        * entry directories keyed by a different ``GENERATOR_VERSION``
          (plus unrecognised entry names — debris from older layouts);
        * stream subdirectories with a different ``STREAM_FORMAT_VERSION``.

        Current-format entries are untouched.  Deletion errors are
        swallowed (concurrent access, permissions): prune is best-effort
        housekeeping, never correctness.
        """
        stats = PruneStats()
        if self.root is None or not self.root.is_dir():
            return stats
        current = f"v{CACHE_FORMAT_VERSION}"
        for version_dir in sorted(self.root.iterdir()):
            if not version_dir.is_dir() or not version_dir.name.startswith("v"):
                continue
            if version_dir.name != current:
                self._prune_tree(version_dir, stats)
                continue
            for workload_dir in sorted(version_dir.iterdir()):
                if not workload_dir.is_dir():
                    continue
                for entry in sorted(workload_dir.iterdir()):
                    if not entry.is_dir():
                        continue
                    match = _ENTRY_KEY_RE.match(entry.name)
                    if match is None or int(match.group(1)) != GENERATOR_VERSION:
                        self._prune_tree(entry, stats)
                        continue
                    for sub in sorted(entry.iterdir()):
                        if not sub.is_dir():
                            continue
                        stream_match = _STREAM_DIR_RE.match(sub.name)
                        if stream_match is not None and (
                            int(stream_match.group(1)) != STREAM_FORMAT_VERSION
                        ):
                            self._prune_tree(sub, stats)
        return stats

    @staticmethod
    def _prune_tree(path: Path, stats: PruneStats) -> None:
        """Remove one stale tree, accumulating its size into *stats*."""
        freed = 0
        with contextlib.suppress(OSError):
            for dirpath, _dirnames, filenames in os.walk(path):
                for filename in filenames:
                    with contextlib.suppress(OSError):
                        freed += os.path.getsize(os.path.join(dirpath, filename))
        shutil.rmtree(path, ignore_errors=True)
        stats.entries += 1
        stats.bytes_freed += freed


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write *payload* to *path* via a same-directory temp file + rename."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
