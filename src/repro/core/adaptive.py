"""The adaptive driver: controller-driven per-interval policy runs.

:class:`AdaptiveEngine` honours the two schedules the plain event loop
cannot (``schedule.driver_required``), both built on the warm-state
primitives of :class:`~repro.core.engine.FetchEngine` — ``fork`` (deep
copy of the warm machine), ``set_policy`` (interval-boundary policy
swap), and ``_run_span`` (the hot loop over one interval's records):

* **tournament** — the committed timeline runs the controller's
  incumbent; every other candidate runs the same interval on a fork of
  the pre-interval state (a *shadow* run).  The measured and shadow
  per-interval ISPIs feed
  :meth:`~repro.core.schedule.TournamentController.update`, which
  switches the incumbent at the boundary once a challenger has beaten it
  by the margin for the hysteresis streak.

* **oracle** — every candidate runs each interval on its own fork of the
  same warm state; the interval is then committed under the winner
  (fewest penalty slots, candidate order breaking ties).  This is the
  adaptive upper bound: no realizable controller can beat a per-interval
  argmin taken with hindsight from identical warm state.

The committed timeline always lives on the wrapped engine, so events,
distribution samples, metric publication, and result construction go
through the exact same code path as a plain event-loop run.  Shadow
forks are observation-free by construction (``fork`` strips sinks) and
are discarded after their interval.  Construct only through
``build_engine`` (SIM011).
"""

from __future__ import annotations

from repro.config import FetchPolicy
from repro.core.results import SimulationResult
from repro.core.schedule import (
    OracleSchedule,
    TournamentController,
    interval_spans,
)
from repro.errors import SimulationError
from repro.trace.event import Trace


class AdaptiveEngine:
    """Driver for controller-driven (tournament / oracle) schedules."""

    backend = "adaptive"

    def __init__(self, inner) -> None:
        self.inner = inner
        self.program = inner.program
        self.config = inner.config
        self.observer = inner.observer
        self.schedule = inner.schedule
        if not self.schedule.driver_required:
            raise SimulationError(
                f"policy_schedule={self.config.policy_schedule!r} does "
                "not need the adaptive driver; run the engine directly"
            )

    # -- entry point ---------------------------------------------------------

    def run(self, trace: Trace, warmup_instructions: int = 0) -> SimulationResult:
        """Simulate *trace*; same contract as the event loop's ``run``."""
        inner = self.inner
        if trace.program_name != inner.program.name:
            raise SimulationError(
                f"trace is for {trace.program_name!r}, "
                f"engine built for {inner.program.name!r}"
            )
        if warmup_instructions < 0:
            raise SimulationError(f"negative warmup {warmup_instructions}")
        if warmup_instructions >= trace.n_instructions:
            raise SimulationError(
                f"warmup {warmup_instructions} consumes the whole trace "
                f"({trace.n_instructions} instructions)"
            )
        if inner._replay:
            inner.unit.rewind()
            inner.unit.stream.require_trace(trace)
        inner._tau = 0
        inner.interval_log = []
        records = trace.records
        spans = interval_spans(records, self.config.adaptive_interval)
        if isinstance(self.schedule, TournamentController):
            t = self._run_tournament(records, spans, warmup_instructions)
        elif isinstance(self.schedule, OracleSchedule):
            t = self._run_oracle(records, spans, warmup_instructions)
        else:
            raise SimulationError(
                f"unknown driver schedule {type(self.schedule).__name__}"
            )
        inner._finish_run(t)
        return inner._build_result(trace)

    # -- shadow primitives ---------------------------------------------------

    def _shadow_interval(
        self,
        fork,
        policy: FetchPolicy,
        span: tuple[int, int],
        records,
        index: int,
        t: int,
        warm_left: int,
        reset: bool,
    ):
        """Run one interval on *fork* under *policy*.

        Returns ``(stats, end_t, end_warm)`` — the interval's stats plus
        the fork's advanced clock and warmup remainder, so the oracle can
        adopt the winning fork's end state without re-simulating.
        """
        lo, hi = span
        fork.set_policy(policy)
        snapshot = fork.snapshot_stats()
        end_t, end_warm = fork._run_span(records[lo:hi], t, warm_left)
        self.inner.shadow_runs += 1
        return fork.interval_delta(index, snapshot, reset=reset), end_t, end_warm

    # -- the two drivers ----------------------------------------------------

    def _run_tournament(self, records, spans, warmup_instructions: int) -> int:
        """Committed incumbent + shadow challengers per interval."""
        inner = self.inner
        controller = self.schedule
        t = 0
        warm_left = warmup_instructions
        for k, (lo, hi) in enumerate(spans):
            incumbent = controller.policy_for(k)
            inner.set_policy(incumbent, t=t, interval=k)
            # Fork the pre-interval warm state for every challenger
            # before the committed run disturbs it.
            shadows = [
                (policy, inner.fork())
                for policy in controller.candidates
                if policy is not incumbent
            ]
            snapshot = inner.snapshot_stats()
            warm_before = warm_left
            t_before = t
            t, warm_left = inner._run_span(records[lo:hi], t, warm_left)
            reset = warm_before > 0 and warm_left <= 0
            stats = inner.interval_delta(k, snapshot, reset=reset)
            inner.commit_interval(stats, reset=reset)
            estimates = {incumbent: stats.ispi}
            for policy, fork in shadows:
                shadow, _, _ = self._shadow_interval(
                    fork, policy, (lo, hi), records, k, t_before,
                    warm_before, reset,
                )
                estimates[policy] = shadow.ispi
            controller.update(estimates)
        return t

    def _run_oracle(self, records, spans, warmup_instructions: int) -> int:
        """Best-of-all-candidates per interval, from identical warm state.

        Every candidate (including the eventual winner) runs the interval
        on its own fork; the winner's fork is then *adopted* as the
        committed timeline (:meth:`~repro.core.engine.FetchEngine.adopt`)
        — the simulation is deterministic, so re-running the winning
        interval on the committed engine would reproduce the adopted
        state bit for bit while costing one extra simulation per
        interval.  Under a live observer, forks carry no sinks or
        distribution buffers, so the driver falls back to exactly that
        re-run (the committed pass is what emits events and samples);
        results are identical either way, which the differential suite
        asserts.
        """
        inner = self.inner
        candidates = self.schedule.candidates
        adopt = inner.observer is None
        t = 0
        warm_left = warmup_instructions
        for k, (lo, hi) in enumerate(spans):
            warm_before = warm_left
            # A fork per candidate; every one replays the same interval
            # from the same warm state.  The reset flag is policy
            # independent (warmup is counted in instructions), so probe
            # it on the first candidate's stats via the shared warm path.
            best = None
            best_slots = None
            reset = warm_before > 0 and warm_before - _span_instructions(
                records, lo, hi
            ) <= 0
            for policy in candidates:
                fork = inner.fork()
                stats, end_t, end_warm = self._shadow_interval(
                    fork, policy, (lo, hi), records, k, t, warm_before, reset
                )
                if best_slots is None or stats.penalty_slots < best_slots:
                    best = (policy, fork, stats, end_t, end_warm)
                    best_slots = stats.penalty_slots
            best_policy, best_fork, stats, end_t, end_warm = best
            if adopt:
                inner.adopt(best_fork)
                t, warm_left = end_t, end_warm
            else:
                inner.set_policy(best_policy, t=t, interval=k)
                snapshot = inner.snapshot_stats()
                t, warm_left = inner._run_span(records[lo:hi], t, warm_left)
                stats = inner.interval_delta(k, snapshot, reset=reset)
            inner.commit_interval(stats, reset=reset)
            self.schedule.observe(stats)
        return t


def _span_instructions(records, lo: int, hi: int) -> int:
    """Instruction count of the record span [lo, hi)."""
    return sum(records[i].length for i in range(lo, hi))
