"""Vectorized batch engine backend over replayed prediction streams.

The event-loop engine (:mod:`repro.core.engine`) dispatches one Python
bytecode sequence per basic block; with prediction-stream replay (PR 5)
the branch outcomes are already materialized as NumPy arrays, so for
replay-eligible cells the remaining interpreter overhead is pure
bookkeeping.  This module removes it: the trace is lowered once into a
flat *probe stream* (one entry per cache-line access the event loop
would make), segmented at the replayed redirect boundaries, and the
i-cache state between redirects is advanced with NumPy kernels —
set-index/tag arithmetic, bulk tag matching with find-first-miss,
LRU-stack span updates, and latency accumulation over whole runs.
Misses, wrong-path walks and the single-slot fill station fall back to
exact scalar mirrors of the event-loop code, so every counter and every
stall slot is reproduced **bit-identically** (enforced by
tests/core/test_engine_backends.py and the hypothesis kernel suite).

Eligibility is stricter than replay eligibility: timing-coupled
front-end extensions (prefetchers, stream buffers, L2, multi-entry fill
stations, the lockstep miss classifier) interleave with the fetch clock
in ways that have no batch formulation here, so those cells keep the
event loop.  ``build_engine`` (repro.core.engine) makes the choice; the
published EXPERIMENTS numbers all run through the event loop and are
unchanged by construction.

The depth-gate model
--------------------

The event loop gates conditional-branch fetch on a FIFO of unresolved
branches, popping entries as the clock passes their resolve times.  The
vector backend keeps only the last ``max_unresolved`` *append* times
(``recent``): because resolve times are strictly increasing and pops
only happen at ``now <= t``, the queue is full at a gate point iff the
``max_unresolved``-th most recent resolve time still lies in the future
— i.e. ``len(recent) == depth and recent[0] > t``.  The same argument
makes ``recent[-1]`` equivalent to the live queue's tail for the
Pessimistic force-resolve guard: a popped tail satisfies
``recent[-1] <= t`` and can never raise the guard above ``t``.
"""

from __future__ import annotations

import numpy as np

from repro.branch.stream import replay_eligible
from repro.branch.unit import BranchStats
from repro.config import FetchPolicy, SimConfig
from repro.core.results import EngineCounters, PenaltyAccumulator, SimulationResult
from repro.core.wrongpath import iter_lines_from_runs
from repro.errors import SimulationError
from repro.isa import INSTRUCTION_SIZE, InstrKind
from repro.trace.event import Trace

_PLAIN = int(InstrKind.PLAIN)
_COND = int(InstrKind.COND_BRANCH)

#: Line-origin codes in the NumPy tag mirror (the eligible cells never
#: prefetch, so LineOrigin.PREFETCH has no code here).
_ORG_RIGHT = 0
_ORG_WRONG = 1

#: Segments shorter than this many probes are walked one probe at a time
#: through the scalar mirror; per-window NumPy call overhead (~2us per
#: array op) exceeds the vectorization win below roughly this size.
_SCALAR_SEGMENT = 32


def vector_eligible(config: SimConfig) -> bool:
    """Can *config* run on the vectorized backend (given a stream)?

    Replay eligibility is necessary (the backend consumes the recorded
    outcome arrays); on top of that, every timing-coupled front-end
    extension disqualifies the cell — those paths interleave with the
    fetch clock per probe and only exist in the event loop.  So does the
    per-interval policy machinery: the batch kernels assume one policy
    for the whole run and record no interval stats.
    """
    return (
        replay_eligible(config)
        and not config.prefetch
        and not config.target_prefetch
        and config.stream_buffers == 0
        and not config.classify
        and config.l2_size_bytes is None
        and config.fill_buffers == 1
        and config.policy_schedule == "static"
        and config.adaptive_interval is None
    )


# -- kernels -----------------------------------------------------------------
#
# Each kernel is pure (or mutates only its designated state arrays) and
# has a straight-Python reference implementation in
# tests/properties/test_vector_kernels.py.


def split_sets(lines, set_mask: int, set_shift: int):
    """Set-index / tag split of an array of line numbers."""
    lines = np.asarray(lines, dtype=np.int64)
    return lines & set_mask, lines >> set_shift


def expand_runs(run_pc, run_n, line_size: int):
    """Expand instruction runs into per-line probes.

    Mirrors the event loop's ``_issue_run`` chunking: a run of *n*
    instructions starting at *pc* probes each cache line it touches
    once, issuing ``min(per_line - idx % per_line, remaining)``
    instructions from it.  Returns ``(probe_run, probe_line,
    probe_chunk)`` with one entry per probe.
    """
    run_pc = np.asarray(run_pc, dtype=np.int64)
    run_n = np.asarray(run_n, dtype=np.int64)
    shift = line_size.bit_length() - 1
    first = run_pc >> shift
    last = (run_pc + (run_n - 1) * INSTRUCTION_SIZE) >> shift
    count = last - first + 1
    total = int(count.sum())
    probe_run = np.repeat(np.arange(len(run_pc), dtype=np.int64), count)
    offsets = np.cumsum(count) - count
    within = np.arange(total, dtype=np.int64) - offsets[probe_run]
    probe_line = first[probe_run] + within
    per_line = line_size // INSTRUCTION_SIZE
    idx0 = run_pc // INSTRUCTION_SIZE
    lo = np.maximum(probe_line * per_line, idx0[probe_run])
    hi = np.minimum((probe_line + 1) * per_line, idx0[probe_run] + run_n[probe_run])
    probe_chunk = hi - lo
    return probe_run, probe_line, probe_chunk


def match_tags(tag_state, sets, tags):
    """Bulk tag match: hit mask for probes against the tag mirror.

    ``tag_state`` is either the direct-mapped per-set tag array (1-D,
    ``-1`` = empty) or the set-associative ``(n_sets, assoc)`` table
    (invalid ways hold ``-1``; real tags are non-negative).
    """
    state = np.asarray(tag_state)
    sets = np.asarray(sets, dtype=np.int64)
    tags = np.asarray(tags, dtype=np.int64)
    if state.ndim == 1:
        return state[sets] == tags
    return (state[sets] == tags[:, None]).any(axis=1)


def lru_update_spans(tag_table, origin_table, counts, sets, tags) -> None:
    """Apply a hit-only access span to the LRU tag table, in place.

    Every ``(set, tag)`` access must be a hit.  Sequentially moving each
    accessed way to the MRU slot leaves: untouched ways first in their
    original relative order, then the touched tags ordered by *last*
    access.  The kernel computes that final arrangement directly —
    last-access order per set via a lexsort — instead of replaying the
    accesses one by one.
    """
    sets = np.asarray(sets, dtype=np.int64)
    tags = np.asarray(tags, dtype=np.int64)
    if sets.size == 0:
        return
    pos = np.arange(sets.size)
    order = np.lexsort((pos, tags, sets))
    s = sets[order]
    g = tags[order]
    p = pos[order]
    last = np.ones(s.size, dtype=bool)
    last[:-1] = (s[1:] != s[:-1]) | (g[1:] != g[:-1])
    u_set = s[last]
    u_tag = g[last]
    u_pos = p[last]
    by_access = np.lexsort((u_pos, u_set))
    u_set = u_set[by_access]
    u_tag = u_tag[by_access]
    starts = np.flatnonzero(np.r_[True, u_set[1:] != u_set[:-1]])
    ends = np.r_[starts[1:], [u_set.size]]
    for a, b in zip(starts.tolist(), ends.tolist()):
        set_idx = int(u_set[a])
        touched = u_tag[a:b].tolist()
        cnt = int(counts[set_idx])
        row = tag_table[set_idx]
        orow = origin_table[set_idx]
        resident = row[:cnt].tolist()
        origin_of = dict(zip(resident, orow[:cnt].tolist()))
        touched_set = set(touched)
        new_tags = [tg for tg in resident if tg not in touched_set] + touched
        row[:cnt] = new_tags
        orow[:cnt] = [origin_of[tg] for tg in new_tags]


def depth_gate_positions(base, recent, resolve_slots: int, depth: int):
    """Gate a sequence of conditional-branch fetch positions.

    ``base`` holds the stall-free issue positions of consecutive gated
    terminators (every earlier stall shifts all later positions equally,
    which holds whenever no other timing feedback occurs between them —
    all-hit spans and perfect-cache runs).  ``recent`` seeds the window
    of outstanding resolve times.  Returns ``(stalls, issue, recent')``:
    per-branch stall slots, post-gate issue positions, and the resolve
    window to carry forward.
    """
    base = np.asarray(base, dtype=np.int64)
    n = base.size
    window = list(recent)[-depth:] if depth > 0 else []
    stalls = np.zeros(n, dtype=np.int64)
    if n == 0:
        return stalls, base.copy(), window
    m = len(window)
    if n >= 8:
        # No-stall fast path: if nothing stalls, the resolve times are
        # exactly recent ++ (base + resolve_slots), and branch k gates on
        # the depth-th previous resolve.  If all those lie at or before
        # base[k], no gate ever fires (induction over k) and the whole
        # call collapses to array ops.
        resolves = np.concatenate(
            [np.asarray(window, dtype=np.int64), base + resolve_slots]
        )
        back = np.arange(n) + m - depth
        valid = back >= 0
        if not valid.any() or bool(np.all(resolves[back[valid]] <= base[valid])):
            tail = resolves[-depth:] if depth > 0 else resolves[:0]
            return stalls, base.copy(), [int(v) for v in tail]
    issue = np.empty(n, dtype=np.int64)
    shift = 0
    for k in range(n):
        t = int(base[k]) + shift
        if len(window) == depth and window[0] > t:
            stall = window[0] - t
            stalls[k] = stall
            shift += stall
            t = window[0]
        issue[k] = t
        window.append(t + resolve_slots)
        if len(window) > depth:
            del window[0]
    return stalls, issue, window


def accumulate_positions(lengths, extra):
    """Start positions of consecutive segments: exclusive cumulative sum
    of per-segment durations (``lengths + extra``)."""
    total = np.asarray(lengths, dtype=np.int64) + np.asarray(extra, dtype=np.int64)
    return np.cumsum(total) - total


# -- trace lowering (memoized) ----------------------------------------------
#
# The record arrays depend only on the trace identity; the probe stream
# additionally depends on the line size.  Both are keyed the same way
# require_trace keys stream/trace compatibility, so a sweep over cache
# geometries re-lowers the trace at most once per line size.

_MEMO_CAP = 8


class _TraceArrays:
    __slots__ = ("starts", "lengths", "kinds", "cum", "ev_rec", "n_records")

    def __init__(self, trace: Trace) -> None:
        n = trace.n_blocks
        records = trace.records
        self.starts = np.fromiter((r[0] for r in records), np.int64, n)
        self.lengths = np.fromiter((r[1] for r in records), np.int64, n)
        self.kinds = np.fromiter((r[2] for r in records), np.int64, n)
        self.cum = np.cumsum(self.lengths)
        self.ev_rec = np.flatnonzero(self.kinds != _PLAIN)
        self.n_records = n


class _ProbeArrays:
    __slots__ = ("line", "chunk", "gate", "chunk_cumsum", "last_probe", "n_probes")

    def __init__(self, ta: _TraceArrays, line_size: int) -> None:
        is_cond = ta.kinds == _COND
        prefix_n = np.where(is_cond, ta.lengths - 1, ta.lengths)
        has_prefix = prefix_n > 0
        runs_per_rec = has_prefix.astype(np.int64) + is_cond
        run_off = np.cumsum(runs_per_rec) - runs_per_rec
        total_runs = int(runs_per_rec.sum())
        run_pc = np.zeros(total_runs, dtype=np.int64)
        run_n = np.zeros(total_runs, dtype=np.int64)
        run_gate = np.zeros(total_runs, dtype=bool)
        prefix_at = run_off[has_prefix]
        run_pc[prefix_at] = ta.starts[has_prefix]
        run_n[prefix_at] = prefix_n[has_prefix]
        term_addr = ta.starts + (ta.lengths - 1) * INSTRUCTION_SIZE
        term_at = (run_off + has_prefix)[is_cond]
        run_pc[term_at] = term_addr[is_cond]
        run_n[term_at] = 1
        run_gate[term_at] = True
        run_rec = np.repeat(np.arange(ta.n_records, dtype=np.int64), runs_per_rec)
        probe_run, self.line, self.chunk = expand_runs(run_pc, run_n, line_size)
        self.gate = run_gate[probe_run]
        probe_rec = run_rec[probe_run]
        probes_per_rec = np.bincount(probe_rec, minlength=ta.n_records)
        self.last_probe = np.cumsum(probes_per_rec) - 1
        self.chunk_cumsum = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(self.chunk)]
        )
        self.n_probes = int(self.line.size)


_trace_memo: dict[tuple, _TraceArrays] = {}
_probe_memo: dict[tuple, _ProbeArrays] = {}


def _memo_get(memo: dict, key: tuple, build):
    value = memo.get(key)
    if value is None:
        if len(memo) >= _MEMO_CAP:
            memo.pop(next(iter(memo)))
        value = memo[key] = build()
    return value


def _trace_key(trace: Trace) -> tuple:
    return (trace.program_name, trace.seed, trace.n_instructions, trace.n_blocks)


# -- per-window statistics ---------------------------------------------------


class _Window:
    """One measurement window's counters (warmup or measured).

    Field-for-field what ``_reset_measurement`` zeroes in the event
    loop: the penalty accumulator, the engine counters, cache stats, bus
    stats and the station's install counter.
    """

    __slots__ = (
        "branch_full",
        "branch",
        "rt_icache",
        "wrong_icache",
        "bus",
        "force_resolve",
        "right_probes",
        "right_misses",
        "wrong_probes",
        "wrong_misses",
        "right_fills",
        "wrong_fills",
        "wrong_instructions",
        "inflight_merges",
        "probes",
        "hits",
        "misses",
        "fills",
        "evictions",
        "wrongpath_hits",
        "bus_requests",
        "bus_wait",
        "station_installed",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)


# -- the backend -------------------------------------------------------------


class VectorEngine:
    """Vectorized drop-in for :class:`~repro.core.engine.FetchEngine`.

    Wraps a fully constructed event-loop engine (built for the same
    cell): the vectorized run writes its final component state back into
    the wrapped engine and delegates result construction and metric
    publication to it, so the reported :class:`SimulationResult` and
    metrics dictionary come from the exact same code path as the event
    loop's.  Construct only through ``build_engine`` (SIM011).
    """

    backend = "vector"

    def __init__(self, inner) -> None:
        self.inner = inner
        self.program = inner.program
        self.config = inner.config
        config = inner.config
        if not vector_eligible(config):
            raise SimulationError(
                f"config is not vector-eligible ({config.describe()})"
            )
        self.observer = inner.observer
        self.unit = inner.unit
        self.cache = inner.cache
        self.bus = inner.bus
        self.station = inner.station
        self._stream = inner.unit.stream
        # Eligibility pins the schedule to static, so the inner engine's
        # per-interval policy is the run-wide policy (the schedule seam —
        # SIM012 — resolves it once at construction).
        self._policy = inner.policy
        self._penalty_slots = config.miss_penalty_slots
        self._decode_slots = config.decode_latency_slots
        self._resolve_slots = config.resolve_latency_slots
        self._depth = config.max_unresolved
        self._line_size = config.cache.line_size
        self._interleave = (
            None
            if config.bus_interleave_cycles is None
            else config.bus_interleave_cycles * config.issue_width
        )
        if self.cache is not None:
            self._assoc = self.cache.assoc
            self._set_mask = self.cache.set_mask
            self._set_shift = self.cache._set_shift
            n_sets = self._set_mask + 1
            if self._assoc == 1:
                self._tag_state = np.full(n_sets, -1, dtype=np.int64)
                self._origin_state = np.zeros(n_sets, dtype=np.int8)
                self._tag_table = None
                self._origin_table = None
                self._counts = None
            else:
                self._tag_state = None
                self._origin_state = None
                self._tag_table = np.full((n_sets, self._assoc), -1, dtype=np.int64)
                self._origin_table = np.zeros((n_sets, self._assoc), dtype=np.int8)
                self._counts = np.zeros(n_sets, dtype=np.int64)
        # Runtime state.
        self._t = 0
        self._busy_until = 0
        self._recent: list[int] = []
        self._has_station = False
        self._station_line = -1
        self._station_done = 0
        self._wrong_lines = False
        self._miss_fills = 0
        self._warm = _Window()
        self._meas = _Window()
        self._win = self._meas
        self._window = 256

    # -- entry point ---------------------------------------------------------

    def run(self, trace: Trace, warmup_instructions: int = 0) -> SimulationResult:
        """Simulate *trace*; statistics restart after *warmup_instructions*.

        Same contract (and same validation) as the event loop's ``run``.
        """
        inner = self.inner
        if trace.program_name != inner.program.name:
            raise SimulationError(
                f"trace is for {trace.program_name!r}, "
                f"engine built for {inner.program.name!r}"
            )
        if warmup_instructions < 0:
            raise SimulationError(f"negative warmup {warmup_instructions}")
        if warmup_instructions >= trace.n_instructions:
            raise SimulationError(
                f"warmup {warmup_instructions} consumes the whole trace "
                f"({trace.n_instructions} instructions)"
            )
        self.unit.rewind()
        self._stream.require_trace(trace)
        key = _trace_key(trace)
        ta = _memo_get(_trace_memo, key, lambda: _TraceArrays(trace))
        if warmup_instructions > 0:
            boundary_rec = int(
                np.searchsorted(ta.cum, warmup_instructions, side="left")
            )
        else:
            boundary_rec = 0
        n_events = int(ta.ev_rec.size)
        if len(self._stream.outcome) < n_events:
            # The event loop raises mid-run when its cursor overruns a
            # truncated stream; the batch backend knows the event count
            # up front and fails before simulating anything.
            raise SimulationError(
                f"prediction stream exhausted after "
                f"{len(self._stream.outcome)} records (trace/stream "
                f"mismatch for {self._stream.program_name!r})"
            )
        self._ev_outcome = np.asarray(self._stream.outcome)[:n_events]
        self._ev_cause = np.asarray(self._stream.cause)[:n_events]
        self._ev_penalty = np.asarray(self._stream.penalty)[:n_events]
        if self.cache is None:
            self._run_perfect(ta, boundary_rec)
        else:
            pa = _memo_get(
                _probe_memo,
                key + (self._line_size,),
                lambda: _ProbeArrays(ta, self._line_size),
            )
            self._run_cached(ta, pa, boundary_rec)
        return self._finish(trace, ta, boundary_rec)

    # -- perfect cache --------------------------------------------------------

    def _run_perfect(self, ta: _TraceArrays, boundary_rec: int) -> None:
        """Perfect-cache timeline: pure clock accumulation + depth gate."""
        redirect = self._ev_outcome != 0
        pen_per_rec = np.zeros(ta.n_records, dtype=np.int64)
        pen_per_rec[ta.ev_rec[redirect]] = self._ev_penalty[redirect]
        rec_start = accumulate_positions(ta.lengths, pen_per_rec)
        cond_rec = np.flatnonzero(ta.kinds == _COND)
        base = rec_start[cond_rec] + ta.lengths[cond_rec] - 1
        stalls, _, _ = depth_gate_positions(
            base, [], self._resolve_slots, self._depth
        )
        meas = self._meas
        meas.branch_full = int(stalls[cond_rec >= boundary_rec].sum())
        measured_ev = ta.ev_rec >= boundary_rec
        meas.branch = int(self._ev_penalty[redirect & measured_ev].sum())

    # -- real cache -----------------------------------------------------------

    def _run_cached(self, ta: _TraceArrays, pa: _ProbeArrays, boundary_rec: int) -> None:
        self._pa = pa
        self._probe_set, self._probe_tag = split_sets(
            pa.line, self._set_mask, self._set_shift
        )
        redirect = self._ev_outcome != 0
        red_ev = np.flatnonzero(redirect)
        red_probe = pa.last_probe[ta.ev_rec[red_ev]]
        self._red_ev = red_ev
        # Scalar-access copies of the per-event stream fields (list
        # indexing is ~3x faster than ndarray scalar indexing here).
        self._ev_penalty_l = self.unit._penalty
        self._ev_delay_l = self.unit._delay
        self._ev_outcome_l = self.unit._outcome
        self._ev_wstart_l = self.unit._wstart
        self._wp_off_l = self.unit._wp_off
        self._wp_pc_l = self.unit._wp_pc
        self._wp_n_l = self.unit._wp_n
        boundary_probe = (
            int(pa.last_probe[boundary_rec - 1]) + 1 if boundary_rec > 0 else 0
        )
        pending_boundary = boundary_probe > 0
        self._win = self._warm if pending_boundary else self._meas
        red_probe_l = red_probe.tolist()
        red_ev_l = red_ev.tolist()
        n_red = len(red_probe_l)
        n_probes = pa.n_probes
        i = 0
        r = 0
        while i < n_probes:
            if pending_boundary and i == boundary_probe:
                self._win = self._meas
                pending_boundary = False
            seg_end = red_probe_l[r] + 1 if r < n_red else n_probes
            if pending_boundary and boundary_probe < seg_end:
                seg_end = boundary_probe
                redirect_here = False
            else:
                redirect_here = r < n_red
            self._run_probes(i, seg_end)
            i = seg_end
            if redirect_here:
                self._handle_redirect(red_ev_l[r])
                r += 1

    def _run_probes(self, i: int, end: int) -> None:
        """Advance the probe cursor from *i* to *end* (all within one
        redirect-free segment): bulk hit spans, scalar misses.  Segments
        shorter than ``_SCALAR_SEGMENT`` probes go through the per-probe
        scalar mirror instead — redirect-dense traces produce thousands
        of tiny segments, where fixed per-window array overhead costs
        more than it saves."""
        probe_set = self._probe_set
        probe_tag = self._probe_tag
        direct = self._assoc == 1
        while i < end:
            if self._has_station:
                i = self._probe_scalar(i)
                continue
            if end - i < _SCALAR_SEGMENT:
                self._probe_scalar_simple(i)
                i += 1
                continue
            w = min(end - i, self._window)
            sets = probe_set[i : i + w]
            tags = probe_tag[i : i + w]
            if direct:
                hits = self._tag_state[sets] == tags
            else:
                hits = (self._tag_table[sets] == tags[:, None]).any(axis=1)
            miss_at = np.flatnonzero(~hits)
            span = int(miss_at[0]) if miss_at.size else w
            if span:
                self._account_hits(i, i + span, sets[:span], tags[:span])
                self._advance_hits(i, i + span)
                i += span
            if span < w:
                self._miss_scalar(i)
                i += 1
                self._window = max(64, self._window >> 1)
            elif w == self._window:
                self._window = min(16384, self._window << 1)

    def _account_hits(self, i: int, j: int, sets, tags) -> None:
        """Bulk statistics for an all-hit probe span [i, j)."""
        win = self._win
        n = j - i
        win.probes += n
        win.hits += n
        win.right_probes += n
        if self._assoc == 1:
            if self._wrong_lines:
                win.wrongpath_hits += int((self._origin_state[sets] == _ORG_WRONG).sum())
        else:
            if self._wrong_lines:
                eq = self._tag_table[sets] == np.asarray(tags)[:, None]
                ways = eq.argmax(axis=1)
                win.wrongpath_hits += int(
                    (self._origin_table[sets, ways] == _ORG_WRONG).sum()
                )
            lru_update_spans(
                self._tag_table, self._origin_table, self._counts, sets, tags
            )

    def _advance_hits(self, i: int, j: int) -> None:
        """Clock advance over an all-hit span, applying depth gates."""
        cumsum = self._pa.chunk_cumsum
        dt = int(cumsum[j] - cumsum[i])
        gates = self._pa.gate[i:j]
        if not gates.any():
            self._t += dt
            return
        t0 = self._t
        shift = 0
        recent = self._recent
        depth = self._depth
        resolve_slots = self._resolve_slots
        for k in np.flatnonzero(gates).tolist():
            pre = t0 + int(cumsum[i + k] - cumsum[i]) + shift
            if len(recent) == depth and recent[0] > pre:
                stall = recent[0] - pre
                self._win.branch_full += stall
                shift += stall
                pre = recent[0]
            recent.append(pre + resolve_slots)
            if len(recent) > depth:
                del recent[0]
        self._t = t0 + dt + shift

    def _miss_scalar(self, i: int) -> None:
        """One right-path miss with an idle fill station — the mirror of
        ``_fetch_right_line``'s miss path (station empty: right-path
        fills are blocking, so the station only holds Resume wrong-path
        fills, handled in ``_probe_scalar``)."""
        win = self._win
        t = self._t
        recent = self._recent
        gated = bool(self._pa.gate[i])
        if gated and len(recent) == self._depth and recent[0] > t:
            win.branch_full += recent[0] - t
            t = recent[0]
        line = int(self._pa.line[i])
        win.probes += 1
        win.misses += 1
        win.right_probes += 1
        win.right_misses += 1
        policy = self._policy
        if policy is FetchPolicy.PESSIMISTIC or policy is FetchPolicy.DECODE:
            guard = t - 1 + self._decode_slots
            if policy is FetchPolicy.PESSIMISTIC and recent and recent[-1] > guard:
                guard = recent[-1]
            if guard > t:
                win.force_resolve += guard - t
                t = guard
        duration = self._penalty_slots
        busy = self._busy_until
        start = busy if busy > t else t
        done = start + duration
        self._busy_until = done if self._interleave is None else start + self._interleave
        win.bus_requests += 1
        win.bus_wait += start - t
        if start > t:
            win.bus += start - t
            t = start
        win.rt_icache += duration
        self._miss_fills += 1
        t = done
        self._fill(line, _ORG_RIGHT)
        win.right_fills += 1
        t += int(self._pa.chunk[i])
        if gated:
            recent.append(t - 1 + self._resolve_slots)
            if len(recent) > self._depth:
                del recent[0]
        self._t = t

    def _probe_scalar_simple(self, i: int) -> None:
        """One right-path probe with no fill station in flight — the
        short-segment scalar mirror of the ``_account_hits`` /
        ``_advance_hits`` / ``_miss_scalar`` combination (gated
        terminator probes have chunk 1, so appending ``t - 1 +
        resolve_slots`` after the chunk equals the pre-chunk resolve
        time the bulk path records)."""
        win = self._win
        t = self._t
        recent = self._recent
        gated = bool(self._pa.gate[i])
        if gated and len(recent) == self._depth and recent[0] > t:
            win.branch_full += recent[0] - t
            t = recent[0]
        line = int(self._pa.line[i])
        hit = self._probe_hit_scalar(line)
        win.right_probes += 1
        if not hit:
            win.right_misses += 1
            policy = self._policy
            if policy is FetchPolicy.PESSIMISTIC or policy is FetchPolicy.DECODE:
                guard = t - 1 + self._decode_slots
                if (
                    policy is FetchPolicy.PESSIMISTIC
                    and recent
                    and recent[-1] > guard
                ):
                    guard = recent[-1]
                if guard > t:
                    win.force_resolve += guard - t
                    t = guard
            duration = self._penalty_slots
            busy = self._busy_until
            start = busy if busy > t else t
            done = start + duration
            self._busy_until = (
                done if self._interleave is None else start + self._interleave
            )
            win.bus_requests += 1
            win.bus_wait += start - t
            if start > t:
                win.bus += start - t
                t = start
            win.rt_icache += duration
            self._miss_fills += 1
            t = done
            self._fill(line, _ORG_RIGHT)
            win.right_fills += 1
        t += int(self._pa.chunk[i])
        if gated:
            recent.append(t - 1 + self._resolve_slots)
            if len(recent) > self._depth:
                del recent[0]
        self._t = t

    def _probe_scalar(self, i: int) -> int:
        """One right-path probe while a wrong-path fill is in flight
        (Resume only) — the full ``_fetch_right_line`` mirror including
        station drain and in-flight merge."""
        win = self._win
        t = self._t
        recent = self._recent
        gated = bool(self._pa.gate[i])
        if gated and len(recent) == self._depth and recent[0] > t:
            win.branch_full += recent[0] - t
            t = recent[0]
        if self._has_station and self._station_done <= t:
            self._install_station()
        line = int(self._pa.line[i])
        hit = self._probe_hit_scalar(line)
        win.right_probes += 1
        if not hit:
            win.right_misses += 1
            if self._has_station and self._station_line == line:
                done = self._station_done
                win.bus += done - t
                t = done
                self._install_station()
                win.inflight_merges += 1
            else:
                # Resume has no force-resolve guard.
                duration = self._penalty_slots
                busy = self._busy_until
                start = busy if busy > t else t
                done = start + duration
                self._busy_until = (
                    done if self._interleave is None else start + self._interleave
                )
                win.bus_requests += 1
                win.bus_wait += start - t
                if start > t:
                    win.bus += start - t
                    t = start
                win.rt_icache += duration
                self._miss_fills += 1
                t = done
                if self._has_station and self._station_done <= t:
                    self._install_station()
                self._fill(line, _ORG_RIGHT)
                win.right_fills += 1
        t += int(self._pa.chunk[i])
        if gated:
            recent.append(t - 1 + self._resolve_slots)
            if len(recent) > self._depth:
                del recent[0]
        self._t = t
        return i + 1

    # -- redirects and wrong paths --------------------------------------------

    def _handle_redirect(self, e: int) -> None:
        """Mirror of the event loop's redirect block for stream event *e*."""
        win = self._win
        penalty = self._ev_penalty_l[e]
        t_br = self._t - 1
        win.branch += penalty
        window_start = t_br + 1 + self._ev_delay_l[e]
        window_end = t_br + 1 + penalty
        self._t = self._walk(e, window_start, window_end, self._ev_outcome_l[e])

    def _walk(self, e: int, window_start: int, window_end: int, outcome: int) -> int:
        """Mirror of ``_walk_wrong_path`` over the recorded runs of
        stream event *e*; returns the right-path resume slot."""
        wstart = self._ev_wstart_l[e]
        if wstart < 0 or window_start >= window_end:
            return window_end
        policy = self._policy
        if policy is FetchPolicy.OPTIMISTIC:
            fills, blocking = True, True
        elif policy is FetchPolicy.RESUME:
            fills, blocking = True, False
        elif policy is FetchPolicy.DECODE:
            # Decode walks always happen; fills only once the redirect is
            # known to be a mispredict (outcome code 2).
            fills, blocking = outcome == 2, True
        else:  # Oracle / Pessimistic: probe ahead, never fill.
            fills, blocking = False, True
        win = self._win
        cur = window_start
        lo = self._wp_off_l[e]
        hi = self._wp_off_l[e + 1]
        duration = self._penalty_slots
        for line, n in iter_lines_from_runs(
            zip(self._wp_pc_l[lo:hi], self._wp_n_l[lo:hi]), self._line_size
        ):
            if cur >= window_end:
                break
            if self._has_station and self._station_done <= cur:
                self._install_station()
            win.wrong_probes += 1
            if self._contains(line):
                win.wrong_instructions += n
                cur += n
                continue
            win.wrong_misses += 1
            if self._has_station and self._station_line == line:
                done = self._station_done
                if not blocking and done < window_end:
                    cur = done
                    self._install_station()
                    win.wrong_instructions += n
                    cur += n
                    continue
                break
            if not fills:
                break
            if self._has_station:
                # Resume's single fill slot is busy: stop walking.
                break
            request_at = cur + (
                self._decode_slots if policy is FetchPolicy.DECODE else 0
            )
            busy = self._busy_until
            start = busy if busy > request_at else request_at
            done = start + duration
            self._busy_until = (
                done if self._interleave is None else start + self._interleave
            )
            win.bus_requests += 1
            win.bus_wait += start - request_at
            win.wrong_fills += 1
            self._miss_fills += 1
            if blocking:
                self._fill(line, _ORG_WRONG)
                self._wrong_lines = True
                if done >= window_end:
                    win.wrong_icache += done - window_end
                    return done
                cur = done
                win.wrong_instructions += n
                cur += n
                continue
            if done <= window_end:
                self._fill(line, _ORG_WRONG)
                self._wrong_lines = True
                cur = done
                win.wrong_instructions += n
                cur += n
                continue
            self._station_line = line
            self._station_done = done
            self._has_station = True
            break
        return window_end

    def _install_station(self) -> None:
        self._fill(self._station_line, _ORG_WRONG)
        self._wrong_lines = True
        self._win.station_installed += 1
        self._has_station = False

    # -- tag-mirror primitives ------------------------------------------------

    def _contains(self, line: int) -> bool:
        set_idx = line & self._set_mask
        tag = line >> self._set_shift
        if self._assoc == 1:
            return bool(self._tag_state[set_idx] == tag)
        row = self._tag_table[set_idx]
        cnt = int(self._counts[set_idx])
        for k in range(cnt):
            if row[k] == tag:
                return True
        return False

    def _probe_hit_scalar(self, line: int) -> bool:
        win = self._win
        win.probes += 1
        set_idx = line & self._set_mask
        tag = line >> self._set_shift
        if self._assoc == 1:
            if self._tag_state[set_idx] == tag:
                win.hits += 1
                if self._origin_state[set_idx] == _ORG_WRONG:
                    win.wrongpath_hits += 1
                return True
            win.misses += 1
            return False
        row = self._tag_table[set_idx]
        orow = self._origin_table[set_idx]
        cnt = int(self._counts[set_idx])
        for k in range(cnt):
            if row[k] == tag:
                origin = int(orow[k])
                for j in range(k, cnt - 1):
                    row[j] = row[j + 1]
                    orow[j] = orow[j + 1]
                row[cnt - 1] = tag
                orow[cnt - 1] = origin
                win.hits += 1
                if origin == _ORG_WRONG:
                    win.wrongpath_hits += 1
                return True
        win.misses += 1
        return False

    def _fill(self, line: int, origin: int) -> None:
        win = self._win
        win.fills += 1
        set_idx = line & self._set_mask
        tag = line >> self._set_shift
        if self._assoc == 1:
            resident = self._tag_state[set_idx]
            if resident != -1 and resident != tag:
                win.evictions += 1
            self._tag_state[set_idx] = tag
            self._origin_state[set_idx] = origin
            return
        row = self._tag_table[set_idx]
        orow = self._origin_table[set_idx]
        cnt = int(self._counts[set_idx])
        for k in range(cnt):
            if row[k] == tag:
                # Refill of a resident line: refresh origin, move to MRU.
                for j in range(k, cnt - 1):
                    row[j] = row[j + 1]
                    orow[j] = orow[j + 1]
                row[cnt - 1] = tag
                orow[cnt - 1] = origin
                return
        if cnt >= self._assoc:
            win.evictions += 1
            for j in range(cnt - 1):
                row[j] = row[j + 1]
                orow[j] = orow[j + 1]
            row[cnt - 1] = tag
            orow[cnt - 1] = origin
            return
        row[cnt] = tag
        orow[cnt] = origin
        self._counts[set_idx] = cnt + 1

    # -- result construction ---------------------------------------------------

    def _finish(self, trace: Trace, ta: _TraceArrays, boundary_rec: int) -> SimulationResult:
        """Write the measured window back into the wrapped event-loop
        engine and delegate result/metrics construction to it."""
        inner = self.inner
        meas = self._meas
        inner.penalties = PenaltyAccumulator(
            branch_full=meas.branch_full,
            branch=meas.branch,
            rt_icache=meas.rt_icache,
            wrong_icache=meas.wrong_icache,
            bus=meas.bus,
            force_resolve=meas.force_resolve,
        )
        warm_instructions = int(ta.cum[boundary_rec - 1]) if boundary_rec > 0 else 0
        inner.counters = EngineCounters(
            instructions=int(ta.cum[-1]) - warm_instructions,
            blocks=ta.n_records - boundary_rec,
            right_probes=meas.right_probes,
            right_misses=meas.right_misses,
            wrong_probes=meas.wrong_probes,
            wrong_misses=meas.wrong_misses,
            right_fills=meas.right_fills,
            wrong_fills=meas.wrong_fills,
            wrong_instructions=meas.wrong_instructions,
            inflight_merges=meas.inflight_merges,
        )
        inner.unit.stats = self._branch_stats(ta, boundary_rec)
        if inner.cache is not None:
            stats = inner.cache.stats
            stats.probes = meas.probes
            stats.hits = meas.hits
            stats.misses = meas.misses
            stats.fills = meas.fills
            stats.evictions = meas.evictions
            stats.wrongpath_hits = meas.wrongpath_hits
        inner.bus.requests = meas.bus_requests
        inner.bus.busy_wait_slots = meas.bus_wait
        inner.station.installed = meas.station_installed
        if inner._miss_durations is not None:
            # Every fill takes the flat miss penalty (no L2 in eligible
            # cells); warmup observations are included, as in the event
            # loop (the histograms survive _reset_measurement).
            inner._miss_durations = [self._penalty_slots] * self._miss_fills
            redirect = self._ev_outcome != 0
            inner._redirect_penalties = [
                int(p) for p in self._ev_penalty[redirect]
            ]
        return inner._build_result(trace)

    def _branch_stats(self, ta: _TraceArrays, boundary_rec: int) -> BranchStats:
        """Reconstruct the measured-window BranchStats from the stream."""
        first = int(np.searchsorted(ta.ev_rec, boundary_rec, side="left"))
        kinds = ta.kinds[ta.ev_rec[first:]]
        outcome = self._ev_outcome[first:]
        cause = self._ev_cause[first:]
        penalty = self._ev_penalty[first:]
        conditional = int((kinds == _COND).sum())
        return BranchStats(
            conditional=conditional,
            unconditional=int(kinds.size - conditional),
            correct=int((outcome == 0).sum()),
            pht_mispredicts=int((cause == 2).sum()),
            btb_misfetches=int((cause == 1).sum()),
            btb_mispredicts=int((cause == 3).sum()),
            penalty_slots_by_cause={
                "btb_misfetch": int(penalty[cause == 1].sum()),
                "pht_mispredict": int(penalty[cause == 2].sum()),
                "btb_mispredict": int(penalty[cause == 3].sum()),
            },
        )
