"""Vectorized batch engine backend over replayed prediction streams.

The event-loop engine (:mod:`repro.core.engine`) dispatches one Python
bytecode sequence per basic block; with prediction-stream replay (PR 5)
the branch outcomes are already materialized as NumPy arrays, so for
replay-eligible cells the remaining interpreter overhead is pure
bookkeeping.  This module removes it: the trace is lowered once into a
flat *probe stream* (one entry per cache-line access the event loop
would make), segmented at the replayed redirect boundaries, and the
i-cache state between redirects is advanced with the NumPy kernels of
:mod:`repro.core.vector_kernels` — set-index/tag arithmetic, bulk tag
matching with find-first-miss, LRU-stack span updates, latency
accumulation over whole runs, and the wrong-path window cutoff.

What cannot be batched falls back to exact scalar mirrors of the
event-loop code, kept cheap three ways (the real-cache speed work of
PR 10):

* every recorded wrong-path walk is lowered to flat per-redirect line
  arrays once per (stream, line size) — the **batched walker** — and a
  walk's leading all-hit stretch is retired with one tag-match plus the
  ``walk_cutoff`` kernel;
* while Resume's single-slot fill station is in flight, its install
  time is resolved up front — the **station timeline**: every probe
  before the first miss or the first probe of the station line's set is
  provably unaffected by the pending install, so those spans run
  through the bulk hit path instead of the per-probe station mirror;
* consecutive right-path misses and segments below the scalar
  threshold run through one tight list-backed loop — the **miss-run
  batcher** — instead of re-entering the window machinery per miss.

Every counter and every stall slot is reproduced **bit-identically**
(enforced by tests/core/test_engine_backends.py and the hypothesis
kernel suite) for *any* scalar threshold; the threshold only moves the
batch/scalar split.  The default is a measured crossover, recalibrated
by ``benchmarks/bench_engine_speed.py`` (the engine itself is
clock-free — simlint SIM001 — so the measurement lives there) and
installed via :func:`set_scalar_threshold`.

Eligibility is stricter than replay eligibility: timing-coupled
front-end extensions (prefetchers, stream buffers, L2, multi-entry fill
stations, the lockstep miss classifier) interleave with the fetch clock
in ways that have no batch formulation here, so those cells keep the
event loop.  ``build_engine`` (repro.core.engine) makes the choice; the
published EXPERIMENTS numbers all run through the event loop and are
unchanged by construction.

The depth-gate model
--------------------

The event loop gates conditional-branch fetch on a FIFO of unresolved
branches, popping entries as the clock passes their resolve times.  The
vector backend keeps only the last ``max_unresolved`` *append* times
(``recent``): because resolve times are strictly increasing and pops
only happen at ``now <= t``, the queue is full at a gate point iff the
``max_unresolved``-th most recent resolve time still lies in the future
— i.e. ``len(recent) == depth and recent[0] > t``.  The same argument
makes ``recent[-1]`` equivalent to the live queue's tail for the
Pessimistic force-resolve guard: a popped tail satisfies
``recent[-1] <= t`` and can never raise the guard above ``t``.
"""

from __future__ import annotations

import numpy as np

from repro.branch.stream import replay_eligible
from repro.branch.unit import BranchStats
from repro.config import FetchPolicy, SimConfig
from repro.core.results import EngineCounters, PenaltyAccumulator, SimulationResult
from repro.core.vector_kernels import (  # noqa: F401  (kernel re-exports)
    ProbeArrays,
    TraceArrays,
    accumulate_positions,
    depth_gate_positions,
    expand_runs,
    lru_update_spans,
    match_tags,
    probe_arrays,
    probe_split,
    split_sets,
    trace_arrays,
    walk_arrays,
    walk_cutoff,
    walk_split,
)
from repro.errors import ConfigError, SimulationError
from repro.isa import InstrKind
from repro.trace.event import Trace

_PLAIN = int(InstrKind.PLAIN)
_COND = int(InstrKind.COND_BRANCH)

#: Line-origin codes in the tag mirrors (the eligible cells never
#: prefetch, so LineOrigin.PREFETCH has no code here).
_ORG_RIGHT = 0
_ORG_WRONG = 1

#: Default batch/scalar crossover, in probes: segments (and walks)
#: shorter than this are walked through the scalar mirror, since fixed
#: per-window NumPy call overhead (~2us per array op) exceeds the
#: vectorization win below roughly this size.  Measured on the gcc 100k
#: protocol (benchmarks/bench_engine_speed.py recalibrates and installs
#: the host's crossover before timing); results are bit-identical for
#: any value — the threshold only moves work between the two paths.
_DEFAULT_SCALAR_THRESHOLD = 256

_scalar_threshold = _DEFAULT_SCALAR_THRESHOLD


def scalar_threshold() -> int:
    """The current batch/scalar crossover (probes)."""
    return _scalar_threshold


def set_scalar_threshold(n: int) -> None:
    """Install a measured batch/scalar crossover (see module docstring).

    Engines pick the value up at construction; results never depend on
    it (only the batch/scalar split does).
    """
    global _scalar_threshold
    if n < 1:
        raise ConfigError(f"scalar threshold must be >= 1: {n}")
    _scalar_threshold = int(n)


def vector_eligible(config: SimConfig) -> bool:
    """Can *config* run on the vectorized backend (given a stream)?

    Replay eligibility is necessary (the backend consumes the recorded
    outcome arrays); on top of that, every timing-coupled front-end
    extension disqualifies the cell — those paths interleave with the
    fetch clock per probe and only exist in the event loop.  So does the
    per-interval policy machinery: the batch kernels assume one policy
    for the whole run and record no interval stats.
    """
    return (
        replay_eligible(config)
        and not config.prefetch
        and not config.target_prefetch
        and config.stream_buffers == 0
        and not config.classify
        and config.l2_size_bytes is None
        and config.fill_buffers == 1
        and config.policy_schedule == "static"
        and config.adaptive_interval is None
    )


# -- per-window statistics ---------------------------------------------------


class _Window:
    """One measurement window's counters (warmup or measured).

    Field-for-field what ``_reset_measurement`` zeroes in the event
    loop: the penalty accumulator, the engine counters, cache stats, bus
    stats and the station's install counter.
    """

    __slots__ = (
        "branch_full",
        "branch",
        "rt_icache",
        "wrong_icache",
        "bus",
        "force_resolve",
        "right_probes",
        "right_misses",
        "wrong_probes",
        "wrong_misses",
        "right_fills",
        "wrong_fills",
        "wrong_instructions",
        "inflight_merges",
        "probes",
        "hits",
        "misses",
        "fills",
        "evictions",
        "wrongpath_hits",
        "bus_requests",
        "bus_wait",
        "station_installed",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)


# -- the backend -------------------------------------------------------------


class VectorEngine:
    """Vectorized drop-in for :class:`~repro.core.engine.FetchEngine`.

    Wraps a fully constructed event-loop engine (built for the same
    cell): the vectorized run writes its final component state back into
    the wrapped engine and delegates result construction and metric
    publication to it, so the reported :class:`SimulationResult` and
    metrics dictionary come from the exact same code path as the event
    loop's.  Construct only through ``build_engine`` (SIM011).
    """

    backend = "vector"

    def __init__(self, inner) -> None:
        self.inner = inner
        self.program = inner.program
        self.config = inner.config
        config = inner.config
        if not vector_eligible(config):
            raise SimulationError(
                f"config is not vector-eligible ({config.describe()})"
            )
        self.observer = inner.observer
        self.unit = inner.unit
        self.cache = inner.cache
        self.bus = inner.bus
        self.station = inner.station
        self._stream = inner.unit.stream
        # Eligibility pins the schedule to static, so the inner engine's
        # per-interval policy is the run-wide policy (the schedule seam —
        # SIM012 — resolves it once at construction).
        self._policy = inner.policy
        self._penalty_slots = config.miss_penalty_slots
        self._decode_slots = config.decode_latency_slots
        self._resolve_slots = config.resolve_latency_slots
        self._depth = config.max_unresolved
        self._line_size = config.cache.line_size
        self._interleave = (
            None
            if config.bus_interleave_cycles is None
            else config.bus_interleave_cycles * config.issue_width
        )
        if self.cache is not None:
            self._assoc = self.cache.assoc
            self._set_mask = self.cache.set_mask
            self._set_shift = self.cache._set_shift
            n_sets = self._set_mask + 1
            if self._assoc == 1:
                # Twin tag mirrors: NumPy arrays feed the batch kernels,
                # plain lists feed the scalar mirrors (list indexing is
                # ~3x faster per probe); _fill keeps them in lockstep.
                self._tag_state = np.full(n_sets, -1, dtype=np.int64)
                self._origin_state = np.zeros(n_sets, dtype=np.int8)
                self._tags_l = [-1] * n_sets
                self._orgs_l = [0] * n_sets
                self._tag_table = None
                self._origin_table = None
                self._counts = None
            else:
                self._tag_state = None
                self._origin_state = None
                self._tags_l = None
                self._orgs_l = None
                self._tag_table = np.full((n_sets, self._assoc), -1, dtype=np.int64)
                self._origin_table = np.zeros((n_sets, self._assoc), dtype=np.int8)
                self._counts = np.zeros(n_sets, dtype=np.int64)
        # Runtime state.
        self._t = 0
        self._busy_until = 0
        self._recent: list[int] = []
        self._has_station = False
        self._station_line = -1
        self._station_done = 0
        self._wrong_lines = False
        self._miss_fills = 0
        self._warm = _Window()
        self._meas = _Window()
        self._win = self._meas
        self._window = 256
        self._scalar_threshold = _scalar_threshold
        # Per-policy wrong-path walk behavior (None = outcome-dependent:
        # Decode fills only on a confirmed mispredict, outcome code 2).
        policy = self._policy
        if policy is FetchPolicy.OPTIMISTIC:
            self._walk_fills, self._walk_blocking = True, True
        elif policy is FetchPolicy.RESUME:
            self._walk_fills, self._walk_blocking = True, False
        elif policy is FetchPolicy.DECODE:
            self._walk_fills, self._walk_blocking = None, True
        else:  # Oracle / Pessimistic: probe ahead, never fill.
            self._walk_fills, self._walk_blocking = False, True
        self._walk_decode_slots = (
            self._decode_slots if policy is FetchPolicy.DECODE else 0
        )
        # Batch/scalar split diagnostics (plain attributes, never
        # published: metric parity with the event loop is asserted).
        self.probes_scalar = 0
        self.probes_bulk = 0
        self.walk_probes_scalar = 0
        self.walk_probes_bulk = 0

    # -- entry point ---------------------------------------------------------

    def run(self, trace: Trace, warmup_instructions: int = 0) -> SimulationResult:
        """Simulate *trace*; statistics restart after *warmup_instructions*.

        Same contract (and same validation) as the event loop's ``run``.
        """
        inner = self.inner
        if trace.program_name != inner.program.name:
            raise SimulationError(
                f"trace is for {trace.program_name!r}, "
                f"engine built for {inner.program.name!r}"
            )
        if warmup_instructions < 0:
            raise SimulationError(f"negative warmup {warmup_instructions}")
        if warmup_instructions >= trace.n_instructions:
            raise SimulationError(
                f"warmup {warmup_instructions} consumes the whole trace "
                f"({trace.n_instructions} instructions)"
            )
        self.unit.rewind()
        self._stream.require_trace(trace)
        ta = trace_arrays(trace)
        if warmup_instructions > 0:
            boundary_rec = int(
                np.searchsorted(ta.cum, warmup_instructions, side="left")
            )
        else:
            boundary_rec = 0
        n_events = int(ta.ev_rec.size)
        if len(self._stream.outcome) < n_events:
            # The event loop raises mid-run when its cursor overruns a
            # truncated stream; the batch backend knows the event count
            # up front and fails before simulating anything.
            raise SimulationError(
                f"prediction stream exhausted after "
                f"{len(self._stream.outcome)} records (trace/stream "
                f"mismatch for {self._stream.program_name!r})"
            )
        self._ev_outcome = np.asarray(self._stream.outcome)[:n_events]
        self._ev_cause = np.asarray(self._stream.cause)[:n_events]
        self._ev_penalty = np.asarray(self._stream.penalty)[:n_events]
        if self.cache is None:
            self._run_perfect(ta, boundary_rec)
        else:
            self._trace = trace
            pa = probe_arrays(trace, self._line_size)
            self._run_cached(ta, pa, boundary_rec)
        return self._finish(trace, ta, boundary_rec)

    # -- perfect cache --------------------------------------------------------

    def _run_perfect(self, ta: TraceArrays, boundary_rec: int) -> None:
        """Perfect-cache timeline: pure clock accumulation + depth gate."""
        redirect = self._ev_outcome != 0
        pen_per_rec = np.zeros(ta.n_records, dtype=np.int64)
        pen_per_rec[ta.ev_rec[redirect]] = self._ev_penalty[redirect]
        rec_start = accumulate_positions(ta.lengths, pen_per_rec)
        cond_rec = np.flatnonzero(ta.kinds == _COND)
        base = rec_start[cond_rec] + ta.lengths[cond_rec] - 1
        stalls, _, _ = depth_gate_positions(
            base, [], self._resolve_slots, self._depth
        )
        meas = self._meas
        meas.branch_full = int(stalls[cond_rec >= boundary_rec].sum())
        measured_ev = ta.ev_rec >= boundary_rec
        meas.branch = int(self._ev_penalty[redirect & measured_ev].sum())

    # -- real cache -----------------------------------------------------------

    def _run_cached(self, ta: TraceArrays, pa: ProbeArrays, boundary_rec: int) -> None:
        self._pa = pa
        ps = probe_split(
            self._trace, self._line_size, self._set_mask, self._set_shift
        )
        self._probe_set = ps.set
        self._probe_tag = ps.tag
        self._ptuples = ps.tuples
        wa = walk_arrays(self._stream, self._line_size)
        ws = walk_split(
            self._stream, self._line_size, self._set_mask, self._set_shift
        )
        self._wa = wa
        self._wa_set = ws.set
        self._wa_tag = ws.tag
        self._wtuples = ws.tuples
        redirect = self._ev_outcome != 0
        red_ev = np.flatnonzero(redirect)
        red_probe = pa.last_probe[ta.ev_rec[red_ev]]
        self._red_ev = red_ev
        # Scalar-access copies of the per-event stream fields (list
        # indexing is ~3x faster than ndarray scalar indexing here).
        ev_penalty_l = self._ev_penalty_l = self.unit._penalty
        ev_delay_l = self._ev_delay_l = self.unit._delay
        ev_outcome_l = self._ev_outcome_l = self.unit._outcome
        ev_wstart_l = self._ev_wstart_l = self.unit._wstart
        boundary_probe = (
            int(pa.last_probe[boundary_rec - 1]) + 1 if boundary_rec > 0 else 0
        )
        pending_boundary = boundary_probe > 0
        self._win = self._warm if pending_boundary else self._meas
        red_probe_l = red_probe.tolist()
        red_ev_l = red_ev.tolist()
        n_red = len(red_probe_l)
        n_probes = pa.n_probes
        threshold = self._scalar_threshold
        i = 0
        r = 0
        while i < n_probes:
            if pending_boundary and i == boundary_probe:
                self._win = self._meas
                pending_boundary = False
            seg_end = red_probe_l[r] + 1 if r < n_red else n_probes
            if pending_boundary and boundary_probe < seg_end:
                seg_end = boundary_probe
                redirect_here = False
            else:
                redirect_here = r < n_red
            if seg_end - i < threshold and not self._has_station:
                self._scalar_span(i, seg_end)
            else:
                self._run_probes(i, seg_end)
            i = seg_end
            if redirect_here:
                # Inlined _handle_redirect: the redirect block runs once
                # per control-transfer event — worth skipping two call
                # frames on the (common) walk-free redirects.
                e = red_ev_l[r]
                penalty = ev_penalty_l[e]
                t_br = self._t - 1
                self._win.branch += penalty
                window_start = t_br + 1 + ev_delay_l[e]
                window_end = t_br + 1 + penalty
                if ev_wstart_l[e] >= 0 and window_start < window_end:
                    self._t = self._walk(
                        e, window_start, window_end, ev_outcome_l[e]
                    )
                else:
                    self._t = window_end
                r += 1

    def _run_probes(self, i: int, end: int) -> None:
        """Advance the probe cursor from *i* to *end* (all within one
        redirect-free segment): bulk hit spans, scalar miss runs.
        Segments shorter than the calibrated scalar threshold skip the
        window machinery entirely — redirect-dense traces produce
        thousands of tiny segments, where fixed per-window array
        overhead costs more than it saves."""
        probe_set = self._probe_set
        probe_tag = self._probe_tag
        direct = self._assoc == 1
        threshold = self._scalar_threshold
        while i < end:
            if self._has_station:
                i = self._station_span(i, end)
                continue
            if end - i < threshold:
                self._scalar_span(i, end)
                return
            w = min(end - i, self._window)
            sets = probe_set[i : i + w]
            tags = probe_tag[i : i + w]
            if direct:
                hits = self._tag_state[sets] == tags
            else:
                hits = (self._tag_table[sets] == tags[:, None]).any(axis=1)
            miss_at = np.flatnonzero(~hits)
            span = int(miss_at[0]) if miss_at.size else w
            if span:
                self._account_hits(i, i + span, sets[:span], tags[:span])
                self._advance_hits(i, i + span)
                i += span
            if span < w:
                # Miss-run batcher: the window mask already bounds the
                # consecutive-miss run; retire it in one scalar span (a
                # fill can flip a later "miss" to a hit, so every probe
                # is re-checked there) instead of re-windowing per miss.
                # Hits the stale mask claims *beyond* the run are
                # discarded — an eviction could have invalidated them.
                hit_at = np.flatnonzero(hits[span:])
                run = int(hit_at[0]) if hit_at.size else w - span
                self._scalar_span(i, i + run)
                i += run
                self._window = max(64, self._window >> 1)
            elif w == self._window:
                self._window = min(16384, self._window << 1)

    def _account_hits(self, i: int, j: int, sets, tags) -> None:
        """Bulk statistics for an all-hit probe span [i, j)."""
        win = self._win
        n = j - i
        win.probes += n
        win.hits += n
        win.right_probes += n
        self.probes_bulk += n
        if self._assoc == 1:
            if self._wrong_lines:
                win.wrongpath_hits += int((self._origin_state[sets] == _ORG_WRONG).sum())
        else:
            if self._wrong_lines:
                eq = self._tag_table[sets] == np.asarray(tags)[:, None]
                ways = eq.argmax(axis=1)
                win.wrongpath_hits += int(
                    (self._origin_table[sets, ways] == _ORG_WRONG).sum()
                )
            lru_update_spans(
                self._tag_table, self._origin_table, self._counts, sets, tags
            )

    def _advance_hits(self, i: int, j: int) -> None:
        """Clock advance over an all-hit span, applying depth gates."""
        pa = self._pa
        cum_l = pa.cum_l
        dt = cum_l[j] - cum_l[i]
        next_gate = pa.next_gate
        k = next_gate[i]
        if k >= j:
            self._t += dt
            return
        t0 = self._t
        base0 = t0 - cum_l[i]
        shift = 0
        recent = self._recent
        depth = self._depth
        resolve_slots = self._resolve_slots
        win = self._win
        while k < j:
            pre = base0 + cum_l[k] + shift
            if len(recent) == depth and recent[0] > pre:
                stall = recent[0] - pre
                win.branch_full += stall
                shift += stall
                pre = recent[0]
            recent.append(pre + resolve_slots)
            if len(recent) > depth:
                del recent[0]
            k = next_gate[k + 1]
        self._t = t0 + dt + shift

    def _scalar_span(self, i: int, end: int) -> None:
        """Exact scalar mirror of the station-free right-path probe loop
        over [i, end) — one tight list-backed pass shared by
        below-threshold segments and batched miss runs (the event-loop
        semantics of ``_fetch_right_line`` with an idle station: probes,
        depth gates, the conservative force-resolve guard, blocking
        fills).  Right-path misses never create a station, so the
        station-free precondition holds for the whole span."""
        if self._assoc != 1:
            while i < end:
                self._probe_scalar_simple(i)
                i += 1
            return
        tags_l = self._tags_l
        orgs_l = self._orgs_l
        tag_state = self._tag_state
        origin_state = self._origin_state
        t = self._t
        busy = self._busy_until
        recent = self._recent
        depth = self._depth
        resolve_slots = self._resolve_slots
        decode_slots = self._decode_slots
        duration = self._penalty_slots
        interleave = self._interleave
        policy = self._policy
        conservative = (
            policy is FetchPolicy.PESSIMISTIC or policy is FetchPolicy.DECODE
        )
        pessimistic = policy is FetchPolicy.PESSIMISTIC
        wrong_lines = self._wrong_lines
        n_probes = end - i
        n_hits = 0
        n_wrong_hits = 0
        n_evict = 0
        bus_wait = 0
        bus_pen = 0
        force_pen = 0
        full_pen = 0
        full = len(recent) == depth
        # One slice of prebuilt (set, tag, chunk, gate) tuples instead
        # of four list subscripts per probe — the single biggest lever
        # in this loop (the span always runs to *end*, so no index is
        # needed, and `full` tracks the resolve window's saturation so
        # len() drops out of the steady state).
        for set_idx, tag, chunk, gated in self._ptuples[i:end]:
            if gated and full and recent[0] > t:
                full_pen += recent[0] - t
                t = recent[0]
            if tags_l[set_idx] == tag:
                n_hits += 1
                if wrong_lines and orgs_l[set_idx]:
                    n_wrong_hits += 1
            else:
                if conservative:
                    guard = t - 1 + decode_slots
                    if pessimistic and recent and recent[-1] > guard:
                        guard = recent[-1]
                    if guard > t:
                        force_pen += guard - t
                        t = guard
                start = busy if busy > t else t
                done = start + duration
                busy = done if interleave is None else start + interleave
                bus_wait += start - t
                if start > t:
                    bus_pen += start - t
                    t = start
                if tags_l[set_idx] != -1:
                    n_evict += 1
                tags_l[set_idx] = tag
                orgs_l[set_idx] = 0
                tag_state[set_idx] = tag
                origin_state[set_idx] = 0
                t = done
            t += chunk
            if gated:
                recent.append(t - 1 + resolve_slots)
                if full:
                    del recent[0]
                else:
                    full = len(recent) == depth
        n_misses = n_probes - n_hits
        self._t = t
        self._busy_until = busy
        self._miss_fills += n_misses
        self.probes_scalar += n_probes
        win = self._win
        win.probes += n_probes
        win.hits += n_hits
        win.misses += n_misses
        win.right_probes += n_probes
        win.right_misses += n_misses
        win.right_fills += n_misses
        win.fills += n_misses
        win.evictions += n_evict
        win.wrongpath_hits += n_wrong_hits
        win.bus_requests += n_misses
        win.bus_wait += bus_wait
        win.bus += bus_pen
        win.rt_icache += n_misses * duration
        win.force_resolve += force_pen
        win.branch_full += full_pen

    def _station_span(self, i: int, end: int) -> int:
        """Probes while a wrong-path fill is in flight (Resume only).

        The station timeline is resolved up front: the fill's install
        time is already known (``_station_done``), and until the clock
        reaches it the pending fill is unobservable to any probe that
        (a) hits and (b) does not touch the station line's set — the
        install only mutates that one set, and the install moment
        itself is untimed (the installed counter lands in the same
        window either way, since segments never span a window switch).
        So the leading such stretch runs through the bulk hit path; the
        first miss, set conflict, or drained station falls back to the
        per-probe station mirror (``_probe_scalar``).  The span never
        covers the segment's last probe: ending each station-era segment
        with a per-probe drain check pins the install to the same
        counter window the event loop charges it to, and guarantees a
        fill still pending at the end of the trace is left pending
        exactly when the event loop leaves it pending."""
        if self._station_done <= self._t:
            self._install_station()
            return i
        if self._assoc != 1 or end - i - 1 < self._scalar_threshold:
            return self._probe_scalar(i)
        w = min(end - i - 1, self._window)
        sets = self._probe_set[i : i + w]
        tags = self._probe_tag[i : i + w]
        ok = (self._tag_state[sets] == tags) & (
            sets != (self._station_line & self._set_mask)
        )
        bad = np.flatnonzero(~ok)
        span = int(bad[0]) if bad.size else w
        if span == 0:
            return self._probe_scalar(i)
        self._account_hits(i, i + span, sets[:span], tags[:span])
        self._advance_hits(i, i + span)
        return i + span

    def _probe_scalar_simple(self, i: int) -> None:
        """One right-path probe with no fill station in flight — the
        per-probe scalar mirror for associative cells (direct-mapped
        spans take ``_scalar_span``; gated terminator probes have chunk
        1, so appending ``t - 1 + resolve_slots`` after the chunk equals
        the pre-chunk resolve time the bulk path records)."""
        win = self._win
        t = self._t
        recent = self._recent
        pa = self._pa
        gated = pa.gate_l[i]
        if gated and len(recent) == self._depth and recent[0] > t:
            win.branch_full += recent[0] - t
            t = recent[0]
        line = pa.line_l[i]
        hit = self._probe_hit_scalar(line)
        win.right_probes += 1
        self.probes_scalar += 1
        if not hit:
            win.right_misses += 1
            policy = self._policy
            if policy is FetchPolicy.PESSIMISTIC or policy is FetchPolicy.DECODE:
                guard = t - 1 + self._decode_slots
                if (
                    policy is FetchPolicy.PESSIMISTIC
                    and recent
                    and recent[-1] > guard
                ):
                    guard = recent[-1]
                if guard > t:
                    win.force_resolve += guard - t
                    t = guard
            duration = self._penalty_slots
            busy = self._busy_until
            start = busy if busy > t else t
            done = start + duration
            self._busy_until = (
                done if self._interleave is None else start + self._interleave
            )
            win.bus_requests += 1
            win.bus_wait += start - t
            if start > t:
                win.bus += start - t
                t = start
            win.rt_icache += duration
            self._miss_fills += 1
            t = done
            self._fill(line, _ORG_RIGHT)
            win.right_fills += 1
        t += pa.chunk_l[i]
        if gated:
            recent.append(t - 1 + self._resolve_slots)
            if len(recent) > self._depth:
                del recent[0]
        self._t = t

    def _probe_scalar(self, i: int) -> int:
        """One right-path probe while a wrong-path fill is in flight
        (Resume only) — the full ``_fetch_right_line`` mirror including
        station drain and in-flight merge."""
        win = self._win
        t = self._t
        recent = self._recent
        pa = self._pa
        gated = pa.gate_l[i]
        if gated and len(recent) == self._depth and recent[0] > t:
            win.branch_full += recent[0] - t
            t = recent[0]
        if self._has_station and self._station_done <= t:
            self._install_station()
        line = pa.line_l[i]
        hit = self._probe_hit_scalar(line)
        win.right_probes += 1
        self.probes_scalar += 1
        if not hit:
            win.right_misses += 1
            if self._has_station and self._station_line == line:
                done = self._station_done
                win.bus += done - t
                t = done
                self._install_station()
                win.inflight_merges += 1
            else:
                # Resume has no force-resolve guard.
                duration = self._penalty_slots
                busy = self._busy_until
                start = busy if busy > t else t
                done = start + duration
                self._busy_until = (
                    done if self._interleave is None else start + self._interleave
                )
                win.bus_requests += 1
                win.bus_wait += start - t
                if start > t:
                    win.bus += start - t
                    t = start
                win.rt_icache += duration
                self._miss_fills += 1
                t = done
                if self._has_station and self._station_done <= t:
                    self._install_station()
                self._fill(line, _ORG_RIGHT)
                win.right_fills += 1
        t += pa.chunk_l[i]
        if gated:
            recent.append(t - 1 + self._resolve_slots)
            if len(recent) > self._depth:
                del recent[0]
        self._t = t
        return i + 1

    # -- redirects and wrong paths --------------------------------------------

    def _walk(self, e: int, window_start: int, window_end: int, outcome: int) -> int:
        """Mirror of ``_walk_wrong_path`` over the pre-lowered line
        probes of stream event *e*; returns the right-path resume slot.

        The batched walker: the walk's probes were split at line
        boundaries once per (stream, line size) lowering, so a walk is a
        slice of flat arrays.  With no fill in flight, the leading
        all-hit stretch is pure accounting — one bulk tag match plus the
        ``walk_cutoff`` kernel retire it in O(array ops) when the walk
        is long enough to pay for them; shorter all-hit stretches run
        through a tight list loop.  The first miss (fills, station
        traffic) drops to the full scalar mirror.
        """
        # Decode walks always happen; fills only once the redirect is
        # known to be a mispredict (outcome code 2).
        fills = self._walk_fills
        if fills is None:
            fills = outcome == 2
        blocking = self._walk_blocking
        win = self._win
        cur = window_start
        wa = self._wa
        idx = wa.ev_off_l[e]
        hi = wa.ev_off_l[e + 1]
        direct = self._assoc == 1
        if hi - idx >= self._scalar_threshold and not self._has_station:
            state = self._tag_state if direct else self._tag_table
            hmask = match_tags(state, self._wa_set[idx:hi], self._wa_tag[idx:hi])
            miss_at = np.flatnonzero(~hmask)
            p = int(miss_at[0]) if miss_at.size else hi - idx
            if p:
                k, consumed = walk_cutoff(
                    wa.chunk[idx : idx + p], window_end - cur
                )
                win.wrong_probes += k
                win.wrong_instructions += consumed
                self.walk_probes_bulk += k
                cur += consumed
                idx += k
        n_l = wa.chunk_l
        duration = self._penalty_slots
        n_scalar = 0
        n_instr = 0
        if direct and not self._has_station:
            # All-hit fast loop: probes that hit an idle-station cache
            # mutate nothing, so only local accumulators move until the
            # first miss (or the window closes).
            tags_l = self._tags_l
            for s_idx, wtag, n in self._wtuples[idx:hi]:
                if cur >= window_end or tags_l[s_idx] != wtag:
                    break
                n_scalar += 1
                n_instr += n
                cur += n
                idx += 1
        line_l = wa.line_l
        while idx < hi:
            if cur >= window_end:
                break
            if self._has_station and self._station_done <= cur:
                self._install_station()
            line = line_l[idx]
            n = n_l[idx]
            idx += 1
            n_scalar += 1
            if direct:
                hit = self._tags_l[line & self._set_mask] == line >> self._set_shift
            else:
                hit = self._contains(line)
            if hit:
                n_instr += n
                cur += n
                continue
            win.wrong_misses += 1
            if self._has_station and self._station_line == line:
                done = self._station_done
                if not blocking and done < window_end:
                    cur = done
                    self._install_station()
                    n_instr += n
                    cur += n
                    continue
                break
            if not fills:
                break
            if self._has_station:
                # Resume's single fill slot is busy: stop walking.
                break
            request_at = cur + self._walk_decode_slots
            busy = self._busy_until
            start = busy if busy > request_at else request_at
            done = start + duration
            self._busy_until = (
                done if self._interleave is None else start + self._interleave
            )
            win.bus_requests += 1
            win.bus_wait += start - request_at
            win.wrong_fills += 1
            self._miss_fills += 1
            if blocking:
                self._fill(line, _ORG_WRONG)
                self._wrong_lines = True
                if done >= window_end:
                    win.wrong_icache += done - window_end
                    win.wrong_probes += n_scalar
                    win.wrong_instructions += n_instr
                    self.walk_probes_scalar += n_scalar
                    return done
                cur = done
                n_instr += n
                cur += n
                continue
            if done <= window_end:
                self._fill(line, _ORG_WRONG)
                self._wrong_lines = True
                cur = done
                n_instr += n
                cur += n
                continue
            self._station_line = line
            self._station_done = done
            self._has_station = True
            break
        win.wrong_probes += n_scalar
        win.wrong_instructions += n_instr
        self.walk_probes_scalar += n_scalar
        return window_end

    def _install_station(self) -> None:
        self._fill(self._station_line, _ORG_WRONG)
        self._wrong_lines = True
        self._win.station_installed += 1
        self._has_station = False

    # -- tag-mirror primitives ------------------------------------------------

    def _contains(self, line: int) -> bool:
        set_idx = line & self._set_mask
        tag = line >> self._set_shift
        if self._assoc == 1:
            return self._tags_l[set_idx] == tag
        row = self._tag_table[set_idx]
        cnt = int(self._counts[set_idx])
        for k in range(cnt):
            if row[k] == tag:
                return True
        return False

    def _probe_hit_scalar(self, line: int) -> bool:
        win = self._win
        win.probes += 1
        set_idx = line & self._set_mask
        tag = line >> self._set_shift
        if self._assoc == 1:
            if self._tags_l[set_idx] == tag:
                win.hits += 1
                if self._orgs_l[set_idx]:
                    win.wrongpath_hits += 1
                return True
            win.misses += 1
            return False
        row = self._tag_table[set_idx]
        orow = self._origin_table[set_idx]
        cnt = int(self._counts[set_idx])
        for k in range(cnt):
            if row[k] == tag:
                origin = int(orow[k])
                for j in range(k, cnt - 1):
                    row[j] = row[j + 1]
                    orow[j] = orow[j + 1]
                row[cnt - 1] = tag
                orow[cnt - 1] = origin
                win.hits += 1
                if origin == _ORG_WRONG:
                    win.wrongpath_hits += 1
                return True
        win.misses += 1
        return False

    def _fill(self, line: int, origin: int) -> None:
        win = self._win
        win.fills += 1
        set_idx = line & self._set_mask
        tag = line >> self._set_shift
        if self._assoc == 1:
            resident = self._tags_l[set_idx]
            if resident != -1 and resident != tag:
                win.evictions += 1
            self._tags_l[set_idx] = tag
            self._orgs_l[set_idx] = origin
            self._tag_state[set_idx] = tag
            self._origin_state[set_idx] = origin
            return
        row = self._tag_table[set_idx]
        orow = self._origin_table[set_idx]
        cnt = int(self._counts[set_idx])
        for k in range(cnt):
            if row[k] == tag:
                # Refill of a resident line: refresh origin, move to MRU.
                for j in range(k, cnt - 1):
                    row[j] = row[j + 1]
                    orow[j] = orow[j + 1]
                row[cnt - 1] = tag
                orow[cnt - 1] = origin
                return
        if cnt >= self._assoc:
            win.evictions += 1
            for j in range(cnt - 1):
                row[j] = row[j + 1]
                orow[j] = orow[j + 1]
            row[cnt - 1] = tag
            orow[cnt - 1] = origin
            return
        row[cnt] = tag
        orow[cnt] = origin
        self._counts[set_idx] = cnt + 1

    # -- result construction ---------------------------------------------------

    def _finish(self, trace: Trace, ta: TraceArrays, boundary_rec: int) -> SimulationResult:
        """Write the measured window back into the wrapped event-loop
        engine and delegate result/metrics construction to it."""
        inner = self.inner
        meas = self._meas
        inner.penalties = PenaltyAccumulator(
            branch_full=meas.branch_full,
            branch=meas.branch,
            rt_icache=meas.rt_icache,
            wrong_icache=meas.wrong_icache,
            bus=meas.bus,
            force_resolve=meas.force_resolve,
        )
        warm_instructions = int(ta.cum[boundary_rec - 1]) if boundary_rec > 0 else 0
        inner.counters = EngineCounters(
            instructions=int(ta.cum[-1]) - warm_instructions,
            blocks=ta.n_records - boundary_rec,
            right_probes=meas.right_probes,
            right_misses=meas.right_misses,
            wrong_probes=meas.wrong_probes,
            wrong_misses=meas.wrong_misses,
            right_fills=meas.right_fills,
            wrong_fills=meas.wrong_fills,
            wrong_instructions=meas.wrong_instructions,
            inflight_merges=meas.inflight_merges,
        )
        inner.unit.stats = self._branch_stats(ta, boundary_rec)
        if inner.cache is not None:
            stats = inner.cache.stats
            stats.probes = meas.probes
            stats.hits = meas.hits
            stats.misses = meas.misses
            stats.fills = meas.fills
            stats.evictions = meas.evictions
            stats.wrongpath_hits = meas.wrongpath_hits
        inner.bus.requests = meas.bus_requests
        inner.bus.busy_wait_slots = meas.bus_wait
        inner.station.installed = meas.station_installed
        if inner._miss_durations is not None:
            # Every fill takes the flat miss penalty (no L2 in eligible
            # cells); warmup observations are included, as in the event
            # loop (the histograms survive _reset_measurement).
            inner._miss_durations = [self._penalty_slots] * self._miss_fills
            redirect = self._ev_outcome != 0
            inner._redirect_penalties = [
                int(p) for p in self._ev_penalty[redirect]
            ]
        return inner._build_result(trace)

    def _branch_stats(self, ta: TraceArrays, boundary_rec: int) -> BranchStats:
        """Reconstruct the measured-window BranchStats from the stream."""
        first = int(np.searchsorted(ta.ev_rec, boundary_rec, side="left"))
        kinds = ta.kinds[ta.ev_rec[first:]]
        outcome = self._ev_outcome[first:]
        cause = self._ev_cause[first:]
        penalty = self._ev_penalty[first:]
        conditional = int((kinds == _COND).sum())
        return BranchStats(
            conditional=conditional,
            unconditional=int(kinds.size - conditional),
            correct=int((outcome == 0).sum()),
            pht_mispredicts=int((cause == 2).sum()),
            btb_misfetches=int((cause == 1).sum()),
            btb_mispredicts=int((cause == 3).sum()),
            penalty_slots_by_cause={
                "btb_misfetch": int(penalty[cause == 1].sum()),
                "pht_mispredict": int(penalty[cause == 2].sum()),
                "btb_mispredict": int(penalty[cause == 3].sum()),
            },
        )
