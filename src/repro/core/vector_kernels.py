"""NumPy kernels and lowered array state for the vectorized backend.

:mod:`repro.core.vector` is two things: an engine (``VectorEngine``,
the bit-identical batch mirror of the event loop) and the pure batch
machinery it runs on.  This module is the machinery:

* **kernels** — pure array transforms (or in-place updates of their
  designated state arrays), each with a straight-Python reference in
  ``tests/properties/test_vector_kernels.py``: set/tag arithmetic
  (:func:`split_sets`), run-to-probe expansion (:func:`expand_runs`),
  bulk tag matching (:func:`match_tags`), LRU span updates
  (:func:`lru_update_spans`), speculation-depth gating
  (:func:`depth_gate_positions`), segment positioning
  (:func:`accumulate_positions`), and the wrong-path window cutoff
  (:func:`walk_cutoff`);

* **lowered state** — the per-trace / per-line-size / per-geometry
  array forms the engine consumes (:class:`TraceArrays`,
  :class:`ProbeArrays`, :class:`WalkArrays`, and their set/tag splits
  :class:`ProbeSplit` / :class:`WalkSplit`), obtained only through the
  memoized factories :func:`trace_arrays`, :func:`probe_arrays`,
  :func:`walk_arrays`, :func:`probe_split` and :func:`walk_split`.
  The lowered state is pure read-only data, so one lowering serves
  every engine (and every ``AdaptiveEngine`` fork) simulating the same
  trace — simlint SIM011 flags direct constructions, exactly as it
  does for the engines themselves.

Each lowered class carries both NumPy arrays (for the batch kernels)
and plain-list mirrors (for the exact scalar mirrors: list indexing is
~3x faster than ndarray scalar indexing in per-probe Python code).
"""

from __future__ import annotations

import numpy as np

from repro.core.wrongpath import lines_from_runs_arrays
from repro.isa import INSTRUCTION_SIZE, InstrKind
from repro.trace.event import Trace

_PLAIN = int(InstrKind.PLAIN)
_COND = int(InstrKind.COND_BRANCH)


# -- kernels -----------------------------------------------------------------


def split_sets(lines, set_mask: int, set_shift: int):
    """Set-index / tag split of an array of line numbers."""
    lines = np.asarray(lines, dtype=np.int64)
    return lines & set_mask, lines >> set_shift


def expand_runs(run_pc, run_n, line_size: int):
    """Expand instruction runs into per-line probes.

    Mirrors the event loop's ``_issue_run`` chunking: a run of *n*
    instructions starting at *pc* probes each cache line it touches
    once, issuing ``min(per_line - idx % per_line, remaining)``
    instructions from it.  Returns ``(probe_run, probe_line,
    probe_chunk)`` with one entry per probe.
    """
    line, chunk, run_off = lines_from_runs_arrays(run_pc, run_n, line_size)
    counts = run_off[1:] - run_off[:-1]
    probe_run = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    return probe_run, line, chunk


def match_tags(tag_state, sets, tags):
    """Bulk tag match: hit mask for probes against the tag mirror.

    ``tag_state`` is either the direct-mapped per-set tag array (1-D,
    ``-1`` = empty) or the set-associative ``(n_sets, assoc)`` table
    (invalid ways hold ``-1``; real tags are non-negative).
    """
    state = np.asarray(tag_state)
    sets = np.asarray(sets, dtype=np.int64)
    tags = np.asarray(tags, dtype=np.int64)
    if state.ndim == 1:
        return state[sets] == tags
    return (state[sets] == tags[:, None]).any(axis=1)


def lru_update_spans(tag_table, origin_table, counts, sets, tags) -> None:
    """Apply a hit-only access span to the LRU tag table, in place.

    Every ``(set, tag)`` access must be a hit.  Sequentially moving each
    accessed way to the MRU slot leaves: untouched ways first in their
    original relative order, then the touched tags ordered by *last*
    access.  The kernel computes that final arrangement directly —
    last-access order per set via a lexsort — instead of replaying the
    accesses one by one.
    """
    sets = np.asarray(sets, dtype=np.int64)
    tags = np.asarray(tags, dtype=np.int64)
    if sets.size == 0:
        return
    pos = np.arange(sets.size)
    order = np.lexsort((pos, tags, sets))
    s = sets[order]
    g = tags[order]
    p = pos[order]
    last = np.ones(s.size, dtype=bool)
    last[:-1] = (s[1:] != s[:-1]) | (g[1:] != g[:-1])
    u_set = s[last]
    u_tag = g[last]
    u_pos = p[last]
    by_access = np.lexsort((u_pos, u_set))
    u_set = u_set[by_access]
    u_tag = u_tag[by_access]
    starts = np.flatnonzero(np.r_[True, u_set[1:] != u_set[:-1]])
    ends = np.r_[starts[1:], [u_set.size]]
    for a, b in zip(starts.tolist(), ends.tolist()):
        set_idx = int(u_set[a])
        touched = u_tag[a:b].tolist()
        cnt = int(counts[set_idx])
        row = tag_table[set_idx]
        orow = origin_table[set_idx]
        resident = row[:cnt].tolist()
        origin_of = dict(zip(resident, orow[:cnt].tolist()))
        touched_set = set(touched)
        new_tags = [tg for tg in resident if tg not in touched_set] + touched
        row[:cnt] = new_tags
        orow[:cnt] = [origin_of[tg] for tg in new_tags]


def depth_gate_positions(base, recent, resolve_slots: int, depth: int):
    """Gate a sequence of conditional-branch fetch positions.

    ``base`` holds the stall-free issue positions of consecutive gated
    terminators (every earlier stall shifts all later positions equally,
    which holds whenever no other timing feedback occurs between them —
    all-hit spans and perfect-cache runs).  ``recent`` seeds the window
    of outstanding resolve times.  Returns ``(stalls, issue, recent')``:
    per-branch stall slots, post-gate issue positions, and the resolve
    window to carry forward.
    """
    base = np.asarray(base, dtype=np.int64)
    n = base.size
    window = list(recent)[-depth:] if depth > 0 else []
    stalls = np.zeros(n, dtype=np.int64)
    if n == 0:
        return stalls, base.copy(), window
    m = len(window)
    if n >= 8:
        # No-stall fast path: if nothing stalls, the resolve times are
        # exactly recent ++ (base + resolve_slots), and branch k gates on
        # the depth-th previous resolve.  If all those lie at or before
        # base[k], no gate ever fires (induction over k) and the whole
        # call collapses to array ops.
        resolves = np.concatenate(
            [np.asarray(window, dtype=np.int64), base + resolve_slots]
        )
        back = np.arange(n) + m - depth
        valid = back >= 0
        if not valid.any() or bool(np.all(resolves[back[valid]] <= base[valid])):
            tail = resolves[-depth:] if depth > 0 else resolves[:0]
            return stalls, base.copy(), [int(v) for v in tail]
    issue = np.empty(n, dtype=np.int64)
    shift = 0
    for k in range(n):
        t = int(base[k]) + shift
        if len(window) == depth and window[0] > t:
            stall = window[0] - t
            stalls[k] = stall
            shift += stall
            t = window[0]
        issue[k] = t
        window.append(t + resolve_slots)
        if len(window) > depth:
            del window[0]
    return stalls, issue, window


def accumulate_positions(lengths, extra):
    """Start positions of consecutive segments: exclusive cumulative sum
    of per-segment durations (``lengths + extra``)."""
    total = np.asarray(lengths, dtype=np.int64) + np.asarray(extra, dtype=np.int64)
    return np.cumsum(total) - total


def walk_cutoff(chunks, budget: int):
    """Depth/penalty cutoff over an all-hit wrong-path prefix.

    ``chunks`` holds the instruction counts of consecutive hitting line
    probes of one walk; *budget* is the redirect window's remaining
    instruction slots.  A probe issues iff the instructions consumed
    before it still lie below the budget — exactly the event loop's
    ``cur >= window_end`` break, hoisted out of the per-probe loop.
    Returns ``(k, consumed)``: how many probes issue and how many
    instruction slots they consume.
    """
    chunks = np.asarray(chunks, dtype=np.int64)
    if budget <= 0 or chunks.size == 0:
        return 0, 0
    cum = np.cumsum(chunks)
    k = int(np.searchsorted(cum - chunks, budget, side="left"))
    consumed = int(cum[k - 1]) if k else 0
    return k, consumed


# -- lowered state (memoized) ------------------------------------------------
#
# The record arrays depend only on the trace; the probe stream
# additionally depends on the line size; the walk probes additionally
# depend on the stream.  All memos key on *object identity* — each
# entry pins a strong reference to its source object, so an ``id()``
# cannot be recycled while the entry lives.  Content keys would need a
# digest the Trace doesn't carry, and test suites legitimately build
# distinct programs under one name/seed/shape.  Identity keying still
# shares everything that should be shared: a policy sweep passes one
# trace object to every engine, and ``FetchEngine.fork()`` shares the
# program/config/stream with its forks by identity.

_MEMO_CAP = 8

#: Lowerings actually performed, by kind — a test hook (see
#: tests/core/test_lowering_sharing.py), not a metric.
LOWERING_COUNTS = {
    "trace": 0,
    "probe": 0,
    "walk": 0,
    "probe_split": 0,
    "walk_split": 0,
}


class TraceArrays:
    """Per-record arrays of one trace (line-size independent)."""

    __slots__ = ("starts", "lengths", "kinds", "cum", "ev_rec", "n_records")

    def __init__(self, trace: Trace) -> None:
        n = trace.n_blocks
        records = trace.records
        self.starts = np.fromiter((r[0] for r in records), np.int64, n)
        self.lengths = np.fromiter((r[1] for r in records), np.int64, n)
        self.kinds = np.fromiter((r[2] for r in records), np.int64, n)
        self.cum = np.cumsum(self.lengths)
        self.ev_rec = np.flatnonzero(self.kinds != _PLAIN)
        self.n_records = n


class ProbeArrays:
    """The right-path probe stream of one trace at one line size.

    One entry per cache-line access the event loop would make, with
    scalar-mirror list forms (``*_l``) alongside the kernel arrays.
    ``next_gate[i]`` is the first gated probe at or after ``i`` (with a
    trailing ``n_probes`` sentinel), so hit spans can skip the gate
    bookkeeping entirely when no terminator falls inside them.
    """

    __slots__ = (
        "line",
        "chunk",
        "gate",
        "chunk_cumsum",
        "last_probe",
        "n_probes",
        "line_l",
        "chunk_l",
        "gate_l",
        "cum_l",
        "next_gate",
    )

    def __init__(self, ta: TraceArrays, line_size: int) -> None:
        is_cond = ta.kinds == _COND
        prefix_n = np.where(is_cond, ta.lengths - 1, ta.lengths)
        has_prefix = prefix_n > 0
        runs_per_rec = has_prefix.astype(np.int64) + is_cond
        run_off = np.cumsum(runs_per_rec) - runs_per_rec
        total_runs = int(runs_per_rec.sum())
        run_pc = np.zeros(total_runs, dtype=np.int64)
        run_n = np.zeros(total_runs, dtype=np.int64)
        run_gate = np.zeros(total_runs, dtype=bool)
        prefix_at = run_off[has_prefix]
        run_pc[prefix_at] = ta.starts[has_prefix]
        run_n[prefix_at] = prefix_n[has_prefix]
        term_addr = ta.starts + (ta.lengths - 1) * INSTRUCTION_SIZE
        term_at = (run_off + has_prefix)[is_cond]
        run_pc[term_at] = term_addr[is_cond]
        run_n[term_at] = 1
        run_gate[term_at] = True
        run_rec = np.repeat(np.arange(ta.n_records, dtype=np.int64), runs_per_rec)
        probe_run, self.line, self.chunk = expand_runs(run_pc, run_n, line_size)
        self.gate = run_gate[probe_run]
        probe_rec = run_rec[probe_run]
        probes_per_rec = np.bincount(probe_rec, minlength=ta.n_records)
        self.last_probe = np.cumsum(probes_per_rec) - 1
        self.chunk_cumsum = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(self.chunk)]
        )
        n = int(self.line.size)
        self.n_probes = n
        self.line_l = self.line.tolist()
        self.chunk_l = self.chunk.tolist()
        self.gate_l = self.gate.tolist()
        self.cum_l = self.chunk_cumsum.tolist()
        gate_pos = np.where(self.gate, np.arange(n, dtype=np.int64), n)
        if n:
            gate_pos = np.minimum.accumulate(gate_pos[::-1])[::-1]
        self.next_gate = np.append(gate_pos, n).tolist()


class WalkArrays:
    """Every recorded wrong-path walk of one stream, pre-split at one
    line size.

    ``ev_off_l[e] : ev_off_l[e + 1]`` indexes stream event *e*'s line
    probes in the flat ``line``/``chunk`` arrays — the lowering the
    scalar walker previously re-derived per redirect through
    ``iter_lines_from_runs``.
    """

    __slots__ = ("line", "chunk", "ev_off_l", "line_l", "chunk_l", "n_events")

    def __init__(self, wp_pc, wp_n, wp_off, line_size: int) -> None:
        self.line, self.chunk, run_off = lines_from_runs_arrays(
            wp_pc, wp_n, line_size
        )
        ev_off = run_off[np.asarray(wp_off, dtype=np.int64)]
        self.ev_off_l = ev_off.tolist()
        self.line_l = self.line.tolist()
        self.chunk_l = self.chunk.tolist()
        self.n_events = len(self.ev_off_l) - 1


class ProbeSplit:
    """The right-path probe stream split for one cache geometry.

    The set/tag split depends on the cache's set count, so it cannot
    live in :class:`ProbeArrays` (keyed by line size only); memoizing it
    separately keeps a policy sweep at fixed geometry from re-deriving
    it per engine.  ``tuples`` pre-zips ``(set, tag, chunk, gate)`` per
    probe: the scalar mirror iterates one slice of prebuilt tuples
    instead of subscripting four lists per probe.
    """

    __slots__ = ("set", "tag", "tuples")

    def __init__(self, pa: ProbeArrays, set_mask: int, set_shift: int) -> None:
        self.set, self.tag = split_sets(pa.line, set_mask, set_shift)
        self.tuples = list(
            zip(self.set.tolist(), self.tag.tolist(), pa.chunk_l, pa.gate_l)
        )


class WalkSplit:
    """The wrong-path walk probes split for one cache geometry.

    ``tuples`` pre-zips ``(set, tag, chunk)`` per walk probe for the
    scalar walker's all-hit fast loop.
    """

    __slots__ = ("set", "tag", "tuples")

    def __init__(self, wa: WalkArrays, set_mask: int, set_shift: int) -> None:
        self.set, self.tag = split_sets(wa.line, set_mask, set_shift)
        self.tuples = list(
            zip(self.set.tolist(), self.tag.tolist(), wa.chunk_l)
        )


_trace_memo: dict[int, tuple[Trace, TraceArrays]] = {}
_probe_memo: dict[tuple, tuple[Trace, ProbeArrays]] = {}
_walk_memo: dict[tuple, tuple[object, WalkArrays]] = {}
_probe_split_memo: dict[tuple, tuple[Trace, ProbeSplit]] = {}
_walk_split_memo: dict[tuple, tuple[object, WalkSplit]] = {}


def _memo_get(memo: dict, anchor, key, kind: str, build):
    entry = memo.get(key)
    if entry is not None:
        return entry[1]
    if len(memo) >= _MEMO_CAP:
        memo.pop(next(iter(memo)))
    LOWERING_COUNTS[kind] += 1
    value = build()
    memo[key] = (anchor, value)
    return value


def trace_arrays(trace: Trace) -> TraceArrays:
    """The (memoized) per-record arrays of *trace*."""
    return _memo_get(
        _trace_memo, trace, id(trace), "trace", lambda: TraceArrays(trace)
    )


def probe_arrays(trace: Trace, line_size: int) -> ProbeArrays:
    """The (memoized) right-path probe stream of *trace* at *line_size*."""
    ta = trace_arrays(trace)
    return _memo_get(
        _probe_memo,
        trace,
        (id(trace), line_size),
        "probe",
        lambda: ProbeArrays(ta, line_size),
    )


def walk_arrays(stream, line_size: int) -> WalkArrays:
    """The (memoized) lowered wrong-path walks of *stream* at *line_size*."""
    return _memo_get(
        _walk_memo,
        stream,
        (id(stream), line_size),
        "walk",
        lambda: WalkArrays(stream.wp_pc, stream.wp_n, stream.wp_off, line_size),
    )


def probe_split(
    trace: Trace, line_size: int, set_mask: int, set_shift: int
) -> ProbeSplit:
    """The (memoized) set/tag split of *trace*'s probe stream for one
    cache geometry."""
    pa = probe_arrays(trace, line_size)
    return _memo_get(
        _probe_split_memo,
        trace,
        (id(trace), line_size, set_mask, set_shift),
        "probe_split",
        lambda: ProbeSplit(pa, set_mask, set_shift),
    )


def walk_split(
    stream, line_size: int, set_mask: int, set_shift: int
) -> WalkSplit:
    """The (memoized) set/tag split of *stream*'s walk probes for one
    cache geometry."""
    wa = walk_arrays(stream, line_size)
    return _memo_get(
        _walk_split_memo,
        stream,
        (id(stream), line_size, set_mask, set_shift),
        "walk_split",
        lambda: WalkSplit(wa, set_mask, set_shift),
    )
