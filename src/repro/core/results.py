"""Simulation results: ISPI breakdown and event counters.

The paper's primary metric is **ISPI** — instruction issue slots lost per
correct-path instruction — decomposed into the components of its Figures
1-4:

* ``branch``       — misfetch/mispredict redirect penalties;
* ``branch_full``  — stalls because the unresolved-branch limit was hit;
* ``rt_icache``    — waiting for right-path I-cache fills;
* ``wrong_icache`` — waiting for wrong-path fills past the redirect point
  (Optimistic's extra cost);
* ``bus``          — waiting for the channel because a previously initiated
  fill or prefetch is still in flight;
* ``force_resolve``— the conservative policies' wait before they may even
  start a right-path fill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.unit import BranchStats
from repro.cache.classify import MissClassification
from repro.cache.icache import CacheStats
from repro.config import FetchPolicy, SimConfig
from repro.errors import SimulationError

#: Penalty components, in the stacking order of the paper's figures
#: (bottom to top).
COMPONENTS = (
    "branch_full",
    "branch",
    "rt_icache",
    "wrong_icache",
    "bus",
    "force_resolve",
)


@dataclass(slots=True)
class PenaltyAccumulator:
    """Mutable slot counters, one per ISPI component."""

    branch_full: int = 0
    branch: int = 0
    rt_icache: int = 0
    wrong_icache: int = 0
    bus: int = 0
    force_resolve: int = 0

    def add(self, component: str, slots: int) -> None:
        """Charge *slots* to *component* (must be one of COMPONENTS)."""
        if slots < 0:
            raise SimulationError(f"negative penalty {slots} for {component}")
        setattr(self, component, getattr(self, component) + slots)

    def as_dict(self) -> dict[str, int]:
        """Slot totals keyed by component name."""
        return {name: getattr(self, name) for name in COMPONENTS}

    @property
    def total_slots(self) -> int:
        """Total penalty slots across all components."""
        return sum(getattr(self, name) for name in COMPONENTS)


@dataclass(slots=True)
class EngineCounters:
    """Raw event counts from one simulation run."""

    #: Correct-path instructions issued.
    instructions: int = 0
    #: Correct-path basic blocks processed.
    blocks: int = 0
    #: Right-path line probes / misses.
    right_probes: int = 0
    right_misses: int = 0
    #: Wrong-path line probes / misses (during redirect windows).
    wrong_probes: int = 0
    wrong_misses: int = 0
    #: Demand fills issued from the right / wrong path.
    right_fills: int = 0
    wrong_fills: int = 0
    #: Next-line prefetches issued / demand hits on prefetched lines.
    prefetches: int = 0
    prefetch_hits: int = 0
    #: Target (not-followed-arm) prefetches issued (extension).
    target_prefetches: int = 0
    #: Stream-buffer statistics (Jouppi extension): prefetches issued and
    #: right-path misses served from a buffer head.
    stream_prefetches: int = 0
    stream_hits: int = 0
    #: Second-level cache statistics (L2 extension).
    l2_hits: int = 0
    l2_misses: int = 0
    #: Wrong-path instructions fetched inside redirect windows.
    wrong_instructions: int = 0
    #: Times a right-path miss found its own line already in flight.
    inflight_merges: int = 0
    #: Right-path misses that merged with an in-flight *prefetch* — the
    #: prefetch was issued but arrived too late to hide the whole miss.
    prefetch_late: int = 0

    @property
    def memory_accesses(self) -> int:
        """Total line requests sent to the next level."""
        return (
            self.right_fills
            + self.wrong_fills
            + self.prefetches
            + self.target_prefetches
            + self.stream_prefetches
        )

    @property
    def right_miss_rate(self) -> float:
        """Right-path misses per right-path probe."""
        return self.right_misses / self.right_probes if self.right_probes else 0.0


@dataclass(frozen=True, slots=True)
class IntervalStats:
    """Measured statistics of one scheduling interval.

    Recorded whenever ``SimConfig.adaptive_interval`` is set; the partition
    invariant (enforced by tests/properties/test_interval_partition.py) is
    that the per-interval counters sum exactly to the whole-run totals —
    for warmed-up runs, over the intervals at/after the warmup reset.
    """

    #: Interval number, counted from 0 over the whole trace.
    index: int
    #: Fetch policy the engine ran during this interval.
    policy: FetchPolicy
    #: Correct-path instructions / blocks measured in the interval.
    instructions: int
    blocks: int
    #: Right-/wrong-path I-cache misses measured in the interval.
    right_misses: int
    wrong_misses: int
    #: Penalty slots per ISPI component (keys: :data:`COMPONENTS`).
    penalties: dict[str, int]

    @property
    def penalty_slots(self) -> int:
        """Total penalty slots charged during the interval."""
        return sum(self.penalties[name] for name in COMPONENTS)

    @property
    def ispi(self) -> float:
        """Slots lost per instruction within the interval."""
        n = self.instructions
        return self.penalty_slots / n if n else 0.0


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Everything measured by one engine run."""

    program: str
    config: SimConfig
    penalties: PenaltyAccumulator
    counters: EngineCounters
    branch_stats: BranchStats
    cache_stats: CacheStats | None
    classification: MissClassification | None = None
    metadata: dict[str, object] = field(default_factory=dict)
    #: Per-interval measurements (empty unless ``adaptive_interval`` set).
    intervals: tuple[IntervalStats, ...] = ()

    # -- ISPI ---------------------------------------------------------------

    def ispi(self, component: str) -> float:
        """Slots lost per correct-path instruction for one component."""
        n = self.counters.instructions
        if n == 0:
            raise SimulationError("no instructions were simulated")
        return getattr(self.penalties, component) / n

    @property
    def total_ispi(self) -> float:
        """Total penalty ISPI (the height of the paper's figure bars)."""
        n = self.counters.instructions
        if n == 0:
            raise SimulationError("no instructions were simulated")
        return self.penalties.total_slots / n

    def ispi_breakdown(self) -> dict[str, float]:
        """Per-component ISPI keyed by component name."""
        return {name: self.ispi(name) for name in COMPONENTS}

    # -- derived metrics ------------------------------------------------------

    @property
    def miss_rate_percent(self) -> float:
        """Right-path misses per correct-path instruction, in percent."""
        n = self.counters.instructions
        return 100.0 * self.counters.right_misses / n if n else 0.0

    @property
    def total_cycles(self) -> float:
        """Total front-end cycles = (useful + lost slots) / issue width."""
        slots = self.counters.instructions + self.penalties.total_slots
        return slots / self.config.issue_width

    def branch_ispi(self, cause: str) -> float:
        """Branch-penalty ISPI attributed to one cause (Table 3 columns).

        *cause* is one of ``btb_misfetch``, ``pht_mispredict``,
        ``btb_mispredict``.
        """
        n = self.counters.instructions
        if n == 0:
            raise SimulationError("no instructions were simulated")
        try:
            slots = self.branch_stats.penalty_slots_by_cause[cause]
        except KeyError:
            raise SimulationError(f"unknown branch penalty cause {cause!r}") from None
        return slots / n

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.program:>8} {self.config.policy.label:<6} "
            f"ISPI={self.total_ispi:.3f} "
            f"miss={self.miss_rate_percent:.2f}% "
            f"mem={self.counters.memory_accesses}"
        )


# -- graceful degradation -----------------------------------------------------

_NAN = float("nan")


class _MissingStats:
    """Attribute sink standing in for counters/stats of a failed cell.

    Every attribute reads as NaN, so any metric derived from a missing
    result is NaN too — which the report layer renders as an empty table
    cell, an empty CSV field, and JSON ``null``.
    """

    __slots__ = ()

    def __getattr__(self, name: str) -> float:
        if name.startswith("__"):  # keep pickling/copy protocols sane
            raise AttributeError(name)
        return _NAN

    def __getitem__(self, key: str) -> float:
        return _NAN

    def as_dict(self) -> dict[str, float]:
        return {name: _NAN for name in COMPONENTS}


@dataclass(frozen=True)
class MissingResult:
    """Placeholder for a sweep cell that failed under ``on_error="skip"``.

    Duck-types the metric surface of :class:`SimulationResult` (every
    number is NaN) so experiments render failed cells as *missing*
    entries instead of aborting the whole sweep.  The structured story of
    what went wrong lives in the runner's ``failures`` list as
    :class:`SweepFailure` records, not here.
    """

    program: str
    config: SimConfig
    #: Discriminator for callers that want to test explicitly.
    missing: bool = True

    @property
    def penalties(self) -> _MissingStats:
        return _MissingStats()

    @property
    def counters(self) -> _MissingStats:
        return _MissingStats()

    @property
    def branch_stats(self) -> _MissingStats:
        return _MissingStats()

    @property
    def cache_stats(self) -> _MissingStats:
        return _MissingStats()

    @property
    def classification(self) -> _MissingStats:
        return _MissingStats()

    @property
    def metadata(self) -> dict[str, object]:
        return {"missing": True}

    @property
    def intervals(self) -> tuple[()]:
        return ()

    def ispi(self, component: str) -> float:
        return _NAN

    @property
    def total_ispi(self) -> float:
        return _NAN

    def ispi_breakdown(self) -> dict[str, float]:
        return {name: _NAN for name in COMPONENTS}

    @property
    def miss_rate_percent(self) -> float:
        return _NAN

    @property
    def total_cycles(self) -> float:
        return _NAN

    def branch_ispi(self, cause: str) -> float:
        return _NAN

    def summary(self) -> str:
        return (
            f"{self.program:>8} {self.config.policy.label:<6} "
            f"(missing: cell failed and was skipped)"
        )


@dataclass(frozen=True, slots=True)
class SweepFailure:
    """One failed sweep cell/batch: the structured failure-report entry."""

    benchmark: str
    error_type: str
    message: str
    attempts: int
    transient: bool
    #: How many (benchmark, config) cells this failure covers.
    cells: int = 1

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form for the CLI failure report."""
        return {
            "benchmark": self.benchmark,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "transient": self.transient,
            "cells": self.cells,
        }

    def describe(self) -> str:
        """One human-readable report line."""
        kind = "transient" if self.transient else "deterministic"
        return (
            f"{self.benchmark}: {self.error_type} ({kind}, "
            f"{self.attempts} attempt(s), {self.cells} cell(s) skipped): "
            f"{self.message}"
        )
