"""Deterministic fault injection for sweep robustness testing.

The fault-tolerant sweep layer (retries, watchdog timeouts, graceful
degradation, checkpoint/resume) is only trustworthy if its failure paths
are *exercised*, and real failures — a worker segfault, a full disk, a
corrupted cache entry — are neither portable nor reproducible.  This
module provides the controlled substitute: a :class:`FaultPlan` is a
list of :class:`FaultSpec` entries, each saying *where* (phase +
benchmark), *when* (the Nth matching invocation), and *how* (crash, hard
process exit, delay, artifact corruption, deterministic bug) a failure
should strike.  The runners call :meth:`FaultPlan.fire` at every phase
boundary; without a plan the call sites are no-ops.

Determinism across retries and processes is the core design constraint:
a fault that re-fires on every retry would make recovery untestable.
Each spec therefore carries a budget of ``times`` *tickets* claimed
through atomic marker files (``O_CREAT | O_EXCL``) in a shared
``state_dir``, so a fault fires exactly ``times`` times across all
processes and all retry attempts of a sweep — a crashed-and-requeued
batch finds the ticket already claimed and succeeds.

Faults fire at phase *boundaries* (before the phase body runs), never
mid-simulation, so a retried attempt re-runs the whole phase and the
no-fault result is bit-identical to an undisturbed run — the property
the chaos suite in ``tests/robustness/`` asserts.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

from repro.errors import ExperimentError, InjectedFault, JobTimeoutError, ReproError

#: Worker-side phases, matching the runners' profiling phases.
WORKER_PHASES = ("build", "generate", "cache_load", "cache_store", "simulate")

#: Service-side phase boundaries (see :mod:`repro.service`):
#:
#: * ``dispatch``    — fires in the server's event loop just before a
#:   cell is submitted to the worker pool (inside the retry loop, so a
#:   ``crash`` here exercises the service's transient-retry path and an
#:   ``exit`` kills the whole server — the recovery-journal scenario);
#: * ``store_write`` — fires around the ResultStore write of a finished
#:   cell; a ``corrupt`` spec garbles the entry *after* it lands,
#:   modelling on-disk damage the store must treat as a miss;
#: * ``response``    — fires just before the HTTP response bytes are
#:   written, so a client sees a dead/empty connection and must retry.
SERVICE_PHASES = ("dispatch", "store_write", "response")

#: All phases a fault can strike.
PHASES = WORKER_PHASES + SERVICE_PHASES

#: Supported failure modes:
#:
#: * ``crash``   — raise a *transient* :class:`InjectedFault` (models a
#:   flaky worker error; eligible for retry);
#: * ``bug``     — raise a *deterministic* :class:`InjectedFault` (models
#:   a simulation bug; must fail fast / be skipped, never retried);
#: * ``exit``    — ``os._exit`` the process (models OS-level worker
#:   death; surfaces as ``BrokenProcessPool`` in the parent);
#: * ``delay``   — sleep ``seconds`` then continue (models a slow phase;
#:   long delays are what watchdog timeouts kill);
#: * ``corrupt`` — garble the artifact-cache entry for the benchmark
#:   before the phase runs (models on-disk corruption; the cache must
#:   treat it as a miss).
KINDS = ("crash", "bug", "exit", "delay", "corrupt")

#: Exit status used by ``exit`` faults (distinctive in worker post-mortems).
EXIT_STATUS = 17


def is_transient(exc: BaseException) -> bool:
    """Whether retrying could plausibly cure *exc*.

    The failure taxonomy of the fault-tolerant sweep layer (see
    ``docs/robustness.md``).  Transient: broken pools / dead workers
    (``BrokenExecutor``), OS-level I/O trouble (``OSError``), watchdog
    timeouts, and injected faults that declare themselves transient.
    Deterministic (never retried): every other :class:`ReproError` — a
    misconfiguration or simulation bug reproduces identically on retry —
    and unknown exception types, which are assumed to be bugs until
    proven flaky.
    """
    from concurrent.futures import BrokenExecutor

    if isinstance(exc, InjectedFault):
        return exc.transient
    if isinstance(exc, JobTimeoutError):
        return True
    if isinstance(exc, ReproError):
        return False
    return isinstance(exc, (BrokenExecutor, OSError))


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One planned failure: where, when, and how to strike."""

    phase: str
    kind: str
    #: Restrict to one benchmark (``None`` = any benchmark).
    benchmark: str | None = None
    #: Fire on the Nth matching invocation seen by a process (1-based).
    invocation: int = 1
    #: Total fires across the whole sweep (all processes, all retries).
    times: int = 1
    #: Sleep duration for ``delay`` faults.
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ExperimentError(
                f"unknown fault phase {self.phase!r}; known: {', '.join(PHASES)}"
            )
        if self.kind not in KINDS:
            raise ExperimentError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(KINDS)}"
            )
        if self.invocation < 1:
            raise ExperimentError(f"invocation must be >= 1: {self.invocation}")
        if self.times < 1:
            raise ExperimentError(f"times must be >= 1: {self.times}")
        if self.seconds < 0:
            raise ExperimentError(f"seconds must be >= 0: {self.seconds}")

    @classmethod
    def parse(cls, text: str) -> FaultSpec:
        """Parse ``phase:kind[:benchmark[:invocation[:seconds]]]``.

        The CLI's ``--inject-faults`` DSL: ``simulate:crash:li`` crashes
        the first simulation of ``li``; ``generate:delay:*:2:0.5`` sleeps
        0.5s before the second trace generation of any benchmark.
        """
        parts = text.strip().split(":")
        if len(parts) < 2:
            raise ExperimentError(
                f"fault spec {text!r} must be phase:kind[:benchmark"
                f"[:invocation[:seconds]]]"
            )
        phase, kind = parts[0], parts[1]
        benchmark = parts[2] if len(parts) > 2 and parts[2] not in ("", "*") else None
        try:
            invocation = int(parts[3]) if len(parts) > 3 else 1
            seconds = float(parts[4]) if len(parts) > 4 else 0.0
        except ValueError as exc:
            raise ExperimentError(f"bad fault spec {text!r}: {exc}") from None
        return cls(
            phase=phase, kind=kind, benchmark=benchmark,
            invocation=invocation, seconds=seconds,
        )


@dataclass
class FaultPlan:
    """A deterministic, cross-process schedule of injected failures.

    Picklable (it crosses the process-pool boundary with the worker
    payload).  Invocation counters are per-process; the cross-process
    "already fired" truth lives in ``state_dir`` as marker files, so a
    plan re-pickled into a retried worker does not re-fire spent faults.
    """

    faults: list[FaultSpec]
    #: Shared directory coordinating one-shot semantics across processes.
    state_dir: str
    #: Per-process (phase, benchmark) invocation counts.
    _counts: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Faults this process fired without raising (delay/corrupt).
    fired_soft: int = 0

    def __post_init__(self) -> None:
        self.faults = list(self.faults)
        Path(self.state_dir).mkdir(parents=True, exist_ok=True)

    @classmethod
    def parse(cls, text: str, state_dir: str) -> FaultPlan:
        """Build a plan from a comma-separated list of spec strings."""
        specs = [
            FaultSpec.parse(part)
            for part in text.split(",")
            if part.strip()
        ]
        if not specs:
            raise ExperimentError(f"no fault specs in {text!r}")
        return cls(faults=specs, state_dir=state_dir)

    @classmethod
    def seeded(
        cls,
        seed: int,
        state_dir: str,
        benchmarks: tuple[str, ...] = (),
        n_faults: int = 4,
        kinds: tuple[str, ...] = ("crash", "delay", "corrupt"),
        phases: tuple[str, ...] = WORKER_PHASES,
        max_invocation: int = 2,
    ) -> FaultPlan:
        """A pseudo-random but fully reproducible plan.

        The same ``seed`` always yields the same plan, so a chaos run is
        repeatable from its seed alone.  Only recoverable kinds are drawn
        by default (``bug`` would abort the sweep by design).
        """
        rng = Random(seed)
        specs = [
            FaultSpec(
                phase=rng.choice(phases),
                kind=rng.choice(kinds),
                benchmark=rng.choice(benchmarks) if benchmarks else None,
                invocation=rng.randint(1, max_invocation),
                seconds=round(rng.uniform(0.01, 0.05), 3),
            )
            for _ in range(n_faults)
        ]
        return cls(faults=specs, state_dir=state_dir)

    # -- firing --------------------------------------------------------------

    def fire(self, phase: str, benchmark: str) -> FaultSpec | None:
        """Invoke the plan at one phase boundary.

        Counts the invocation, then fires the first matching spec with an
        unclaimed ticket: raising for ``crash``/``bug``, exiting for
        ``exit``, sleeping for ``delay``.  ``corrupt`` (and ``delay``)
        specs are *returned* so the call site can apply site-specific
        damage; ``None`` means the phase proceeds undisturbed.
        """
        key = (phase, benchmark)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        for index, spec in enumerate(self.faults):
            if spec.phase != phase:
                continue
            if spec.benchmark is not None and spec.benchmark != benchmark:
                continue
            if count < spec.invocation:
                continue
            if not self._claim(index, spec):
                continue
            return self._trigger(spec, benchmark)
        return None

    def _claim(self, index: int, spec: FaultSpec) -> bool:
        """Atomically claim one of the spec's ``times`` tickets."""
        for ticket in range(spec.times):
            marker = Path(self.state_dir) / f"fired-{index}-{ticket}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def _trigger(self, spec: FaultSpec, benchmark: str) -> FaultSpec | None:
        where = f"{spec.phase} phase of benchmark {benchmark!r}"
        if spec.kind == "crash":
            raise InjectedFault(f"injected transient crash in {where}")
        if spec.kind == "bug":
            raise InjectedFault(
                f"injected deterministic bug in {where}", transient=False
            )
        if spec.kind == "exit":  # pragma: no cover - kills the process
            os._exit(EXIT_STATUS)
        if spec.kind == "delay":
            time.sleep(spec.seconds)
        self.fired_soft += 1
        return spec

    # -- introspection -------------------------------------------------------

    def fired_total(self) -> int:
        """Faults fired so far across *all* processes (marker-file truth)."""
        return sum(
            1 for p in sorted(Path(self.state_dir).iterdir())
            if p.name.startswith("fired-")
        )


def corrupt_entry(directory: str | os.PathLike[str]) -> int:
    """Overwrite every file under *directory* with garbage bytes.

    Used by ``corrupt`` faults to damage an artifact-cache entry in
    place; returns the number of files garbled (0 if the entry does not
    exist yet, in which case the "corruption" is a natural miss).
    """
    root = Path(directory)
    if not root.is_dir():
        return 0
    damaged = 0
    for path in sorted(root.iterdir()):
        if path.is_file():
            path.write_bytes(b"\x00corrupted-by-fault-injection\x00")
            damaged += 1
    return damaged
