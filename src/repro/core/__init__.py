"""The paper's primary contribution: the speculative fetch-policy engine.

:func:`~repro.core.engine.simulate` runs one (program, trace, config)
triple; :class:`~repro.core.runner.SimulationRunner` orchestrates sweeps
across benchmarks and policies with workload caching.
"""

from repro.core.engine import FetchEngine, build_branch_unit, simulate
from repro.core.parallel import ParallelRunner
from repro.core.results import (
    COMPONENTS,
    EngineCounters,
    PenaltyAccumulator,
    SimulationResult,
)
from repro.core.runner import DEFAULT_TRACE_LENGTH, SimulationRunner, WorkloadRun
from repro.core.wrongpath import iter_wrong_path_lines

__all__ = [
    "COMPONENTS",
    "DEFAULT_TRACE_LENGTH",
    "EngineCounters",
    "FetchEngine",
    "ParallelRunner",
    "PenaltyAccumulator",
    "SimulationResult",
    "SimulationRunner",
    "WorkloadRun",
    "build_branch_unit",
    "iter_wrong_path_lines",
    "simulate",
]
