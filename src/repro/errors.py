"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while letting programming errors (``TypeError``,
``KeyError`` from misuse of plain containers, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class ProgramError(ReproError):
    """A synthetic program / CFG is malformed (bad layout, dangling edge...)."""


class DecodeError(ProgramError):
    """An address does not decode to an instruction in the code image."""


class TraceError(ReproError):
    """A dynamic trace is malformed or inconsistent with its program."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class ExperimentError(ReproError):
    """An experiment was misconfigured or referenced an unknown artifact."""


class ObservabilityError(ReproError):
    """A metric, event sink, or profiler was used inconsistently."""
