"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while letting programming errors (``TypeError``,
``KeyError`` from misuse of plain containers, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class ProgramError(ReproError):
    """A synthetic program / CFG is malformed (bad layout, dangling edge...)."""


class DecodeError(ProgramError):
    """An address does not decode to an instruction in the code image."""


class TraceError(ReproError):
    """A dynamic trace is malformed or inconsistent with its program."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class ExperimentError(ReproError):
    """An experiment was misconfigured or referenced an unknown artifact."""


class ObservabilityError(ReproError):
    """A metric, event sink, or profiler was used inconsistently."""


class CheckpointError(ReproError):
    """A sweep checkpoint journal was misconfigured or misused."""


class ServiceError(ReproError):
    """A sweep-service request was malformed, rejected, or failed.

    Raised by :mod:`repro.service` on protocol violations (bad wire
    payloads), load-shedding rejections, and request-level failures
    relayed to a client.  Deterministic under the failure taxonomy —
    a malformed request reproduces identically on retry; the client
    retries *transport* failures (dead connections, 429/503), never
    ``ServiceError``.
    """


class JobTimeoutError(ReproError):
    """A sweep job exceeded its watchdog deadline.

    Classified as *transient* by the fault-tolerant sweep layer (unlike
    every other :class:`ReproError`): a hung worker is killed and the
    batch is requeued until its retry budget runs out.
    """


class InjectedFault(Exception):
    """A failure raised on purpose by :mod:`repro.core.faults`.

    Deliberately *not* a :class:`ReproError`: injected faults impersonate
    external failures (worker death, flaky I/O), which the retry
    classifier in :mod:`repro.core.parallel` treats differently from
    library errors.  ``transient`` mirrors that split: ``True`` means the
    sweep layer should retry, ``False`` models a deterministic simulation
    bug that must fail fast.
    """

    def __init__(self, message: str, transient: bool = True) -> None:
        super().__init__(message)
        self.transient = transient

    def __reduce__(self):
        # Exceptions pickle by (class, args) alone; without this a
        # non-transient fault crossing the process-pool boundary would
        # silently revert to the transient default and get retried.
        return (type(self), (self.args[0], self.transient))
