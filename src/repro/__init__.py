"""repro — reproduction of *Instruction Cache Fetch Policies for
Speculative Execution* (Lee, Baer, Calder, Grunwald; ISCA 1995).

A trace-driven simulator of a 4-wide speculative front end with a blocking
instruction cache, the paper's five I-cache fetch policies (Oracle,
Optimistic, Resume, Pessimistic, Decode), its branch architecture
(decoupled BTB + gshare PHT with resolution-delayed updates), next-line
prefetching, and a synthetic 13-benchmark suite standing in for the
paper's ATOM-traced programs.

Quick start::

    from repro import SimulationRunner, paper_baseline, FetchPolicy

    runner = SimulationRunner()
    result = runner.run("gcc", paper_baseline(FetchPolicy.RESUME))
    print(result.total_ispi, result.ispi_breakdown())

See DESIGN.md for the architecture and EXPERIMENTS.md for the paper-vs-
measured record of every reproduced table and figure.
"""

from repro.config import (
    ALL_POLICIES,
    BranchConfig,
    CacheConfig,
    FetchPolicy,
    SimConfig,
    paper_baseline,
)
from repro.core import (
    COMPONENTS,
    FetchEngine,
    ParallelRunner,
    SimulationResult,
    SimulationRunner,
    simulate,
)
from repro.errors import (
    ConfigError,
    DecodeError,
    ExperimentError,
    ObservabilityError,
    ProgramError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    NullSink,
    Observer,
    PhaseProfiler,
    RingBufferSink,
)
from repro.program import (
    FIGURE_BENCHMARKS,
    SUITE,
    Program,
    ProgramBuilder,
    WorkloadSpec,
    build_workload,
    synthesize,
)
from repro.trace import Trace, generate_trace

__version__ = "1.0.0"

__all__ = [
    "ALL_POLICIES",
    "BranchConfig",
    "CacheConfig",
    "COMPONENTS",
    "ConfigError",
    "DecodeError",
    "ExperimentError",
    "FIGURE_BENCHMARKS",
    "FetchEngine",
    "FetchPolicy",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "ObservabilityError",
    "Observer",
    "ParallelRunner",
    "PhaseProfiler",
    "Program",
    "RingBufferSink",
    "ProgramBuilder",
    "ProgramError",
    "ReproError",
    "SUITE",
    "SimConfig",
    "SimulationError",
    "SimulationResult",
    "SimulationRunner",
    "Trace",
    "TraceError",
    "WorkloadSpec",
    "__version__",
    "build_workload",
    "generate_trace",
    "paper_baseline",
    "simulate",
    "synthesize",
]
