"""JSON export of experiment results.

The text/CSV renderings are for humans and spreadsheets; the JSON export
carries the *machine-readable* ``data`` payload every experiment fills in,
plus the rendered tables, for downstream analysis pipelines.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serialisable structures."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        # NaN marks a missing (skipped) sweep cell; strict JSON has no
        # NaN/Infinity, so missing entries export as null.
        return None
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Enums, dataclasses, anything else: fall back to a string.
    return str(value)


def experiment_to_dict(result) -> dict[str, Any]:
    """Convert an :class:`ExperimentResult` to a plain dictionary."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "paper_ref": result.paper_ref,
        "notes": result.notes,
        "data": _jsonable(result.data),
        "tables": [
            {
                "title": table.title,
                "headers": list(table.headers),
                "rows": [
                    _jsonable(row)
                    for row in table.rows
                    if not all(cell == "---" for cell in row)
                ],
            }
            for table in result.tables
        ],
    }


def experiment_to_json(result, indent: int = 2) -> str:
    """Render an experiment result as a JSON string."""
    return json.dumps(experiment_to_dict(result), indent=indent)


def save_experiment_json(result, path: str | os.PathLike[str]) -> None:
    """Write an experiment result to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(experiment_to_json(result))
        handle.write("\n")


def metrics_to_dict(registry, profile=None) -> dict[str, Any]:
    """Convert a :class:`MetricsRegistry` (and optional profiler) to JSON.

    The ``metrics`` mapping is the registry's deterministic ``as_dict``
    form — counters as integers, histograms as typed sub-objects — so two
    identical runs produce byte-identical exports (the golden-snapshot
    tests rely on this).
    """
    payload: dict[str, Any] = {"metrics": _jsonable(registry.as_dict())}
    if profile is not None:
        payload["profile"] = _jsonable(profile.summary())
    return payload


def save_metrics_json(registry, path: str | os.PathLike[str], profile=None) -> None:
    """Write a metrics registry (and optional profile) to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(metrics_to_dict(registry, profile), indent=2))
        handle.write("\n")
