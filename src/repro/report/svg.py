"""SVG rendering of the paper's stacked-bar figures.

Pure-stdlib SVG writer: turns the same per-policy ISPI breakdowns that
feed the ASCII charts into standalone ``.svg`` files comparable to the
paper's Figures 1-4.  The benchmark harness saves one SVG next to each
figure's text output.
"""

from __future__ import annotations

import html
import math
import os
from collections.abc import Mapping, Sequence

from repro.core.results import COMPONENTS
from repro.errors import ExperimentError

#: Fill colours per ISPI component (paper stacking order).
COMPONENT_COLORS: dict[str, str] = {
    "branch_full": "#9467bd",
    "branch": "#4c78a8",
    "rt_icache": "#72b7b2",
    "wrong_icache": "#e45756",
    "bus": "#f58518",
    "force_resolve": "#bab0ac",
}

_BAR_HEIGHT = 16
_BAR_GAP = 6
_GROUP_GAP = 18
_LABEL_WIDTH = 150
_CHART_WIDTH = 460
_LEGEND_HEIGHT = 40
_TITLE_HEIGHT = 28
_VALUE_WIDTH = 60


def _esc(text: str) -> str:
    return html.escape(text, quote=True)


def render_stacked_bars_svg(
    title: str,
    groups: Sequence[tuple[str, Sequence[tuple[str, Mapping[str, float]]]]],
) -> str:
    """Render ``(group, [(bar_label, breakdown), ...])`` groups as SVG.

    The breakdown maps ISPI component names to per-instruction values;
    bars are scaled so the longest fills the chart width.
    """
    bars: list[tuple[str, Mapping[str, float] | None]] = []
    for gi, (group_label, group_bars) in enumerate(groups):
        if gi:
            bars.append(("", None))  # group gap
        for bar_label, breakdown in group_bars:
            unknown = set(breakdown) - set(COMPONENTS)
            if unknown:
                raise ExperimentError(f"unknown components {sorted(unknown)}")
            bars.append((f"{group_label} {bar_label}".strip(), breakdown))
    totals = [
        total
        for _, b in bars
        if b is not None and not math.isnan(total := sum(b.values()))
    ]
    if not totals:
        raise ExperimentError("no bars to render")
    longest = max(totals) or 1.0
    scale = _CHART_WIDTH / longest

    height = _TITLE_HEIGHT + _LEGEND_HEIGHT
    for _, breakdown in bars:
        height += _GROUP_GAP if breakdown is None else _BAR_HEIGHT + _BAR_GAP
    width = _LABEL_WIDTH + _CHART_WIDTH + _VALUE_WIDTH + 20

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<text x="10" y="18" font-size="14" font-weight="bold">'
        f"{_esc(title)}</text>",
    ]
    # Legend.
    x = 10
    y = _TITLE_HEIGHT + 12
    for component in COMPONENTS:
        color = COMPONENT_COLORS[component]
        parts.append(
            f'<rect x="{x}" y="{y - 9}" width="10" height="10" fill="{color}"/>'
        )
        parts.append(f'<text x="{x + 14}" y="{y}">{_esc(component)}</text>')
        x += 14 + 7 * len(component) + 18

    y = _TITLE_HEIGHT + _LEGEND_HEIGHT
    for label, breakdown in bars:
        if breakdown is None:
            y += _GROUP_GAP
            continue
        parts.append(
            f'<text x="{_LABEL_WIDTH - 6}" y="{y + _BAR_HEIGHT - 4}" '
            f'text-anchor="end">{_esc(label)}</text>'
        )
        # NaN marks a missing (skipped) sweep cell: annotate, no bar.
        if any(math.isnan(v) for v in breakdown.values()):
            parts.append(
                f'<text x="{_LABEL_WIDTH + 6}" y="{y + _BAR_HEIGHT - 4}" '
                f'fill="#888">(missing)</text>'
            )
            y += _BAR_HEIGHT + _BAR_GAP
            continue
        x = float(_LABEL_WIDTH)
        for component in COMPONENTS:
            value = breakdown.get(component, 0.0)
            if value <= 0:
                continue
            segment = value * scale
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{segment:.1f}" '
                f'height="{_BAR_HEIGHT}" fill="{COMPONENT_COLORS[component]}">'
                f"<title>{_esc(component)}: {value:.3f}</title></rect>"
            )
            x += segment
        total = sum(breakdown.values())
        parts.append(
            f'<text x="{x + 6:.1f}" y="{y + _BAR_HEIGHT - 4}">{total:.2f}</text>'
        )
        y += _BAR_HEIGHT + _BAR_GAP
    parts.append("</svg>")
    return "\n".join(parts)


def save_breakdown_svg(
    result,
    path: str | os.PathLike[str],
) -> None:
    """Write an experiment's per-benchmark breakdowns as an SVG figure.

    Works for any experiment whose ``data['per_benchmark']`` maps
    benchmark -> {bar label -> {component -> ispi}} (figures 1-4).
    """
    per_benchmark = result.data.get("per_benchmark")
    if not isinstance(per_benchmark, dict):
        raise ExperimentError(
            f"{result.experiment_id} carries no per-benchmark breakdowns"
        )
    groups = []
    for name, by_label in per_benchmark.items():
        bars = []
        for label, breakdown in by_label.items():
            if not isinstance(breakdown, dict):
                raise ExperimentError(
                    f"{result.experiment_id}: {name}/{label} is not a "
                    "component breakdown"
                )
            bars.append((label, breakdown))
        groups.append((name, bars))
    svg = render_stacked_bars_svg(result.title, groups)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
