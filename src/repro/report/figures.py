"""ASCII reproductions of the paper's stacked-bar figures.

The paper's Figures 1-4 are stacked bar charts of the ISPI penalty
components per (benchmark, policy).  We render them as horizontal stacked
bars built from one character per component, so a terminal shows the same
qualitative picture: bar height (length) = total ISPI, segments = the
component breakdown, in the paper's stacking order.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.results import COMPONENTS
from repro.errors import ExperimentError

#: One glyph per penalty component, in stacking order.
COMPONENT_GLYPHS: dict[str, str] = {
    "branch_full": "F",
    "branch": "B",
    "rt_icache": "r",
    "wrong_icache": "w",
    "bus": "u",
    "force_resolve": "v",
}

LEGEND = (
    "legend: F=branch_full B=branch r=rt_icache "
    "w=wrong_icache u=bus v=force_resolve"
)


@dataclass(slots=True)
class StackedBarChart:
    """A labelled collection of stacked horizontal ISPI bars."""

    title: str
    scale: float = 40.0  # characters per 1.0 ISPI
    bars: list[tuple[str, Mapping[str, float]]] = field(default_factory=list)

    def add_bar(self, label: str, breakdown: Mapping[str, float]) -> None:
        """Add one bar; *breakdown* maps component name -> ISPI."""
        unknown = set(breakdown) - set(COMPONENTS)
        if unknown:
            raise ExperimentError(f"unknown ISPI components {sorted(unknown)}")
        self.bars.append((label, dict(breakdown)))

    def add_gap(self) -> None:
        """Insert a blank separator line between bar groups."""
        self.bars.append(("", {}))

    def _auto_scale(self) -> float:
        totals = [
            total
            for _, b in self.bars
            if b and not math.isnan(total := sum(b.values()))
        ]
        longest = max(totals, default=0.0)
        if longest <= 0:
            return self.scale
        # Keep the longest bar at ~60 characters.
        return min(self.scale, 60.0 / longest)

    def render(self) -> str:
        """Render the chart to a string."""
        scale = self._auto_scale()
        width = max((len(label) for label, _ in self.bars), default=0)
        lines = [self.title, LEGEND, ""]
        for label, breakdown in self.bars:
            if not breakdown:
                lines.append("")
                continue
            # A NaN breakdown marks a missing (skipped) sweep cell:
            # draw an empty bar rather than crash on round(nan).
            if any(math.isnan(v) for v in breakdown.values()):
                lines.append(f"{label.rjust(width)} | (missing)")
                continue
            segments = []
            for component in COMPONENTS:
                value = breakdown.get(component, 0.0)
                n = round(value * scale)
                segments.append(COMPONENT_GLYPHS[component] * n)
            total = sum(breakdown.values())
            lines.append(f"{label.rjust(width)} |{''.join(segments)} {total:.2f}")
        return "\n".join(lines)


def breakdown_chart(
    title: str,
    groups: Sequence[tuple[str, Sequence[tuple[str, Mapping[str, float]]]]],
) -> StackedBarChart:
    """Build a chart from ``(group_label, [(bar_label, breakdown), ...])``.

    Group labels are prefixed onto bar labels, with a blank line between
    groups — matching the per-benchmark clusters of the paper's figures.
    """
    chart = StackedBarChart(title)
    for gi, (group_label, bars) in enumerate(groups):
        if gi:
            chart.add_gap()
        for bar_label, breakdown in bars:
            chart.add_bar(f"{group_label} {bar_label}", breakdown)
    return chart
