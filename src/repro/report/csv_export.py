"""CSV export of experiment results.

Every :class:`~repro.report.format.Table` can be exported as CSV so the
reproduced numbers can be re-plotted with external tooling (the paper's
figures were plots of exactly these tables).
"""

from __future__ import annotations

import csv
import io
import math
import os

from repro.report.format import Table


def _csv_cell(cell):
    """Missing cells (None or NaN, from skipped sweep cells) export empty."""
    if cell is None:
        return ""
    if isinstance(cell, float) and math.isnan(cell):
        return ""
    return cell


def table_to_csv(table: Table) -> str:
    """Render *table* as CSV text (separators dropped, title omitted)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.headers)
    for row in table.rows:
        if all(cell == "---" for cell in row):
            continue
        writer.writerow([_csv_cell(cell) for cell in row])
    return buffer.getvalue()


def save_table_csv(table: Table, path: str | os.PathLike[str]) -> None:
    """Write *table* to *path* as CSV."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(table_to_csv(table))


def save_experiment_csv(result, directory: str | os.PathLike[str]) -> list[str]:
    """Write every table of an experiment result to *directory*.

    Files are named ``<experiment_id>.csv`` (first table) and
    ``<experiment_id>_<n>.csv`` for subsequent tables; returns the paths.
    """
    os.makedirs(directory, exist_ok=True)
    paths: list[str] = []
    for index, table in enumerate(result.tables):
        suffix = "" if index == 0 else f"_{index}"
        path = os.path.join(directory, f"{result.experiment_id}{suffix}.csv")
        save_table_csv(table, path)
        paths.append(path)
    return paths
