"""Fixed-width ASCII tables.

All experiment output is rendered through :class:`Table` so the benchmark
harness, the CLI, and the examples print the paper's tables in one
consistent style.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import ExperimentError

Cell = object  # str | int | float | None


@dataclass(slots=True)
class Table:
    """A simple column-aligned table with optional float formatting."""

    headers: Sequence[str]
    rows: list[list[Cell]] = field(default_factory=list)
    float_format: str = "{:.2f}"
    title: str = ""

    def add_row(self, *cells: Cell) -> None:
        """Append one row; must match the header width."""
        if len(cells) != len(self.headers):
            raise ExperimentError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def add_separator(self) -> None:
        """Append a horizontal rule (rendered as dashes)."""
        self.rows.append(["---"] * len(self.headers))

    def _format_cell(self, cell: Cell) -> str:
        if cell is None:
            return ""
        if isinstance(cell, float):
            # NaN marks a missing cell (a sweep cell skipped under
            # on_error="skip"): render as empty, like None.
            if math.isnan(cell):
                return ""
            return self.float_format.format(cell)
        return str(cell)

    def render(self) -> str:
        """Render the table to a string."""
        formatted = [[self._format_cell(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in formatted:
            for i, cell in enumerate(row):
                if cell != "---":
                    widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.rjust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted:
            if all(cell == "---" for cell in row):
                lines.append("  ".join("-" * w for w in widths))
                continue
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def column(self, name: str) -> list[Cell]:
        """All values of the named column (excluding separators)."""
        try:
            idx = list(self.headers).index(name)
        except ValueError:
            raise ExperimentError(f"no column named {name!r}") from None
        return [row[idx] for row in self.rows if row[idx] != "---"]

    def row_by_key(self, key: str) -> list[Cell]:
        """The first row whose first cell equals *key*."""
        for row in self.rows:
            if row and row[0] == key:
                return row
        raise ExperimentError(f"no row keyed {key!r}")


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean over the *present* values.

    NaN items — the missing-cell marker that ``on_error="skip"`` sweeps
    leave behind — are excluded, so one skipped benchmark no longer
    poisons a whole Average row.  An all-NaN sequence yields NaN (the
    cell renders empty); a truly empty sequence is a programming error
    and raises.
    """
    items = list(values)
    if not items:
        raise ExperimentError("mean of empty sequence")
    present = [v for v in items if not math.isnan(v)]
    if not present:
        return float("nan")
    return sum(present) / len(present)


def _iter_floats(value: object) -> Iterable[float]:
    if isinstance(value, dict):
        for item in value.values():
            yield from _iter_floats(item)
    elif isinstance(value, (int, float)):
        yield float(value)


def average_label(per_benchmark: dict, label: str = "Average") -> str:
    """Aggregate-row label, annotated with the skipped-benchmark count.

    *per_benchmark* is the ``{benchmark: {key: value, ...}}`` mapping the
    experiments accumulate (nested dicts are searched recursively).  A
    benchmark counts as skipped when any of its cells is NaN, so an
    ``Average (2 skipped)`` row says exactly how many benchmarks the
    means exclude.
    """
    skipped = sum(
        1
        for cells in per_benchmark.values()
        if any(math.isnan(v) for v in _iter_floats(cells))
    )
    if skipped:
        return f"{label} ({skipped} skipped)"
    return label
