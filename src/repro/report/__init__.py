"""Rendering of experiment output: ASCII tables, stacked-bar figures,
CSV export, and SVG figure files."""

from repro.report.csv_export import (
    save_experiment_csv,
    save_table_csv,
    table_to_csv,
)
from repro.report.figures import (
    COMPONENT_GLYPHS,
    LEGEND,
    StackedBarChart,
    breakdown_chart,
)
from repro.report.format import Table, average_label, mean
from repro.report.json_export import (
    experiment_to_dict,
    experiment_to_json,
    metrics_to_dict,
    save_experiment_json,
    save_metrics_json,
)
from repro.report.svg import render_stacked_bars_svg, save_breakdown_svg

__all__ = [
    "experiment_to_dict",
    "experiment_to_json",
    "metrics_to_dict",
    "save_experiment_json",
    "save_metrics_json",
    "COMPONENT_GLYPHS",
    "LEGEND",
    "StackedBarChart",
    "Table",
    "average_label",
    "breakdown_chart",
    "mean",
    "render_stacked_bars_svg",
    "save_breakdown_svg",
    "save_experiment_csv",
    "save_table_csv",
    "table_to_csv",
]
