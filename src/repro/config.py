"""Simulation configuration.

All knobs the paper varies (plus the ablation knobs we add) live here, as
frozen dataclasses with validation.  The defaults reproduce the paper's
*baseline* architecture (§4.1 / §5.1):

* 4 instructions issued per cycle;
* decoupled 64-entry 4-way BTB + 512-entry gshare PHT;
* 2-cycle decode, 4-cycle conditional-branch resolution
  (=> 8-slot misfetch penalty, 16-slot mispredict penalty);
* 8K direct-mapped I-cache, 32-byte lines, 5-cycle miss penalty;
* up to 4 unresolved conditional branches;
* no next-line prefetching.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError


class FetchPolicy(enum.Enum):
    """The five I-cache fetch policies of the paper's Table 1."""

    #: Service a miss only when on the correct path (unrealizable yardstick).
    ORACLE = "oracle"
    #: Service every miss; the blocking fetch unit waits for each fill.
    OPTIMISTIC = "optimistic"
    #: Like Optimistic, but redirect immediately on mispredict/misfetch
    #: detection; the in-flight wrong-path fill lands in a resume buffer.
    RESUME = "resume"
    #: Wait until all outstanding branches resolve (and previous
    #: instructions decode); fetch only if still on the correct path.
    PESSIMISTIC = "pessimistic"
    #: Wait only until previous instructions decode (guards against
    #: misfetches but not mispredicts).
    DECODE = "decode"

    @property
    def label(self) -> str:
        """Short display label used in tables (paper style)."""
        return {
            FetchPolicy.ORACLE: "Oracle",
            FetchPolicy.OPTIMISTIC: "Opt",
            FetchPolicy.RESUME: "Res",
            FetchPolicy.PESSIMISTIC: "Pess",
            FetchPolicy.DECODE: "Dec",
        }[self]


#: Policy order used throughout the paper's tables.
ALL_POLICIES = (
    FetchPolicy.ORACLE,
    FetchPolicy.OPTIMISTIC,
    FetchPolicy.RESUME,
    FetchPolicy.PESSIMISTIC,
    FetchPolicy.DECODE,
)

#: The policies a real machine could implement — everything except the
#: Oracle yardstick (which needs future knowledge of branch outcomes).
#: The default candidate set for the adaptive schedules.
REALIZABLE_POLICIES = (
    FetchPolicy.OPTIMISTIC,
    FetchPolicy.RESUME,
    FetchPolicy.PESSIMISTIC,
    FetchPolicy.DECODE,
)

#: Recognised ``SimConfig.policy_schedule`` values.
POLICY_SCHEDULES = ("static", "script", "tournament", "oracle")


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """I-cache geometry (paper baseline: 8K direct-mapped, 32-byte lines)."""

    size_bytes: int = 8192
    line_size: int = 32
    assoc: int = 1

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ConfigError(f"line_size must be a power of two: {self.line_size}")
        if self.size_bytes <= 0 or self.size_bytes % self.line_size:
            raise ConfigError(
                f"size_bytes {self.size_bytes} must be a positive multiple "
                f"of line_size {self.line_size}"
            )
        if self.assoc < 1:
            raise ConfigError(f"assoc must be >= 1: {self.assoc}")
        n_lines = self.size_bytes // self.line_size
        if n_lines % self.assoc:
            raise ConfigError(
                f"{n_lines} lines not divisible into {self.assoc}-way sets"
            )
        n_sets = n_lines // self.assoc
        if n_sets & (n_sets - 1):
            raise ConfigError(f"set count {n_sets} must be a power of two")


@dataclass(frozen=True, slots=True)
class BranchConfig:
    """Branch architecture (paper baseline: decoupled BTB + gshare PHT)."""

    btb_entries: int = 64
    btb_assoc: int = 4
    pht_kind: str = "gshare"
    pht_entries: int = 512
    history_bits: int | None = None  # default: log2(pht_entries)
    coupled: bool = False
    speculative_btb_update: bool = True
    use_ras: bool = False
    ras_depth: int = 8

    def __post_init__(self) -> None:
        if self.pht_entries <= 0 or self.pht_entries & (self.pht_entries - 1):
            raise ConfigError(
                f"pht_entries must be a power of two: {self.pht_entries}"
            )
        if self.pht_kind not in ("gshare", "bimodal", "gag"):
            raise ConfigError(f"unknown pht_kind {self.pht_kind!r}")
        if self.history_bits is not None and self.history_bits < 1:
            raise ConfigError("history_bits must be >= 1 when given")

    @property
    def effective_history_bits(self) -> int:
        """History width: explicit, or the natural gshare sizing."""
        if self.history_bits is not None:
            return self.history_bits
        return max(1, self.pht_entries.bit_length() - 1)


@dataclass(frozen=True, slots=True)
class SimConfig:
    """Complete front-end simulation configuration."""

    policy: FetchPolicy = FetchPolicy.RESUME
    cache: CacheConfig = field(default_factory=CacheConfig)
    branch: BranchConfig = field(default_factory=BranchConfig)
    #: Instructions issued per cycle (the paper's machine is 4-wide).
    issue_width: int = 4
    #: I-cache miss penalty in cycles (paper: 5 "low", 20 "high").
    miss_penalty_cycles: int = 5
    #: Cycles from fetch to decode of an instruction.
    decode_cycles: int = 2
    #: Cycles from fetch to resolution of a conditional branch.
    resolve_cycles: int = 4
    #: Maximum unresolved conditional branches (paper: 1, 2, or 4).
    max_unresolved: int = 4
    #: Enable next-line prefetching ("maximal fetchahead, first-time-ref").
    prefetch: bool = False
    #: Next-line trigger variant: "tagged" (the paper's first-time-
    #: referenced policy), "always" / "on-miss" (Smith 82's options), or
    #: "fetchahead" (Smith & Hsu 92: trigger near the end of each line).
    prefetch_variant: str = "tagged"
    #: Instructions before a line's end at which the "fetchahead" variant
    #: triggers (Smith & Hsu's critical parameter).
    fetchahead_distance: int = 4
    #: Also prefetch the not-followed arm of conditional branches
    #: (Smith & Hsu / Pierce & Mudge-style target prefetching; extension).
    target_prefetch: bool = False
    #: Background fill buffers (1 = the paper's single resume buffer;
    #: more models the §6 future-work non-blocking I-cache).
    fill_buffers: int = 1
    #: Pipelined miss requests: a new line request may start every this
    #: many cycles while each still takes the full miss penalty
    #: (None = the paper's serial channel; §6 future work).
    bus_interleave_cycles: int | None = None
    #: Jouppi-style stream buffers between the I-cache and memory
    #: (0 = none, the paper's configuration; §2.2 extension).
    stream_buffers: int = 0
    #: FIFO depth of each stream buffer (Jouppi evaluates 4 entries).
    stream_buffer_depth: int = 4
    #: Unified second-level cache size (None = the paper's flat memory;
    #: extension).  With an L2, an L1 miss costs ``l2_hit_cycles`` when it
    #: hits the L2 and ``miss_penalty_cycles`` when it goes to memory.
    l2_size_bytes: int | None = None
    l2_assoc: int = 4
    l2_hit_cycles: int = 5
    #: Model a perfect I-cache (all hits): isolates branch penalties
    #: (used for the paper's Table 3 branch characterisation).
    perfect_cache: bool = False
    #: When the branch predictor trains: ``"timing"`` (the historical
    #: default — PHT/history updates land on the fetch-engine clock, so
    #: cache stalls can reorder resolutions against predictions) or
    #: ``"architectural"`` (updates land on a cache-independent clock
    #: equal to the perfect-cache fetch clock, making the per-branch
    #: outcome stream identical across every policy and cache geometry —
    #: the property prediction-stream replay relies on; see
    #: docs/performance.md).  With a perfect cache the two schedules
    #: coincide.
    branch_schedule: str = "timing"
    #: Run the shadow-Oracle miss classifier (paper's Table 4; only
    #: meaningful with the OPTIMISTIC policy).
    classify: bool = False
    #: Engine backend: ``"event"`` (the exact per-instruction event loop),
    #: ``"vector"`` (the NumPy batch backend over replayed branch
    #: streams; falls back to the event loop on ineligible cells), or
    #: ``"auto"`` (vector when a prediction stream is supplied and the
    #: cell is vector-eligible; see docs/performance.md).
    engine_backend: str = "auto"
    #: How the fetch policy evolves over the run (docs/adaptive-policy.md):
    #: ``"static"`` (``policy`` for the whole run — the paper's regime),
    #: ``"script"`` (``policy_script[k]`` for interval ``k``),
    #: ``"tournament"`` (shadow-estimator meta-controller switching at
    #: interval boundaries with hysteresis), or ``"oracle"`` (re-simulate
    #: every interval under each candidate from the same warm state and
    #: keep the best — the adaptive upper bound).
    policy_schedule: str = "static"
    #: Interval length in correct-path instructions for the per-interval
    #: schedules.  Required for every non-static schedule; with a static
    #: schedule it merely turns on per-interval measurement
    #: (``SimulationResult.intervals``) without changing any timing.
    adaptive_interval: int | None = None
    #: Per-interval policy sequence for ``policy_schedule="script"``
    #: (interval ``k`` runs ``policy_script[min(k, len - 1)]``).
    policy_script: tuple[FetchPolicy, ...] = ()
    #: Candidate policies the tournament/oracle schedules choose among.
    adaptive_policies: tuple[FetchPolicy, ...] = REALIZABLE_POLICIES
    #: Tournament controller: EWMA history weight expressed as the number
    #: of intervals over which past estimates decay to ~1/e.
    tournament_history: int = 4
    #: Consecutive interval boundaries a challenger must win before the
    #: tournament controller actually switches (hysteresis).
    tournament_hysteresis: int = 2
    #: Minimum relative ISPI advantage (fraction) a challenger needs for
    #: one of those wins to count.
    tournament_margin: float = 0.02

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ConfigError(f"issue_width must be >= 1: {self.issue_width}")
        if self.miss_penalty_cycles < 0:
            raise ConfigError(
                f"miss_penalty_cycles must be >= 0: {self.miss_penalty_cycles}"
            )
        if self.decode_cycles < 1:
            raise ConfigError(f"decode_cycles must be >= 1: {self.decode_cycles}")
        if self.resolve_cycles < self.decode_cycles:
            raise ConfigError(
                "resolve_cycles must be >= decode_cycles "
                f"({self.resolve_cycles} < {self.decode_cycles})"
            )
        if self.max_unresolved < 1:
            raise ConfigError(f"max_unresolved must be >= 1: {self.max_unresolved}")
        if self.prefetch_variant not in (
            "tagged", "always", "on-miss", "fetchahead"
        ):
            raise ConfigError(
                f"unknown prefetch_variant {self.prefetch_variant!r}"
            )
        if self.fetchahead_distance < 1:
            raise ConfigError(
                f"fetchahead_distance must be >= 1: {self.fetchahead_distance}"
            )
        if self.fill_buffers < 1:
            raise ConfigError(f"fill_buffers must be >= 1: {self.fill_buffers}")
        if self.bus_interleave_cycles is not None and self.bus_interleave_cycles < 1:
            raise ConfigError(
                f"bus_interleave_cycles must be >= 1: {self.bus_interleave_cycles}"
            )
        if self.stream_buffers < 0:
            raise ConfigError(f"stream_buffers must be >= 0: {self.stream_buffers}")
        if self.stream_buffer_depth < 1:
            raise ConfigError(
                f"stream_buffer_depth must be >= 1: {self.stream_buffer_depth}"
            )
        if self.l2_size_bytes is not None:
            if self.l2_size_bytes <= self.cache.size_bytes:
                raise ConfigError(
                    f"L2 ({self.l2_size_bytes}B) must be larger than the "
                    f"I-cache ({self.cache.size_bytes}B)"
                )
            if self.l2_hit_cycles < 1:
                raise ConfigError(
                    f"l2_hit_cycles must be >= 1: {self.l2_hit_cycles}"
                )
            if self.miss_penalty_cycles < self.l2_hit_cycles:
                raise ConfigError(
                    f"miss_penalty_cycles ({self.miss_penalty_cycles}) must "
                    f"be >= l2_hit_cycles ({self.l2_hit_cycles})"
                )
            if self.l2_assoc < 1:
                raise ConfigError(f"l2_assoc must be >= 1: {self.l2_assoc}")
        if self.branch_schedule not in ("timing", "architectural"):
            raise ConfigError(
                f"unknown branch_schedule {self.branch_schedule!r} "
                "(expected 'timing' or 'architectural')"
            )
        if self.classify and self.policy is not FetchPolicy.OPTIMISTIC:
            raise ConfigError(
                "miss classification requires the OPTIMISTIC policy "
                "(it compares Optimistic against a shadow Oracle)"
            )
        if self.engine_backend not in ("auto", "event", "vector"):
            raise ConfigError(
                f"unknown engine_backend {self.engine_backend!r} "
                "(expected 'auto', 'event', or 'vector')"
            )
        if self.policy_schedule not in POLICY_SCHEDULES:
            raise ConfigError(
                f"unknown policy_schedule {self.policy_schedule!r} "
                f"(expected one of {', '.join(POLICY_SCHEDULES)})"
            )
        if self.adaptive_interval is not None and self.adaptive_interval <= 0:
            raise ConfigError(
                f"adaptive_interval must be a positive instruction count, "
                f"got {self.adaptive_interval}"
            )
        if self.policy_schedule != "static":
            if self.adaptive_interval is None:
                raise ConfigError(
                    f"policy_schedule={self.policy_schedule!r} needs an "
                    "interval length: set adaptive_interval to the number "
                    "of instructions per interval"
                )
            if self.classify:
                raise ConfigError(
                    "miss classification assumes one policy for the whole "
                    "run (it shadows Optimistic against Oracle); drop "
                    "classify=True or use policy_schedule='static'"
                )
            if self.engine_backend == "vector":
                raise ConfigError(
                    "the vector backend cannot switch policy at interval "
                    f"boundaries; policy_schedule={self.policy_schedule!r} "
                    "needs engine_backend='event' (or 'auto', which will "
                    "select the event loop)"
                )
        if self.policy_schedule == "script":
            if not self.policy_script:
                raise ConfigError(
                    "policy_schedule='script' needs a non-empty "
                    "policy_script (one FetchPolicy per interval)"
                )
        elif self.policy_script:
            raise ConfigError(
                "policy_script is only read by policy_schedule='script'; "
                f"it would be silently ignored under "
                f"{self.policy_schedule!r}"
            )
        if self.policy_schedule in ("tournament", "oracle"):
            if len(self.adaptive_policies) < 2:
                raise ConfigError(
                    f"policy_schedule={self.policy_schedule!r} needs at "
                    "least two adaptive_policies to choose between, got "
                    f"{len(self.adaptive_policies)}"
                )
            if len(set(self.adaptive_policies)) != len(self.adaptive_policies):
                raise ConfigError(
                    f"adaptive_policies contains duplicates: "
                    f"{[p.value for p in self.adaptive_policies]}"
                )
        if self.engine_backend == "vector" and self.adaptive_interval is not None:
            raise ConfigError(
                "the vector backend does not record per-interval stats; "
                "drop adaptive_interval or use engine_backend='event'/'auto'"
            )
        if self.tournament_history < 1:
            raise ConfigError(
                f"tournament_history must be >= 1: {self.tournament_history}"
            )
        if self.tournament_hysteresis < 1:
            raise ConfigError(
                f"tournament_hysteresis must be >= 1: "
                f"{self.tournament_hysteresis}"
            )
        if self.tournament_margin < 0.0:
            raise ConfigError(
                f"tournament_margin must be >= 0: {self.tournament_margin}"
            )

    # -- derived slot quantities (1 cycle = issue_width slots) -------------

    @property
    def miss_penalty_slots(self) -> int:
        """Miss penalty in issue slots."""
        return self.miss_penalty_cycles * self.issue_width

    @property
    def decode_latency_slots(self) -> int:
        """Fetch-to-decode latency in issue slots."""
        return self.decode_cycles * self.issue_width

    @property
    def resolve_latency_slots(self) -> int:
        """Fetch-to-resolution latency in issue slots."""
        return self.resolve_cycles * self.issue_width

    @property
    def misfetch_penalty_slots(self) -> int:
        """Issue slots lost to a misfetch (redirect at decode)."""
        return self.decode_cycles * self.issue_width

    @property
    def mispredict_penalty_slots(self) -> int:
        """Issue slots lost to a mispredict (redirect at resolution)."""
        return self.resolve_cycles * self.issue_width

    def with_policy(self, policy: FetchPolicy) -> SimConfig:
        """A copy of this config running a different fetch policy."""
        return replace(self, policy=policy)

    def describe(self) -> str:
        """One-line human summary, used in reports."""
        cache = (
            "perfect"
            if self.perfect_cache
            else f"{self.cache.size_bytes // 1024}K/"
            f"{self.cache.assoc}-way/{self.cache.line_size}B"
        )
        schedule = (
            ""
            if self.policy_schedule == "static"
            else f" policy-sched={self.policy_schedule}@{self.adaptive_interval}"
        )
        return (
            f"{self.policy.label} cache={cache} "
            f"penalty={self.miss_penalty_cycles}cyc depth={self.max_unresolved}"
            f"{' +prefetch' if self.prefetch else ''}"
            f"{' sched=arch' if self.branch_schedule == 'architectural' else ''}"
            f"{schedule}"
        )


def paper_baseline(policy: FetchPolicy = FetchPolicy.RESUME) -> SimConfig:
    """The paper's §5.1 baseline configuration with the given policy."""
    return SimConfig(policy=policy)
