"""Global branch history register.

The paper's PHT "waits until a branch is resolved before updating the
global history register", which is why its prediction accuracy *degrades*
with deeper speculation (Table 3): at prediction time the register is
missing the outcomes of the still-unresolved branches.  The engine models
this by calling :meth:`GlobalHistory.shift_in` only at branch resolution.
"""

from __future__ import annotations

from repro.errors import ConfigError


class GlobalHistory:
    """A k-bit shift register of branch outcomes (1 = taken)."""

    __slots__ = ("bits", "mask", "value")

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise ConfigError(f"history needs >= 1 bit, got {bits}")
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.value = 0

    def shift_in(self, taken: bool) -> None:
        """Record one resolved outcome (most recent in bit 0)."""
        self.value = ((self.value << 1) | int(taken)) & self.mask

    def snapshot(self) -> int:
        """Current register contents (use at prediction time)."""
        return self.value

    def reset(self) -> None:
        """Clear the register."""
        self.value = 0

    def __repr__(self) -> str:
        return f"GlobalHistory(bits={self.bits}, value={self.value:#x})"
