"""Pattern history tables (direction predictors).

Three indexing schemes from the paper's related-work lineage:

* :class:`BimodalPHT` — indexed by the branch address alone
  ([Smith 81]-style per-branch counters).
* :class:`GAgPHT` — indexed by the global history register alone
  (the "degenerate method" the paper describes).
* :class:`GsharePHT` — McFarling's scheme: XOR of global history and
  branch address.  **This is the paper's configuration** (512 entries,
  2-bit counters).

All PHTs separate *prediction* (index computed from a history snapshot at
fetch time) from *update* (applied at branch resolution, to the same index
that was used for the prediction).  The index is therefore returned to the
caller, which carries it through the unresolved-branch queue.
"""

from __future__ import annotations

import abc

from repro.branch.counters import CounterTable
from repro.errors import ConfigError
from repro.isa import INSTRUCTION_SIZE


class PatternHistoryTable(abc.ABC):
    """Common interface of all direction predictors."""

    def __init__(self, entries: int, counter_bits: int = 2) -> None:
        self.table = CounterTable(entries, bits=counter_bits)
        self.index_mask = entries - 1

    @abc.abstractmethod
    def index(self, pc: int, history: int) -> int:
        """Table index for branch at *pc* given a history snapshot."""

    def predict(self, pc: int, history: int) -> tuple[bool, int]:
        """Return ``(taken?, index)``; the index is needed for the update."""
        idx = self.index(pc, history)
        return self.table.predict(idx), idx

    def update(self, index: int, taken: bool) -> None:
        """Resolve-time counter update at the prediction-time index."""
        self.table.update(index, taken)

    def reset(self) -> None:
        """Clear all counters to weakly-not-taken."""
        self.table.reset()

    @property
    def entries(self) -> int:
        """Number of counters in the table."""
        return self.table.entries


def _pc_bits(pc: int) -> int:
    """Branch address with the constant low (alignment) bits stripped."""
    return pc // INSTRUCTION_SIZE


class BimodalPHT(PatternHistoryTable):
    """Per-branch 2-bit counters, indexed by low PC bits."""

    def index(self, pc: int, history: int) -> int:
        return _pc_bits(pc) & self.index_mask


class GAgPHT(PatternHistoryTable):
    """Counters indexed purely by global history (two-level, degenerate)."""

    def index(self, pc: int, history: int) -> int:
        return history & self.index_mask


class GsharePHT(PatternHistoryTable):
    """McFarling gshare: history XOR branch address (the paper's PHT)."""

    def index(self, pc: int, history: int) -> int:
        return (_pc_bits(pc) ^ history) & self.index_mask

    def predict(self, pc: int, history: int) -> tuple[bool, int]:
        # Hot path: one dynamic branch per prediction.  Inlines index()
        # and CounterTable.predict() (identical arithmetic) to skip two
        # method calls per fetched conditional.
        idx = ((pc // INSTRUCTION_SIZE) ^ history) & self.index_mask
        table = self.table
        return table.values[idx] >= table.threshold, idx


_PHT_KINDS = {
    "bimodal": BimodalPHT,
    "gag": GAgPHT,
    "gshare": GsharePHT,
}


def make_pht(kind: str, entries: int, counter_bits: int = 2) -> PatternHistoryTable:
    """Factory by name: ``bimodal``, ``gag``, or ``gshare``."""
    try:
        cls = _PHT_KINDS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown PHT kind {kind!r}; expected one of {sorted(_PHT_KINDS)}"
        ) from None
    return cls(entries, counter_bits=counter_bits)
