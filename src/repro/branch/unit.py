"""The branch unit: fetch-time prediction and outcome classification.

This module encodes the paper's front-end branch semantics (§4.1):

* a **decoupled** design — a 64-entry 4-way BTB supplies targets of
  recently taken branches, a 512-entry gshare PHT supplies directions for
  *all* conditional branches (BTB-resident or not);
* **misfetch** — the branch's target had to be computed at decode (BTB miss
  on a transfer that needs to redirect): 2-cycle (8-slot) penalty;
* **mispredict** — the direction (PHT) or the dynamic target (stale BTB
  entry for a return/indirect call) was wrong, discovered at resolution:
  4-cycle (16-slot) penalty;
* the PHT counters and the global history update **only at resolution**,
  so predictions made under deep speculation see stale history — the
  effect Table 3 of the paper quantifies;
* the BTB updates **speculatively at decode** (predicted-taken branches
  are inserted), with a non-speculative variant available for ablations.

The unit is purely about branches; all I-cache/bus timing lives in
:mod:`repro.core.engine`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.branch.btb import BranchTargetBuffer
from repro.branch.history import GlobalHistory
from repro.branch.pht import PatternHistoryTable
from repro.branch.ras import ReturnAddressStack
from repro.branch.static import StaticPredictor
from repro.errors import ConfigError, SimulationError
from repro.isa import InstrKind

#: Issue slots lost to a misfetch (2 cycles x 4-wide issue).
MISFETCH_PENALTY_SLOTS = 8
#: Issue slots lost to a mispredict (4 cycles x 4-wide issue).
MISPREDICT_PENALTY_SLOTS = 16
#: Slots from a branch's fetch to its decode (2 cycles).
DECODE_LATENCY_SLOTS = 8
#: Slots from a conditional branch's fetch to its resolution (4 cycles).
RESOLVE_LATENCY_SLOTS = 16


class FetchOutcome(enum.Enum):
    """How the fetch of one control transfer went."""

    CORRECT = "correct"
    MISFETCH = "misfetch"
    MISPREDICT = "mispredict"


class PenaltyCause(enum.Enum):
    """Which structure is to blame (Table 3's decomposition)."""

    NONE = "none"
    BTB_MISFETCH = "btb_misfetch"
    PHT_MISPREDICT = "pht_mispredict"
    BTB_MISPREDICT = "btb_mispredict"


@dataclass(frozen=True, slots=True)
class PredictionResult:
    """Everything the engine needs to account for one control transfer.

    Attributes:
        outcome: CORRECT / MISFETCH / MISPREDICT.
        cause: blame category for the penalty.
        penalty_slots: total issue slots lost (0 / 8 / 16).
        wrong_path_start: first address of wrong-path fetch, or ``None``
            when nothing wrong is fetched.
        wrong_path_delay: slots after the branch before wrong-path fetch
            begins (nonzero only for the misfetch-then-mispredict
            composite, whose first two cycles fetch squashed correct-path
            instructions).
        wrong_path_slots: length of the wrong-path fetch window in slots.
        pht_index: prediction-time PHT index to update at resolution
            (conditional branches only).
        predicted_taken: the direction prediction (conditionals only).
    """

    outcome: FetchOutcome
    cause: PenaltyCause
    penalty_slots: int
    wrong_path_start: int | None
    wrong_path_delay: int
    wrong_path_slots: int
    pht_index: int | None
    predicted_taken: bool | None


@dataclass(slots=True)
class BranchStats:
    """Dynamic event counts for Table 3-style reporting."""

    conditional: int = 0
    unconditional: int = 0
    correct: int = 0
    pht_mispredicts: int = 0
    btb_misfetches: int = 0
    btb_mispredicts: int = 0
    penalty_slots_by_cause: dict[str, int] = field(
        default_factory=lambda: {
            PenaltyCause.BTB_MISFETCH.value: 0,
            PenaltyCause.PHT_MISPREDICT.value: 0,
            PenaltyCause.BTB_MISPREDICT.value: 0,
        }
    )


class BranchUnit:
    """Decoupled (or, for ablation, coupled) BTB + PHT front end."""

    def __init__(
        self,
        btb: BranchTargetBuffer,
        pht: PatternHistoryTable,
        history: GlobalHistory,
        coupled: bool = False,
        speculative_btb_update: bool = True,
        ras: ReturnAddressStack | None = None,
        static_fallback: StaticPredictor | None = None,
        misfetch_penalty_slots: int = MISFETCH_PENALTY_SLOTS,
        mispredict_penalty_slots: int = MISPREDICT_PENALTY_SLOTS,
    ) -> None:
        if misfetch_penalty_slots < 0 or mispredict_penalty_slots < misfetch_penalty_slots:
            raise ConfigError(
                "penalties must satisfy 0 <= misfetch <= mispredict, got "
                f"{misfetch_penalty_slots} / {mispredict_penalty_slots}"
            )
        self.btb = btb
        self.pht = pht
        self.history = history
        self.coupled = coupled
        self.speculative_btb_update = speculative_btb_update
        self.ras = ras
        self.static_fallback = static_fallback or StaticPredictor("not-taken")
        self.misfetch_penalty_slots = misfetch_penalty_slots
        self.mispredict_penalty_slots = mispredict_penalty_slots
        self.stats = BranchStats()

    # -- direction prediction ------------------------------------------------

    def _predict_direction(
        self, pc: int, btb_entry, static_target: int | None
    ) -> tuple[bool, int | None]:
        """Return ``(taken?, pht_index or None)`` for a conditional branch."""
        if self.coupled:
            if btb_entry is not None:
                return self.btb.counter_predicts_taken(btb_entry), None
            return self.static_fallback.predict(pc, static_target), None
        return self.pht.predict(pc, self.history.value)

    # -- the main classification entry point ---------------------------------

    def predict(
        self,
        pc: int,
        kind: InstrKind,
        static_target: int | None,
        actual_taken: bool,
        actual_target: int,
        fall_through: int,
    ) -> PredictionResult:
        """Predict the transfer at *pc* and classify against the truth.

        ``actual_target`` is the actual next PC (trace ground truth);
        ``static_target`` is the target encoded in the instruction (None
        for returns / indirect calls).
        """
        if kind is InstrKind.COND_BRANCH:
            return self._predict_conditional(
                pc, static_target, actual_taken, actual_target, fall_through
            )
        if kind in (InstrKind.JUMP, InstrKind.CALL):
            return self._predict_direct(pc, actual_target, fall_through)
        if kind is InstrKind.RETURN:
            return self._predict_return(pc, actual_target, fall_through)
        if kind is InstrKind.INDIRECT_CALL:
            return self._predict_indirect(pc, actual_target, fall_through)
        raise SimulationError(f"non-control kind {kind} reached the branch unit")

    def _result_correct(
        self, pht_index: int | None, predicted_taken: bool | None
    ) -> PredictionResult:
        self.stats.correct += 1
        return PredictionResult(
            outcome=FetchOutcome.CORRECT,
            cause=PenaltyCause.NONE,
            penalty_slots=0,
            wrong_path_start=None,
            wrong_path_delay=0,
            wrong_path_slots=0,
            pht_index=pht_index,
            predicted_taken=predicted_taken,
        )

    def _charge(self, cause: PenaltyCause, slots: int) -> None:
        self.stats.penalty_slots_by_cause[cause.value] += slots
        if cause is PenaltyCause.BTB_MISFETCH:
            self.stats.btb_misfetches += 1
        elif cause is PenaltyCause.PHT_MISPREDICT:
            self.stats.pht_mispredicts += 1
        elif cause is PenaltyCause.BTB_MISPREDICT:
            self.stats.btb_mispredicts += 1

    def _predict_conditional(
        self,
        pc: int,
        static_target: int | None,
        actual_taken: bool,
        actual_target: int,
        fall_through: int,
    ) -> PredictionResult:
        if static_target is None:
            raise SimulationError(f"conditional at {pc:#x} lacks a static target")
        self.stats.conditional += 1
        entry = self.btb.lookup(pc)
        predicted_taken, pht_index = self._predict_direction(pc, entry, static_target)
        if self.speculative_btb_update and predicted_taken:
            # Decode-time speculative insertion; the decode stage computes
            # the real static target, so the inserted target is correct.
            self.btb.insert(pc, static_target)
        elif actual_taken:
            # Non-speculative designs (and not-predicted-taken branches)
            # insert once the branch resolves taken.
            self.btb.insert(pc, static_target)

        if predicted_taken == actual_taken:
            if not predicted_taken:
                return self._result_correct(pht_index, predicted_taken)
            if entry is not None:
                # Target came from the BTB: clean hit.
                return self._result_correct(pht_index, predicted_taken)
            # Predicted taken but the target had to be computed at decode:
            # misfetch.  The two pre-decode cycles fetched the fall-through,
            # which is wrong because the branch is taken.
            self._charge(PenaltyCause.BTB_MISFETCH, self.misfetch_penalty_slots)
            return PredictionResult(
                outcome=FetchOutcome.MISFETCH,
                cause=PenaltyCause.BTB_MISFETCH,
                penalty_slots=self.misfetch_penalty_slots,
                wrong_path_start=fall_through,
                wrong_path_delay=0,
                wrong_path_slots=self.misfetch_penalty_slots,
                pht_index=pht_index,
                predicted_taken=predicted_taken,
            )
        # Direction mispredict (PHT's fault in the decoupled design).
        self._charge(PenaltyCause.PHT_MISPREDICT, self.mispredict_penalty_slots)
        if predicted_taken:
            if entry is not None:
                # Fetched the taken target immediately; wrong for 4 cycles.
                wrong_start = entry.target
                delay = 0
                window = self.mispredict_penalty_slots
            else:
                # Composite: 2 cycles of (squashed) fall-through fetch, then
                # a decode-time redirect to the (wrong) computed target for
                # the remaining 2 cycles.
                wrong_start = static_target
                delay = self.misfetch_penalty_slots
                window = self.mispredict_penalty_slots - self.misfetch_penalty_slots
        else:
            # Predicted not taken: fall-through fetched for 4 cycles.
            wrong_start = fall_through
            delay = 0
            window = self.mispredict_penalty_slots
        return PredictionResult(
            outcome=FetchOutcome.MISPREDICT,
            cause=PenaltyCause.PHT_MISPREDICT,
            penalty_slots=self.mispredict_penalty_slots,
            wrong_path_start=wrong_start,
            wrong_path_delay=delay,
            wrong_path_slots=window,
            pht_index=pht_index,
            predicted_taken=predicted_taken,
        )

    def _predict_direct(
        self, pc: int, actual_target: int, fall_through: int
    ) -> PredictionResult:
        self.stats.unconditional += 1
        entry = self.btb.lookup(pc)
        if entry is None:
            self.btb.insert(pc, actual_target)
            self._charge(PenaltyCause.BTB_MISFETCH, self.misfetch_penalty_slots)
            return PredictionResult(
                outcome=FetchOutcome.MISFETCH,
                cause=PenaltyCause.BTB_MISFETCH,
                penalty_slots=self.misfetch_penalty_slots,
                wrong_path_start=fall_through,
                wrong_path_delay=0,
                wrong_path_slots=self.misfetch_penalty_slots,
                pht_index=None,
                predicted_taken=None,
            )
        return self._result_correct(None, None)

    def _predict_dynamic_target(
        self, pc: int, actual_target: int, fall_through: int, via_ras: bool
    ) -> PredictionResult:
        """Shared path for returns and indirect calls (dynamic targets)."""
        predicted: int | None = None
        if via_ras and self.ras is not None:
            predicted = self.ras.pop()
        if predicted is None:
            entry = self.btb.lookup(pc)
            predicted = entry.target if entry is not None else None
        self.btb.insert(pc, actual_target)
        if predicted is None:
            self._charge(PenaltyCause.BTB_MISFETCH, self.misfetch_penalty_slots)
            return PredictionResult(
                outcome=FetchOutcome.MISFETCH,
                cause=PenaltyCause.BTB_MISFETCH,
                penalty_slots=self.misfetch_penalty_slots,
                wrong_path_start=fall_through,
                wrong_path_delay=0,
                wrong_path_slots=self.misfetch_penalty_slots,
                pht_index=None,
                predicted_taken=None,
            )
        if predicted == actual_target:
            return self._result_correct(None, None)
        self._charge(PenaltyCause.BTB_MISPREDICT, self.mispredict_penalty_slots)
        return PredictionResult(
            outcome=FetchOutcome.MISPREDICT,
            cause=PenaltyCause.BTB_MISPREDICT,
            penalty_slots=self.mispredict_penalty_slots,
            wrong_path_start=predicted,
            wrong_path_delay=0,
            wrong_path_slots=self.mispredict_penalty_slots,
            pht_index=None,
            predicted_taken=None,
        )

    def _predict_return(
        self, pc: int, actual_target: int, fall_through: int
    ) -> PredictionResult:
        self.stats.unconditional += 1
        return self._predict_dynamic_target(pc, actual_target, fall_through, True)

    def _predict_indirect(
        self, pc: int, actual_target: int, fall_through: int
    ) -> PredictionResult:
        self.stats.unconditional += 1
        if self.ras is not None:
            # Indirect *calls* push their return address.
            self.ras.push(fall_through)
        return self._predict_dynamic_target(pc, actual_target, fall_through, False)

    def notify_call(self, return_address: int) -> None:
        """Tell the RAS (if present) that a direct call was fetched."""
        if self.ras is not None:
            self.ras.push(return_address)

    # -- resolution -----------------------------------------------------------

    def resolve(self, pht_index: int | None, taken: bool, pc: int | None = None) -> None:
        """Resolve one conditional branch: update counters and history.

        The paper's architecture delays both updates to resolution; the
        engine calls this when the branch's resolve time is reached.  For
        coupled designs the direction state lives in the BTB entry, so
        *pc* locates it; decoupled designs update the PHT at the
        prediction-time *pht_index*.
        """
        if self.coupled:
            if pc is not None:
                self.btb.update_counter(pc, taken)
        elif pht_index is not None:
            self.pht.update(pht_index, taken)
        self.history.shift_in(taken)

    # -- wrong-path (speculative, read-only) probes ---------------------------

    def peek_direction(self, pc: int) -> bool:
        """Direction prediction without touching predictor state."""
        if self.coupled:
            entry = self.btb.peek(pc)
            if entry is not None:
                return self.btb.counter_predicts_taken(entry)
            return self.static_fallback.predict(pc, None)
        idx = self.pht.index(pc, self.history.snapshot())
        return self.pht.table.predict(idx)

    def peek_target(self, pc: int) -> int | None:
        """BTB target without touching LRU/statistics."""
        entry = self.btb.peek(pc)
        return entry.target if entry is not None else None

    # -- observability ---------------------------------------------------------

    def publish_metrics(self, registry, prefix: str = "branch") -> None:
        """Publish dynamic branch statistics into a metrics registry."""
        stats = self.stats
        registry.inc(f"{prefix}.conditional", stats.conditional)
        registry.inc(f"{prefix}.unconditional", stats.unconditional)
        registry.inc(f"{prefix}.correct", stats.correct)
        registry.inc(f"{prefix}.pht_mispredicts", stats.pht_mispredicts)
        registry.inc(f"{prefix}.btb_misfetches", stats.btb_misfetches)
        registry.inc(f"{prefix}.btb_mispredicts", stats.btb_mispredicts)
        for cause, slots in sorted(stats.penalty_slots_by_cause.items()):
            registry.inc(f"{prefix}.penalty_slots.{cause}", slots)

    def reset(self) -> None:
        """Clear all predictor state and statistics."""
        self.btb.reset()
        self.pht.reset()
        self.history.reset()
        if self.ras is not None:
            self.ras.reset()
        self.stats = BranchStats()


def make_paper_branch_unit(
    btb_entries: int = 64,
    btb_assoc: int = 4,
    pht_entries: int = 512,
    history_bits: int | None = None,
    coupled: bool = False,
    speculative_btb_update: bool = True,
    use_ras: bool = False,
    ras_depth: int = 8,
) -> BranchUnit:
    """Build the paper's branch architecture (defaults = §4.1).

    ``history_bits`` defaults to log2(pht_entries), the natural gshare
    sizing (9 bits for the paper's 512-entry PHT).
    """
    from repro.branch.pht import GsharePHT

    if history_bits is None:
        history_bits = max(1, pht_entries.bit_length() - 1)
    if pht_entries & (pht_entries - 1):
        raise ConfigError(f"PHT entries must be a power of two, got {pht_entries}")
    return BranchUnit(
        btb=BranchTargetBuffer(entries=btb_entries, assoc=btb_assoc),
        pht=GsharePHT(pht_entries),
        history=GlobalHistory(history_bits),
        coupled=coupled,
        speculative_btb_update=speculative_btb_update,
        ras=ReturnAddressStack(ras_depth) if use_ras else None,
    )
