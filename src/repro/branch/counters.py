"""Saturating counters — the basic state element of dynamic predictors.

The paper's PHT uses 2-bit saturating counters (as does its Pentium BTB
description).  We implement an n-bit generalisation; 2 bits is the default
everywhere.
"""

from __future__ import annotations

from repro.errors import ConfigError


class SaturatingCounter:
    """A single n-bit up/down saturating counter.

    The counter predicts *taken* when in the upper half of its range.
    A fresh counter starts weakly-not-taken (just below the midpoint),
    matching the common hardware initialisation.
    """

    __slots__ = ("bits", "max_value", "threshold", "value")

    def __init__(self, bits: int = 2, initial: int | None = None) -> None:
        if bits < 1:
            raise ConfigError(f"counter needs >= 1 bit, got {bits}")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        if initial is None:
            initial = self.threshold - 1
        if not 0 <= initial <= self.max_value:
            raise ConfigError(f"initial value {initial} out of range for {bits} bits")
        self.value = initial

    @property
    def prediction(self) -> bool:
        """True if the counter currently predicts taken."""
        return self.value >= self.threshold

    def update(self, taken: bool) -> None:
        """Strengthen towards the observed outcome, saturating."""
        if taken:
            if self.value < self.max_value:
                self.value += 1
        elif self.value > 0:
            self.value -= 1

    def __repr__(self) -> str:
        return f"SaturatingCounter(bits={self.bits}, value={self.value})"


class CounterTable:
    """A flat table of n-bit saturating counters.

    Stored as a plain list of ints for speed (the PHT is exercised once or
    twice per dynamic branch).  All counters start weakly-not-taken.
    """

    __slots__ = ("bits", "entries", "max_value", "threshold", "values")

    def __init__(self, entries: int, bits: int = 2) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ConfigError(f"table entries must be a power of two, got {entries}")
        if bits < 1:
            raise ConfigError(f"counter needs >= 1 bit, got {bits}")
        self.entries = entries
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        self.values = [self.threshold - 1] * entries

    def predict(self, index: int) -> bool:
        """Prediction of the counter at *index* (True = taken)."""
        return self.values[index] >= self.threshold

    def update(self, index: int, taken: bool) -> None:
        """Saturating update of the counter at *index*."""
        value = self.values[index]
        if taken:
            if value < self.max_value:
                self.values[index] = value + 1
        elif value > 0:
            self.values[index] = value - 1

    def reset(self) -> None:
        """Return every counter to weakly-not-taken."""
        self.values = [self.threshold - 1] * self.entries

    def __len__(self) -> int:
        return self.entries
