"""Branch target buffer.

The paper's BTB is a 64-entry, 4-way set-associative cache of the targets
of recently *taken* branches, updated speculatively at decode.  It serves
two purposes in the front end:

* identifying an instruction as a branch at fetch time (a BTB miss on a
  taken branch is a *misfetch*: the fall-through is fetched until decode);
* supplying the target address (a stale target for a return/indirect call
  is a *mispredict*).

We support the decoupled organisation the paper simulates (direction comes
from a separate PHT for every conditional branch) and, as an ablation, the
coupled organisation (Pentium-style: direction counters live in the BTB
entry, so only BTB-resident branches get dynamic prediction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.isa import INSTRUCTION_SIZE


@dataclass(slots=True)
class BTBEntry:
    """One BTB way: tag, target, and (coupled designs only) a counter."""

    tag: int
    target: int
    counter: int


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement.

    Only taken branches are inserted (:meth:`insert` is called by the
    engine at decode for predicted-taken branches, matching the paper's
    speculative-update policy).
    """

    def __init__(
        self,
        entries: int = 64,
        assoc: int = 4,
        counter_bits: int = 2,
    ) -> None:
        if entries < 1 or assoc < 1:
            raise ConfigError("BTB entries and associativity must be >= 1")
        if entries % assoc:
            raise ConfigError(f"{entries} entries not divisible by {assoc} ways")
        n_sets = entries // assoc
        if n_sets & (n_sets - 1):
            raise ConfigError(f"BTB set count {n_sets} must be a power of two")
        if counter_bits < 1:
            raise ConfigError("BTB counter needs >= 1 bit")
        self.entries = entries
        self.assoc = assoc
        self.n_sets = n_sets
        self.set_mask = n_sets - 1
        self._tag_shift = n_sets.bit_length() - 1
        self.counter_max = (1 << counter_bits) - 1
        self.counter_threshold = 1 << (counter_bits - 1)
        self.counter_init = self.counter_threshold  # weakly taken: it was taken once
        # Each set is a list of BTBEntry in LRU order (index 0 = LRU).
        self._sets: list[list[BTBEntry]] = [[] for _ in range(n_sets)]
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    def _locate(self, pc: int) -> tuple[list[BTBEntry], int]:
        word = pc // INSTRUCTION_SIZE
        return self._sets[word & self.set_mask], word >> self._tag_shift

    def lookup(self, pc: int) -> BTBEntry | None:
        """Probe for *pc*; a hit refreshes LRU and returns the entry."""
        ways, tag = self._locate(pc)
        for i, entry in enumerate(ways):
            if entry.tag == tag:
                ways.append(ways.pop(i))  # move to MRU position
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def peek(self, pc: int) -> BTBEntry | None:
        """Probe without touching LRU state or statistics.

        Used by the wrong-path walker, whose speculative probes must not
        perturb the predictor (the paper's machine reads the BTB on the
        wrong path too, but modelling that second-order effect would make
        runs non-reproducible across policies; see DESIGN.md)."""
        ways, tag = self._locate(pc)
        for entry in ways:
            if entry.tag == tag:
                return entry
        return None

    def insert(self, pc: int, target: int) -> BTBEntry:
        """Insert/refresh the entry for a taken branch (decode-time update)."""
        ways, tag = self._locate(pc)
        for i, entry in enumerate(ways):
            if entry.tag == tag:
                entry.target = target
                ways.append(ways.pop(i))
                return entry
        entry = BTBEntry(tag=tag, target=target, counter=self.counter_init)
        if len(ways) >= self.assoc:
            ways.pop(0)  # evict LRU
            self.evictions += 1
        ways.append(entry)
        self.insertions += 1
        return entry

    def update_counter(self, pc: int, taken: bool) -> None:
        """Resolve-time direction update for *coupled* designs."""
        ways, tag = self._locate(pc)
        for entry in ways:
            if entry.tag == tag:
                if taken:
                    if entry.counter < self.counter_max:
                        entry.counter += 1
                elif entry.counter > 0:
                    entry.counter -= 1
                return

    def counter_predicts_taken(self, entry: BTBEntry) -> bool:
        """Direction prediction from a coupled entry's counter."""
        return entry.counter >= self.counter_threshold

    def reset(self) -> None:
        """Empty the BTB and clear statistics."""
        self._sets = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    def __contains__(self, pc: int) -> bool:
        return self.peek(pc) is not None
