"""Return address stack.

The paper's machine predicts return targets through the BTB (the most
recent return target of the site).  A RAS is the standard improvement; we
provide one as an optional extension (off by default, to match the paper)
and use it in ablation experiments.
"""

from __future__ import annotations

from repro.errors import ConfigError


class ReturnAddressStack:
    """A fixed-depth circular return-address predictor.

    Overflow overwrites the oldest entry; underflow returns ``None``
    (predict via BTB / fall back to misfetch), as in real designs.
    """

    def __init__(self, depth: int = 8) -> None:
        if depth < 1:
            raise ConfigError(f"RAS depth must be >= 1, got {depth}")
        self.depth = depth
        self._stack: list[int] = []
        self.pushes = 0
        self.pops = 0
        self.underflows = 0
        self.overflows = 0

    def push(self, return_address: int) -> None:
        """Record a call's return address."""
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_address)
        self.pushes += 1

    def pop(self) -> int | None:
        """Predict the target of a return; None when empty."""
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def peek(self) -> int | None:
        """Top of stack without popping (wrong-path probes)."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        """Empty the stack and clear statistics."""
        self._stack.clear()
        self.pushes = 0
        self.pops = 0
        self.underflows = 0
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._stack)
