"""Branch-prediction substrate (BTB + PHT + history + RAS).

Implements the paper's branch architecture (§4.1): a decoupled 64-entry
4-way-associative branch target buffer for targets, a 512-entry gshare
pattern history table (McFarling XOR of global history and branch address)
for directions, resolution-delayed PHT/history updates, and speculative
decode-time BTB updates.  Coupled (Pentium-style) designs and a return
address stack are provided for ablation experiments.
"""

from repro.branch.btb import BranchTargetBuffer, BTBEntry
from repro.branch.counters import CounterTable, SaturatingCounter
from repro.branch.history import GlobalHistory
from repro.branch.pht import (
    BimodalPHT,
    GAgPHT,
    GsharePHT,
    PatternHistoryTable,
    make_pht,
)
from repro.branch.ras import ReturnAddressStack
from repro.branch.static import StaticPredictor
from repro.branch.unit import (
    DECODE_LATENCY_SLOTS,
    MISFETCH_PENALTY_SLOTS,
    MISPREDICT_PENALTY_SLOTS,
    RESOLVE_LATENCY_SLOTS,
    BranchStats,
    BranchUnit,
    FetchOutcome,
    PenaltyCause,
    PredictionResult,
    make_paper_branch_unit,
)

__all__ = [
    "BTBEntry",
    "BimodalPHT",
    "BranchStats",
    "BranchTargetBuffer",
    "BranchUnit",
    "CounterTable",
    "DECODE_LATENCY_SLOTS",
    "FetchOutcome",
    "GAgPHT",
    "GlobalHistory",
    "GsharePHT",
    "MISFETCH_PENALTY_SLOTS",
    "MISPREDICT_PENALTY_SLOTS",
    "PatternHistoryTable",
    "PenaltyCause",
    "PredictionResult",
    "RESOLVE_LATENCY_SLOTS",
    "ReturnAddressStack",
    "SaturatingCounter",
    "StaticPredictor",
    "make_paper_branch_unit",
    "make_pht",
]
