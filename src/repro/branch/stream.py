"""Prediction-stream precompute and replay.

Every table/figure sweep in the paper runs the *same* architectural trace
across many fetch-policy × I-cache cells.  Under the ``"architectural"``
branch schedule (:class:`~repro.config.SimConfig.branch_schedule`) the
branch predictor trains on a cache-independent clock — the perfect-cache
fetch clock — so the per-branch outcome sequence (predicted direction and
target, BTB hit class, penalty slots, wrong-path walk) is **identical for
every policy and cache geometry**.  This module exploits that:

* :func:`build_stream` runs the live :class:`~repro.branch.unit.BranchUnit`
  once per (workload, branch-config digest, seed, trace length) and records
  the outcome sequence as compact NumPy arrays
  (:class:`PredictionStream`);
* :class:`ReplayBranchUnit` is a drop-in facade the engine consumes
  through the :func:`~repro.core.engine.build_branch_unit` seam, replaying
  the recorded stream with **bit-identical** results (differential-tested
  in ``tests/core/test_stream_replay.py``);
* streams persist under :class:`~repro.core.artifacts.ArtifactCache` as a
  directory of ``.npy`` files, so parallel workers load them zero-copy via
  ``np.load(..., mmap_mode="r")`` instead of receiving pickled arrays.

Wrong-path walks are recorded as line-size-independent ``(pc, n)``
straight-line segments (the walk depends only on the code image and
predictor state) and re-split at each cell's line size at replay time
(:func:`~repro.core.wrongpath.iter_lines_from_runs`).

Replay is *bypassed* for timing-schedule runs with a real cache (the
historical default), where cache stalls reorder resolutions against
predictions and the stream is not shareable; see
:func:`replay_eligible` and docs/performance.md.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import tempfile
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.branch.unit import BranchStats, FetchOutcome, PenaltyCause, PredictionResult
from repro.config import SimConfig
from repro.errors import SimulationError
from repro.isa import INSTRUCTION_SIZE, InstrKind
from repro.program.program import Program
from repro.trace.event import Trace

#: On-disk / in-memory stream layout version.  Bump when the array schema
#: or the recording semantics change; old stream entries become misses
#: (and are reclaimed by ``ArtifactCache.prune()``).
STREAM_FORMAT_VERSION = 1

_PLAIN = int(InstrKind.PLAIN)
_COND = int(InstrKind.COND_BRANCH)
_CALL = int(InstrKind.CALL)
_KIND_FROM_INT = tuple(InstrKind(value) for value in range(len(InstrKind)))

#: Outcome/cause enums by compact array code (and back).
_OUTCOMES = (FetchOutcome.CORRECT, FetchOutcome.MISFETCH, FetchOutcome.MISPREDICT)
_CAUSES = (
    PenaltyCause.NONE,
    PenaltyCause.BTB_MISFETCH,
    PenaltyCause.PHT_MISPREDICT,
    PenaltyCause.BTB_MISPREDICT,
)
_OUTCOME_CODE = {outcome: code for code, outcome in enumerate(_OUTCOMES)}
_CAUSE_CODE = {cause: code for code, cause in enumerate(_CAUSES)}

#: Array fields of a stream, in on-disk order: (name, dtype).
_FIELDS = (
    ("outcome", np.int8),
    ("cause", np.int8),
    ("penalty", np.int32),
    ("delay", np.int32),
    ("wslots", np.int32),
    ("wstart", np.int64),
    ("pht_index", np.int32),
    ("pred_taken", np.int8),
    ("wp_off", np.int64),
    ("wp_pc", np.int64),
    ("wp_n", np.int32),
)

_META_NAME = "meta.json"


def replay_eligible(config: SimConfig) -> bool:
    """True when *config*'s results are provably stream-replayable.

    The recorded stream assumes predictor updates on the architectural
    (perfect-cache) clock.  That holds by construction for
    ``branch_schedule == "architectural"``, and trivially for perfect-cache
    cells (where the timing clock *is* the architectural clock).  Default
    timing-schedule runs with a real cache are not eligible — their
    resolution interleave depends on cache stalls — and simply bypass
    replay.
    """
    return config.branch_schedule == "architectural" or config.perfect_cache


def stream_digest(config: SimConfig) -> str:
    """Short stable digest of every knob that shapes the outcome stream.

    The architectural-clock schedule depends only on the branch
    architecture, the penalty/resolve latencies, and the speculation
    depth; cache and policy knobs are deliberately excluded — that
    exclusion is what lets one stream serve a whole sweep.
    """
    items = []
    for name, value in sorted(asdict(config.branch).items()):
        items.append(f"branch.{name}={value!r}")
    items.append(f"misfetch={config.misfetch_penalty_slots}")
    items.append(f"mispredict={config.mispredict_penalty_slots}")
    items.append(f"resolve={config.resolve_latency_slots}")
    items.append(f"depth={config.max_unresolved}")
    digest = hashlib.sha256(";".join(items).encode("utf-8")).hexdigest()
    return digest[:16]


@dataclass(slots=True)
class PredictionStream:
    """One workload's recorded branch-outcome sequence.

    ``n`` control-transfer records (one per non-PLAIN trace block, in
    trace order) plus ``wp_off``-indexed wrong-path segments:

    ==========  =====  ====================================================
    array       dtype  meaning
    ==========  =====  ====================================================
    outcome     int8   0 correct / 1 misfetch / 2 mispredict
    cause       int8   index into PenaltyCause (0 none .. 3 btb_mispredict)
    penalty     int32  penalty_slots
    delay       int32  wrong_path_delay
    wslots      int32  wrong_path_slots
    wstart      int64  wrong_path_start (-1 = none)
    pht_index   int32  prediction-time PHT index (-1 = none)
    pred_taken  int8   -1 none / 0 not-taken / 1 taken
    wp_off      int64  [n+1] prefix offsets into wp_pc/wp_n
    wp_pc       int64  wrong-path segment start addresses
    wp_n        int32  wrong-path segment instruction counts
    ==========  =====  ====================================================
    """

    program_name: str
    trace_seed: int | None
    trace_instructions: int
    trace_blocks: int
    digest: str
    outcome: np.ndarray
    cause: np.ndarray
    penalty: np.ndarray
    delay: np.ndarray
    wslots: np.ndarray
    wstart: np.ndarray
    pht_index: np.ndarray
    pred_taken: np.ndarray
    wp_off: np.ndarray
    wp_pc: np.ndarray
    wp_n: np.ndarray

    @property
    def n_records(self) -> int:
        """Number of recorded control transfers."""
        return len(self.outcome)

    def require_compatible(self, program_name: str, config: SimConfig) -> None:
        """Raise unless this stream can replay *program_name* under *config*."""
        if self.program_name != program_name:
            raise SimulationError(
                f"stream recorded for {self.program_name!r}, "
                f"engine built for {program_name!r}"
            )
        expected = stream_digest(config)
        if self.digest != expected:
            raise SimulationError(
                f"stream digest {self.digest} does not match branch config "
                f"digest {expected}"
            )

    def require_trace(self, trace: Trace) -> None:
        """Raise unless *trace* is the trace this stream was recorded from."""
        if (
            trace.program_name != self.program_name
            or trace.seed != self.trace_seed
            or trace.n_instructions != self.trace_instructions
            or trace.n_blocks != self.trace_blocks
        ):
            raise SimulationError(
                f"stream recorded from "
                f"{self.program_name}/s{self.trace_seed}/"
                f"i{self.trace_instructions} cannot replay trace "
                f"{trace.program_name}/s{trace.seed}/i{trace.n_instructions}"
            )

    # -- persistence (directory of .npy files + meta.json) -----------------

    def save(self, directory: str | os.PathLike[str]) -> None:
        """Write this stream to *directory*, atomically.

        Arrays go to individual ``.npy`` files (the only layout
        ``np.load(mmap_mode="r")`` can map zero-copy — npz members cannot
        be mmapped) inside a temp dir that is renamed into place, so a
        killed writer leaves no torn entry.
        """
        directory = Path(directory)
        directory.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(
            tempfile.mkdtemp(dir=directory.parent, prefix=directory.name + ".tmp")
        )
        try:
            for name, dtype in _FIELDS:
                array = np.ascontiguousarray(getattr(self, name), dtype=dtype)
                np.save(tmp / f"{name}.npy", array)
            meta = {
                "format": STREAM_FORMAT_VERSION,
                "program": self.program_name,
                "seed": self.trace_seed,
                "instructions": self.trace_instructions,
                "blocks": self.trace_blocks,
                "digest": self.digest,
                "records": self.n_records,
            }
            with open(tmp / _META_NAME, "w", encoding="utf-8") as handle:
                json.dump(meta, handle)
            os.rename(tmp, directory)
        except OSError:
            # A concurrent writer may have renamed its copy first (the
            # streams are deterministic, so either copy is valid) — or the
            # filesystem refused; either way drop our temp dir and move on.
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)

    @classmethod
    def load(
        cls, directory: str | os.PathLike[str], mmap: bool = False
    ) -> PredictionStream:
        """Read a stream from *directory* (written by :meth:`save`).

        With ``mmap=True`` arrays are memory-mapped read-only — the
        zero-copy transport parallel workers use.  Raises ``OSError`` /
        ``ValueError`` / ``KeyError`` on any corruption; callers treat
        those as cache misses.
        """
        directory = Path(directory)
        with open(directory / _META_NAME, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta["format"] != STREAM_FORMAT_VERSION:
            raise ValueError(
                f"stream format {meta['format']} != {STREAM_FORMAT_VERSION}"
            )
        mode = "r" if mmap else None
        arrays = {}
        for name, dtype in _FIELDS:
            array = np.load(directory / f"{name}.npy", mmap_mode=mode)
            if array.dtype != np.dtype(dtype) or array.ndim != 1:
                raise ValueError(f"stream array {name} has wrong shape/dtype")
            arrays[name] = array
        n = int(meta["records"])
        if len(arrays["outcome"]) != n or len(arrays["wp_off"]) != n + 1:
            raise ValueError("stream arrays inconsistent with metadata")
        for name, _ in _FIELDS[:8]:
            if len(arrays[name]) != n:
                raise ValueError(f"stream array {name} has wrong length")
        if len(arrays["wp_pc"]) != len(arrays["wp_n"]):
            raise ValueError("wrong-path segment arrays disagree")
        return cls(
            program_name=meta["program"],
            trace_seed=meta["seed"],
            trace_instructions=int(meta["instructions"]),
            trace_blocks=int(meta["blocks"]),
            digest=meta["digest"],
            **arrays,
        )


def build_stream(program: Program, trace: Trace, config: SimConfig) -> PredictionStream:
    """Run the live predictor once and record its outcome stream.

    The recording pass advances a pure architectural clock — exactly the
    perfect-cache fetch clock of :meth:`FetchEngine.run` (block issue,
    speculation-depth gate, resolution application, redirect penalties) —
    so the recorded stream is bit-identical to what any replay-eligible
    cell's engine would have computed live.
    """
    # Deferred: repro.core imports this module (via artifacts/engine), so
    # importing repro.core at our module level would be circular.
    from repro.core.engine import build_branch_unit
    from repro.core.wrongpath import iter_wrong_path_runs

    if trace.program_name != program.name:
        raise SimulationError(
            f"trace is for {trace.program_name!r}, "
            f"stream requested for {program.name!r}"
        )
    unit = build_branch_unit(config)
    image = program.image
    targets = image.targets_list
    base = image.base
    predict = unit.predict
    resolve = unit.resolve
    resolve_slots = config.resolve_latency_slots
    max_unresolved = config.max_unresolved
    queue: deque[tuple[int, int | None, bool, int]] = deque()

    outcome_l: list[int] = []
    cause_l: list[int] = []
    penalty_l: list[int] = []
    delay_l: list[int] = []
    wslots_l: list[int] = []
    wstart_l: list[int] = []
    pht_l: list[int] = []
    pred_l: list[int] = []
    wp_off: list[int] = [0]
    wp_pc: list[int] = []
    wp_n: list[int] = []

    tau = 0
    for record in trace.records:
        start, length, kind, taken, next_pc = record
        if kind == _COND:
            tau += length - 1
            if queue:
                if queue[0][0] <= tau:
                    while queue and queue[0][0] <= tau:
                        _, pht_index, q_taken, pc = queue.popleft()
                        resolve(pht_index, q_taken, pc=pc)
                if len(queue) >= max_unresolved:
                    head = queue[0][0]
                    if head > tau:
                        tau = head
                    while queue and queue[0][0] <= tau:
                        _, pht_index, q_taken, pc = queue.popleft()
                        resolve(pht_index, q_taken, pc=pc)
            tau += 1
        else:
            tau += length
            if kind == _PLAIN:
                continue
        tau_br = tau - 1
        if queue and queue[0][0] <= tau_br:
            while queue and queue[0][0] <= tau_br:
                _, pht_index, q_taken, pc = queue.popleft()
                resolve(pht_index, q_taken, pc=pc)
        term_addr = start + (length - 1) * INSTRUCTION_SIZE
        ctrl_idx = (term_addr - base) // INSTRUCTION_SIZE
        raw_target = targets[ctrl_idx]
        static_target = None if raw_target < 0 else raw_target
        fall = term_addr + INSTRUCTION_SIZE
        result = predict(
            term_addr, _KIND_FROM_INT[kind], static_target, taken, next_pc, fall
        )
        if kind == _CALL:
            unit.notify_call(fall)
        if kind == _COND:
            queue.append((tau_br + resolve_slots, result.pht_index, taken, term_addr))

        outcome_l.append(_OUTCOME_CODE[result.outcome])
        cause_l.append(_CAUSE_CODE[result.cause])
        penalty_l.append(result.penalty_slots)
        delay_l.append(result.wrong_path_delay)
        wslots_l.append(result.wrong_path_slots)
        wstart_l.append(-1 if result.wrong_path_start is None else result.wrong_path_start)
        pht_l.append(-1 if result.pht_index is None else result.pht_index)
        pred_l.append(
            -1 if result.predicted_taken is None else int(result.predicted_taken)
        )
        if result.outcome is not FetchOutcome.CORRECT:
            if result.wrong_path_start is not None and result.wrong_path_slots > 0:
                for seg_pc, seg_n in iter_wrong_path_runs(
                    image, unit, result.wrong_path_start, result.wrong_path_slots
                ):
                    wp_pc.append(seg_pc)
                    wp_n.append(seg_n)
            tau = tau_br + 1 + result.penalty_slots
        wp_off.append(len(wp_pc))
    # Parity with the engine's end-of-run flush (every queued branch has
    # resolve_at <= clock + resolve_slots, so the flush drains the queue).
    while queue:
        _, pht_index, q_taken, pc = queue.popleft()
        resolve(pht_index, q_taken, pc=pc)

    arrays = {
        "outcome": np.asarray(outcome_l, dtype=np.int8),
        "cause": np.asarray(cause_l, dtype=np.int8),
        "penalty": np.asarray(penalty_l, dtype=np.int32),
        "delay": np.asarray(delay_l, dtype=np.int32),
        "wslots": np.asarray(wslots_l, dtype=np.int32),
        "wstart": np.asarray(wstart_l, dtype=np.int64),
        "pht_index": np.asarray(pht_l, dtype=np.int32),
        "pred_taken": np.asarray(pred_l, dtype=np.int8),
        "wp_off": np.asarray(wp_off, dtype=np.int64),
        "wp_pc": np.asarray(wp_pc, dtype=np.int64),
        "wp_n": np.asarray(wp_n, dtype=np.int32),
    }
    return PredictionStream(
        program_name=program.name,
        trace_seed=trace.seed,
        trace_instructions=trace.n_instructions,
        trace_blocks=trace.n_blocks,
        digest=stream_digest(config),
        **arrays,
    )


class _LoweredStream:
    """Plain-list forms of one stream's record arrays (read-only).

    List indexing is ~3x faster than ndarray scalar indexing in the
    per-branch hot loop, and the conversion pages mmapped arrays in
    exactly once.  Lowered lists are shared: every facade built from
    the same stream object — including :meth:`FetchEngine.fork` clones
    made for ``AdaptiveEngine`` shadow/oracle runs, which share the
    stream by identity — reuses one lowering via :func:`_lowered_lists`.
    """

    __slots__ = (
        "outcome",
        "cause",
        "penalty",
        "delay",
        "wslots",
        "wstart",
        "pht_index",
        "pred_taken",
        "wp_off",
        "wp_pc",
        "wp_n",
    )

    def __init__(self, stream: PredictionStream) -> None:
        self.outcome = stream.outcome.tolist()
        self.cause = stream.cause.tolist()
        self.penalty = stream.penalty.tolist()
        self.delay = stream.delay.tolist()
        self.wslots = stream.wslots.tolist()
        self.wstart = stream.wstart.tolist()
        self.pht_index = stream.pht_index.tolist()
        self.pred_taken = stream.pred_taken.tolist()
        self.wp_off = stream.wp_off.tolist()
        self.wp_pc = stream.wp_pc.tolist()
        self.wp_n = stream.wp_n.tolist()


_LOWERED_CAP = 8
# Keyed by id(stream); each entry pins the stream so the id cannot be
# recycled while the entry lives (same scheme as repro.core.vector_kernels).
_lowered_memo: dict[int, tuple[PredictionStream, _LoweredStream]] = {}
_n_lowerings = 0


def stream_lowerings() -> int:
    """Stream lowerings actually performed — a test hook (see
    ``tests/core/test_lowering_sharing.py``), not a metric."""
    return _n_lowerings


def _lowered_lists(stream: PredictionStream) -> _LoweredStream:
    entry = _lowered_memo.get(id(stream))
    if entry is not None:
        return entry[1]
    global _n_lowerings
    if len(_lowered_memo) >= _LOWERED_CAP:
        _lowered_memo.pop(next(iter(_lowered_memo)))
    _n_lowerings += 1
    value = _LoweredStream(stream)
    _lowered_memo[id(stream)] = (stream, value)
    return value


class ReplayBranchUnit:
    """Drop-in :class:`BranchUnit` facade that replays a recorded stream.

    Consumed by the engine through the ``build_branch_unit`` seam: it
    reconstructs each :class:`PredictionResult` from the stream arrays,
    keeps :class:`BranchStats` exactly as the live unit would, and serves
    recorded wrong-path walks re-split at the engine's line size.
    ``resolve`` / ``notify_call`` are no-ops — the training they would do
    is already baked into the recorded outcomes.
    """

    __slots__ = (
        "stream",
        "stats",
        "misfetch_penalty_slots",
        "mispredict_penalty_slots",
        "_cursor",
        "_last",
        "_outcome",
        "_cause",
        "_penalty",
        "_delay",
        "_wslots",
        "_wstart",
        "_pht_index",
        "_pred_taken",
        "_wp_off",
        "_wp_pc",
        "_wp_n",
        "_split_lines",
    )

    def __init__(self, stream: PredictionStream, config: SimConfig) -> None:
        stream.require_compatible(stream.program_name, config)
        self.stream = stream
        self.stats = BranchStats()
        self.misfetch_penalty_slots = config.misfetch_penalty_slots
        self.mispredict_penalty_slots = config.mispredict_penalty_slots
        self._cursor = 0
        self._last = -1
        lowered = _lowered_lists(stream)
        self._outcome = lowered.outcome
        self._cause = lowered.cause
        self._penalty = lowered.penalty
        self._delay = lowered.delay
        self._wslots = lowered.wslots
        self._wstart = lowered.wstart
        self._pht_index = lowered.pht_index
        self._pred_taken = lowered.pred_taken
        self._wp_off = lowered.wp_off
        self._wp_pc = lowered.wp_pc
        self._wp_n = lowered.wp_n
        # Deferred import (cycle: repro.core imports this module); bound
        # once per facade, not per wrong-path walk.
        from repro.core.wrongpath import iter_lines_from_runs

        self._split_lines = iter_lines_from_runs

    def __deepcopy__(self, memo: dict) -> ReplayBranchUnit:
        """Fork-friendly copy: the stream and its lowered lists are
        read-only, so an engine fork shares them and deep-copies only
        the mutable replay state (:class:`BranchStats`, cursor)."""
        clone = object.__new__(ReplayBranchUnit)
        memo[id(self)] = clone
        for name in ReplayBranchUnit.__slots__:
            setattr(clone, name, getattr(self, name))
        clone.stats = copy.deepcopy(self.stats, memo)
        return clone

    def rewind(self) -> None:
        """Reset the replay cursor to the start of the stream."""
        self._cursor = 0
        self._last = -1

    # -- the hot replay path ----------------------------------------------

    def predict(
        self,
        pc: int,
        kind: InstrKind,
        static_target: int | None,
        actual_taken: bool,
        actual_target: int,
        fall_through: int,
    ) -> PredictionResult:
        """Replay the recorded outcome for the next control transfer."""
        i = self._cursor
        if i >= len(self._outcome):
            raise SimulationError(
                f"prediction stream exhausted after {i} records "
                f"(trace/stream mismatch for {self.stream.program_name!r})"
            )
        self._cursor = i + 1
        stats = self.stats
        if kind is InstrKind.COND_BRANCH:
            stats.conditional += 1
        else:
            stats.unconditional += 1
        raw_pht = self._pht_index[i]
        pht_index = None if raw_pht < 0 else raw_pht
        raw_pred = self._pred_taken[i]
        predicted_taken = None if raw_pred < 0 else raw_pred == 1
        outcome_code = self._outcome[i]
        if outcome_code == 0:
            stats.correct += 1
            return PredictionResult(
                outcome=_OUTCOMES[0],
                cause=_CAUSES[0],
                penalty_slots=0,
                wrong_path_start=None,
                wrong_path_delay=0,
                wrong_path_slots=0,
                pht_index=pht_index,
                predicted_taken=predicted_taken,
            )
        self._last = i
        cause_code = self._cause[i]
        cause = _CAUSES[cause_code]
        penalty = self._penalty[i]
        stats.penalty_slots_by_cause[cause.value] += penalty
        if cause_code == 1:
            stats.btb_misfetches += 1
        elif cause_code == 2:
            stats.pht_mispredicts += 1
        elif cause_code == 3:
            stats.btb_mispredicts += 1
        raw_start = self._wstart[i]
        return PredictionResult(
            outcome=_OUTCOMES[outcome_code],
            cause=cause,
            penalty_slots=penalty,
            wrong_path_start=None if raw_start < 0 else raw_start,
            wrong_path_delay=self._delay[i],
            wrong_path_slots=self._wslots[i],
            pht_index=pht_index,
            predicted_taken=predicted_taken,
        )

    def iter_last_wrong_path_lines(self, line_size: int):
        """Recorded wrong-path walk of the last non-correct prediction,
        re-split at *line_size* boundaries (``(line, n)`` chunks)."""
        i = self._last
        lo = self._wp_off[i]
        hi = self._wp_off[i + 1]
        return self._split_lines(
            zip(self._wp_pc[lo:hi], self._wp_n[lo:hi]), line_size
        )

    # -- trained-state no-ops ---------------------------------------------

    def resolve(
        self, pht_index: int | None, taken: bool, pc: int | None = None
    ) -> None:
        """No-op: resolution training is baked into the recorded stream."""

    def notify_call(self, return_address: int) -> None:
        """No-op: RAS effects are baked into the recorded stream."""

    # -- observability ------------------------------------------------------

    def publish_metrics(self, registry, prefix: str = "branch") -> None:
        """Publish dynamic branch statistics (same schema as the live unit)."""
        stats = self.stats
        registry.inc(f"{prefix}.conditional", stats.conditional)
        registry.inc(f"{prefix}.unconditional", stats.unconditional)
        registry.inc(f"{prefix}.correct", stats.correct)
        registry.inc(f"{prefix}.pht_mispredicts", stats.pht_mispredicts)
        registry.inc(f"{prefix}.btb_misfetches", stats.btb_misfetches)
        registry.inc(f"{prefix}.btb_mispredicts", stats.btb_mispredicts)
        for cause, slots in sorted(stats.penalty_slots_by_cause.items()):
            registry.inc(f"{prefix}.penalty_slots.{cause}", slots)
