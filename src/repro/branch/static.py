"""Static direction predictors.

Used (a) as baselines in ablation experiments, and (b) by coupled BTB
designs for conditional branches that miss in the BTB (the Pentium falls
back to predicting fall-through, i.e. not-taken).
"""

from __future__ import annotations

from repro.errors import ConfigError


class StaticPredictor:
    """A stateless direction rule."""

    def __init__(self, rule: str = "not-taken") -> None:
        if rule not in ("taken", "not-taken", "btfnt"):
            raise ConfigError(
                f"unknown static rule {rule!r}; "
                "expected 'taken', 'not-taken', or 'btfnt'"
            )
        self.rule = rule

    def predict(self, pc: int, target: int | None) -> bool:
        """Predict direction for a branch at *pc* with static *target*.

        ``btfnt`` (backward-taken / forward-not-taken) needs the target;
        when the target is unknown (BTB miss), it degrades to not-taken,
        exactly as real front ends must.
        """
        if self.rule == "taken":
            return True
        if self.rule == "not-taken":
            return False
        if target is None:
            return False
        return target < pc

    def __repr__(self) -> str:
        return f"StaticPredictor(rule={self.rule!r})"
