"""Observability: metrics, cycle-level event tracing, and profiling.

See ``docs/observability.md`` for the event taxonomy, metric names, and
the invariants the test suite enforces over them.
"""

from repro.obs.events import (
    EVENT_TYPES,
    INCIDENT_KINDS,
    SERVICE_INCIDENT_KINDS,
    STALL_CAUSES,
    EngineFallback,
    Event,
    EventSink,
    FetchStall,
    FillInstall,
    JsonlSink,
    MissService,
    NullSink,
    PolicySwitch,
    PrefetchIssue,
    Redirect,
    RingBufferSink,
    ServiceIncident,
    SweepIncident,
    event_from_dict,
    event_to_dict,
    read_jsonl_events,
)
from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import Observer
from repro.obs.profile import PhaseProfiler

__all__ = [
    "Counter",
    "DEFAULT_BOUNDS",
    "EVENT_TYPES",
    "EngineFallback",
    "Event",
    "INCIDENT_KINDS",
    "EventSink",
    "FetchStall",
    "FillInstall",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "MissService",
    "NullSink",
    "Observer",
    "PhaseProfiler",
    "PolicySwitch",
    "PrefetchIssue",
    "Redirect",
    "RingBufferSink",
    "SERVICE_INCIDENT_KINDS",
    "STALL_CAUSES",
    "ServiceIncident",
    "SweepIncident",
    "event_from_dict",
    "event_to_dict",
    "read_jsonl_events",
]
