"""Named counters and histograms: the metrics side of the observability
layer.

A :class:`MetricsRegistry` is a flat namespace of named metrics that the
engine and every hardware model publish into at the end of a run (and, for
a handful of distribution-shaped quantities, during the run).  Two metric
kinds exist:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Histogram` — fixed-bound integer buckets plus count / total /
  min / max, for quantities like miss-service times.

Everything is integer-valued and insertion-order independent, so two
registries fed by the same simulations — whether in one process or merged
from parallel workers — serialise to *identical* dictionaries.  That
property underpins the serial-vs-parallel differential tests and the
golden metric snapshots.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.errors import ObservabilityError

#: Default histogram bucket upper bounds (slots); one overflow bucket is
#: appended implicitly for samples above the last bound.
DEFAULT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


class Counter:
    """A named, monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (>= 0) to the counter."""
        if n < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {n})"
            )
        self.value += n

    def merge(self, other: Counter) -> None:
        """Fold another counter's value into this one."""
        self.value += other.value

    def as_value(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Fixed-bucket integer histogram (bounds are inclusive upper edges)."""

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[int] = DEFAULT_BOUNDS) -> None:
        bounds = tuple(bounds)
        if not bounds:
            raise ObservabilityError(f"histogram {name!r} needs >= 1 bound")
        if list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram {name!r} bounds must be strictly increasing: {bounds}"
            )
        self.name = name
        self.bounds = bounds
        #: One bucket per bound plus an overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def observe(self, value: int) -> None:
        """Record one sample."""
        self.counts[bisect_right(self.bounds, value - 1)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: Histogram) -> None:
        """Fold another histogram (same bounds) into this one."""
        if other.bounds != self.bounds:
            raise ObservabilityError(
                f"cannot merge histogram {self.name!r}: bounds differ "
                f"({self.bounds} vs {other.bounds})"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def as_value(self) -> dict[str, Any]:
        """JSON-ready summary (integers only, deterministic key order)."""
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, total={self.total})"


Metric = Counter | Histogram


class MetricsRegistry:
    """A flat, mergeable namespace of named counters and histograms."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # -- creation / lookup -------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter called *name*."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Counter(name)
            self._metrics[name] = metric
        elif not isinstance(metric, Counter):
            raise ObservabilityError(f"{name!r} is a histogram, not a counter")
        return metric

    def histogram(
        self, name: str, bounds: Sequence[int] = DEFAULT_BOUNDS
    ) -> Histogram:
        """Get or create the histogram called *name*."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, bounds)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ObservabilityError(f"{name!r} is a counter, not a histogram")
        elif metric.bounds != tuple(bounds):
            raise ObservabilityError(
                f"histogram {name!r} already exists with bounds {metric.bounds}"
            )
        return metric

    def inc(self, name: str, n: int = 1) -> None:
        """Convenience: increment the counter called *name* by *n*."""
        self.counter(name).inc(n)

    def value(self, name: str) -> int:
        """Current value of counter *name* (0 if it was never touched)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if not isinstance(metric, Counter):
            raise ObservabilityError(f"{name!r} is a histogram, not a counter")
        return metric.value

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        for name in self.names():
            yield self._metrics[name]

    # -- merging / serialisation -------------------------------------------

    def merge(self, other: MetricsRegistry) -> MetricsRegistry:
        """Fold *other* into this registry (sums counters/histograms).

        Merging is commutative and associative, so per-worker registries
        combine to the same result regardless of completion order.
        """
        for name in other.names():
            theirs = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                if isinstance(theirs, Counter):
                    self.counter(name).merge(theirs)
                else:
                    self.histogram(name, theirs.bounds).merge(theirs)
            elif isinstance(mine, Counter) and isinstance(theirs, Counter):
                mine.merge(theirs)
            elif isinstance(mine, Histogram) and isinstance(theirs, Histogram):
                mine.merge(theirs)
            else:
                raise ObservabilityError(
                    f"cannot merge {name!r}: metric kinds differ"
                )
        return self

    def diff(self, other: MetricsRegistry) -> dict[str, tuple[Any, Any]]:
        """Metric names whose values differ, as ``{name: (mine, theirs)}``.

        A metric present on one side only compares against ``None``.
        Used by the robustness suite to assert that a fault-injected
        sweep's registry differs from a clean sweep's only in the
        ``sweep.*`` / ``checkpoint.*`` / ``faults.*`` counters.
        """
        mine, theirs = self.as_dict(), other.as_dict()
        return {
            name: (mine.get(name), theirs.get(name))
            for name in sorted(set(mine) | set(theirs))
            if mine.get(name) != theirs.get(name)
        }

    def as_dict(self) -> dict[str, Any]:
        """Deterministic plain-data snapshot (sorted names, ints only)."""
        return {name: self._metrics[name].as_value() for name in self.names()}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> MetricsRegistry:
        """Rebuild a registry from an :meth:`as_dict` snapshot."""
        registry = cls()
        for name, value in data.items():
            if isinstance(value, int):
                registry.counter(name).inc(value)
            elif isinstance(value, dict) and value.get("type") == "histogram":
                hist = registry.histogram(name, tuple(value["bounds"]))
                hist.counts = list(value["counts"])
                hist.count = value["count"]
                hist.total = value["total"]
                hist.min = value["min"]
                hist.max = value["max"]
            else:
                raise ObservabilityError(
                    f"cannot rebuild metric {name!r} from {value!r}"
                )
        return registry

    @staticmethod
    def merged(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
        """Merge many registries into a fresh one."""
        out = MetricsRegistry()
        for registry in registries:
            out.merge(registry)
        return out

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"
