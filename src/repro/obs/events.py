"""Typed cycle-level events and the pluggable sinks that receive them.

The engine narrates a run as a stream of small frozen dataclasses, each
stamped with the issue-slot time ``t`` at which it happened:

* :class:`FetchStall`   — fetch lost ``slots`` issue slots to ``cause``
  (one of :data:`STALL_CAUSES`, the ISPI components);
* :class:`MissService`  — a line fill request occupied the channel from
  ``start`` to ``done`` (right- or wrong-path);
* :class:`Redirect`     — a misfetch/mispredict redirect with its blame
  category and penalty;
* :class:`PrefetchIssue`— a next-line or target prefetch left for memory;
* :class:`FillInstall`  — a background fill left the fill station and was
  written into the I-cache.

Sinks implement the tiny :class:`EventSink` protocol.  The
:class:`NullSink` advertises ``enabled = False``, which the engine uses
to skip event *construction* entirely — the null-sink path costs one
pointer test per already-rare stall site, keeping the instrumented engine
within noise of the uninstrumented one.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from typing import IO, Iterator, Protocol, runtime_checkable

#: Stall causes, mirroring the ISPI components of
#: :data:`repro.core.results.COMPONENTS`.
STALL_CAUSES = (
    "branch_full",
    "branch",
    "rt_icache",
    "wrong_icache",
    "bus",
    "force_resolve",
)


@dataclass(frozen=True, slots=True)
class FetchStall:
    """Fetch lost *slots* issue slots at time *t*, charged to *cause*."""

    t: int
    cause: str
    slots: int
    line: int = -1  # cache line involved, -1 when not line-related


@dataclass(frozen=True, slots=True)
class MissService:
    """A demand line fill occupied the memory channel."""

    t: int
    line: int
    path: str  # "right" | "wrong"
    start: int
    done: int


@dataclass(frozen=True, slots=True)
class Redirect:
    """A control transfer was mishandled and fetch was redirected."""

    t: int
    pc: int
    outcome: str  # "misfetch" | "mispredict"
    cause: str  # "btb_misfetch" | "pht_mispredict" | "btb_mispredict"
    penalty_slots: int


@dataclass(frozen=True, slots=True)
class PrefetchIssue:
    """A prefetch request left for memory."""

    t: int
    line: int
    kind: str  # "next_line" | "target"
    done: int


@dataclass(frozen=True, slots=True)
class FillInstall:
    """A background fill was drained from the station into the cache."""

    t: int
    line: int
    origin: str  # FillOrigin value


#: Sweep-incident kinds emitted by the fault-tolerant runners.
INCIDENT_KINDS = (
    "retry",
    "timeout",
    "skip",
    "checkpoint_hit",
    "cache_store_failure",
    "fault_injected",
)


@dataclass(frozen=True, slots=True)
class SweepIncident:
    """The fault-tolerance layer acted on a sweep cell/batch.

    Sweep-level rather than cycle-level: ``t`` is always 0 (incidents
    happen between simulations, not inside them).  ``kind`` is one of
    :data:`INCIDENT_KINDS`; ``attempt`` counts the failed attempts so far
    for retry/timeout/skip incidents.
    """

    t: int
    benchmark: str
    kind: str
    detail: str = ""
    attempt: int = 0


@dataclass(frozen=True, slots=True)
class StreamBuild:
    """A prediction stream was produced for one benchmark.

    Sweep-level (``t`` is always 0): streams are built or loaded between
    simulations.  ``source`` is ``"build"`` (computed by running the live
    predictor) or ``"cache"`` (loaded from the artifact cache);
    ``records`` counts the recorded control transfers.
    """

    t: int
    benchmark: str
    records: int
    source: str = "build"
    digest: str = ""


@dataclass(frozen=True, slots=True)
class PolicySwitch:
    """The engine changed fetch policy at an interval boundary.

    Emitted by the per-interval policy schedules (``t`` is the issue-slot
    time of the boundary, ``interval`` the index of the interval that now
    begins under ``policy``).
    """

    t: int
    interval: int
    previous: str  # FetchPolicy value
    policy: str  # FetchPolicy value


@dataclass(frozen=True, slots=True)
class EngineFallback:
    """An explicit ``engine_backend="vector"`` request ran the event loop.

    Sweep-level (``t`` is always 0): backend selection happens before the
    simulation starts.  ``requested`` is the cell's ``engine_backend``
    knob; ``reason`` is one of the keys of
    :data:`repro.core.engine.FALLBACK_COUNTERS` (``missing_stream``,
    ``ineligible_config``, ``event_sink``).
    """

    t: int
    benchmark: str
    requested: str
    reason: str


#: Service-incident kinds emitted by the sweep service (:mod:`repro.service`).
SERVICE_INCIDENT_KINDS = (
    "request",
    "reject",
    "dedup",
    "retry",
    "timeout",
    "failure",
    "recovered",
    "response_fault",
)


@dataclass(frozen=True, slots=True)
class ServiceIncident:
    """The sweep service acted on a request or an in-flight cell.

    Service-level rather than cycle-level: ``t`` is always 0.  ``kind``
    is one of :data:`SERVICE_INCIDENT_KINDS`; ``client`` names the
    requesting tenant (``"__recovery__"`` for journal replays),
    ``benchmark`` the affected cell for cell-scoped kinds, and
    ``attempt`` counts failed attempts for retry/timeout incidents.
    """

    t: int
    client: str
    kind: str
    benchmark: str = ""
    detail: str = ""
    attempt: int = 0


Event = (
    FetchStall | MissService | Redirect | PrefetchIssue | FillInstall
    | SweepIncident | StreamBuild | PolicySwitch | EngineFallback
    | ServiceIncident
)

#: Event classes by their serialised ``type`` name.
EVENT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        FetchStall, MissService, Redirect, PrefetchIssue, FillInstall,
        SweepIncident, StreamBuild, PolicySwitch, EngineFallback,
        ServiceIncident,
    )
}


def event_to_dict(event: Event) -> dict[str, object]:
    """Serialise one event to a plain dict with a ``type`` discriminator."""
    payload: dict[str, object] = {"type": type(event).__name__}
    payload.update(asdict(event))
    return payload


def event_from_dict(data: dict[str, object]) -> Event:
    """Rebuild an event from :func:`event_to_dict` output."""
    data = dict(data)
    cls = EVENT_TYPES[str(data.pop("type"))]
    return cls(**data)


@runtime_checkable
class EventSink(Protocol):
    """Anything that can receive the engine's typed event stream."""

    #: When False, producers skip event construction entirely.
    enabled: bool
    #: Events emitted so far (kept even by bounded sinks).
    emitted: int

    def emit(self, event: Event) -> None: ...

    def close(self) -> None: ...


class NullSink:
    """Discards everything; the zero-overhead default."""

    __slots__ = ("emitted",)
    enabled = False

    def __init__(self) -> None:
        self.emitted = 0

    def emit(self, event: Event) -> None:  # pragma: no cover - never called
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keeps the most recent *capacity* events in memory."""

    enabled = True

    __slots__ = ("capacity", "emitted", "_buffer")

    def __init__(self, capacity: int = 65536) -> None:
        from repro.errors import ObservabilityError

        if capacity < 1:
            raise ObservabilityError(f"ring capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.emitted = 0
        self._buffer: deque[Event] = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self.emitted += 1
        self._buffer.append(event)

    def events(self) -> list[Event]:
        """The retained events, oldest first."""
        return list(self._buffer)

    def of_type(self, event_type: type) -> list[Event]:
        """Retained events of one class, oldest first."""
        return [e for e in self._buffer if isinstance(e, event_type)]

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound."""
        return self.emitted - len(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._buffer)

    def close(self) -> None:
        pass


class JsonlSink:
    """Streams every event as one JSON object per line."""

    enabled = True

    __slots__ = ("emitted", "_handle", "_owns_handle")

    def __init__(self, path_or_handle: str | IO[str]) -> None:
        if isinstance(path_or_handle, str):
            self._handle: IO[str] = open(path_or_handle, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = path_or_handle
            self._owns_handle = False
        self.emitted = 0

    def emit(self, event: Event) -> None:
        self._handle.write(json.dumps(event_to_dict(event), separators=(",", ":")))
        self._handle.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> JsonlSink:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl_events(path: str) -> list[Event]:
    """Load a JSONL event file back into typed events."""
    events: list[Event] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events
