"""Lightweight phase profiling for the simulation runners.

A :class:`PhaseProfiler` accumulates per-phase wall-clock time, call
counts, and (when an observer is supplied) the number of events emitted
during the phase.  The runners wrap their natural phases — workload
construction, trace generation, simulation — so a sweep ends with a
summary like::

    {"build_program":  {"calls": 2, "seconds": 0.41, "events": 0},
     "generate_trace": {"calls": 2, "seconds": 0.38, "events": 0},
     "simulate":       {"calls": 10, "seconds": 4.20, "events": 81234}}

Wall-clock numbers are inherently nondeterministic, so profiles live
*outside* the :class:`~repro.obs.metrics.MetricsRegistry` and never
participate in determinism or golden comparisons.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer


class PhaseProfiler:
    """Accumulates wall-clock and event-count totals per named phase."""

    __slots__ = ("_phases",)

    def __init__(self) -> None:
        # name -> [calls, seconds, events]
        self._phases: dict[str, list[float]] = {}

    @contextmanager
    def phase(
        self, name: str, observer: Observer | None = None
    ) -> Iterator[None]:
        """Measure one entry into phase *name* (re-entrant, additive)."""
        events_before = observer.events_emitted if observer is not None else 0
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            events = (
                observer.events_emitted - events_before
                if observer is not None
                else 0
            )
            self.record(name, elapsed, events=events)

    def record(
        self, name: str, seconds: float, events: int = 0, calls: int = 1
    ) -> None:
        """Fold one measurement (or a merged summary entry) into *name*."""
        stat = self._phases.get(name)
        if stat is None:
            self._phases[name] = [calls, seconds, events]
        else:
            stat[0] += calls
            stat[1] += seconds
            stat[2] += events

    def merge_summary(self, summary: dict[str, dict[str, float]]) -> None:
        """Fold a :meth:`summary` dict (e.g. from a worker) into this one."""
        for name, stat in summary.items():
            self.record(
                name,
                float(stat.get("seconds", 0.0)),
                events=int(stat.get("events", 0)),
                calls=int(stat.get("calls", 1)),
            )

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-phase totals, sorted by phase name (JSON-ready)."""
        return {
            name: {
                "calls": int(stat[0]),
                "seconds": stat[1],
                "events": int(stat[2]),
            }
            for name, stat in sorted(self._phases.items())
        }

    def total_seconds(self) -> float:
        return sum(stat[1] for stat in self._phases.values())

    def __repr__(self) -> str:
        return f"PhaseProfiler({len(self._phases)} phases)"
