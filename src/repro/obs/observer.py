"""The observer: the bundle the engine is instrumented against.

An :class:`Observer` ties together the three observability facilities:

* a :class:`~repro.obs.metrics.MetricsRegistry` that the engine and every
  hardware model publish named counters/histograms into;
* an :class:`~repro.obs.events.EventSink` receiving the typed cycle-level
  event stream (``NullSink`` by default — metrics without events);
* optionally a :class:`~repro.obs.profile.PhaseProfiler` the runners wrap
  their phases with.

Passing ``observer=None`` (the default everywhere) disables the layer
completely; the engine then takes its original fast path.
"""

from __future__ import annotations

from repro.obs.events import EventSink, NullSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler


class Observer:
    """Bundle of metrics registry + event sink + optional profiler."""

    __slots__ = ("registry", "sink", "profiler")

    def __init__(
        self,
        sink: EventSink | None = None,
        registry: MetricsRegistry | None = None,
        profiler: PhaseProfiler | None = None,
    ) -> None:
        self.sink: EventSink = sink if sink is not None else NullSink()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.profiler = profiler

    @property
    def events_enabled(self) -> bool:
        """True when the sink actually wants events."""
        return self.sink.enabled

    @property
    def events_emitted(self) -> int:
        """Events emitted through the sink so far."""
        return self.sink.emitted

    def metrics_dict(self) -> dict[str, object]:
        """Deterministic snapshot of the metrics registry."""
        return self.registry.as_dict()

    def close(self) -> None:
        """Flush/close the sink (file sinks need this)."""
        self.sink.close()

    def __enter__(self) -> Observer:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Observer(sink={type(self.sink).__name__}, "
            f"metrics={len(self.registry)}, "
            f"profiler={'on' if self.profiler is not None else 'off'})"
        )
