"""Seed-replication analysis and the robustness experiment."""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.config import FetchPolicy, SimConfig
from repro.core.engine import simulate
from repro.core.results import SimulationResult
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.program.workloads import build_workload
from repro.report.format import Table
from repro.trace.generator import generate_trace


@dataclass(frozen=True, slots=True)
class Summary:
    """Summary statistics of one metric across replications."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def ci95_half_width(self) -> float:
        """Normal-approximation 95% confidence half-width of the mean."""
        if self.n < 2:
            return float("nan")
        return 1.96 * self.std / math.sqrt(self.n)

    def format(self) -> str:
        """Render as ``mean ± half-width [min, max]``."""
        return (
            f"{self.mean:.3f} ± {self.ci95_half_width:.3f} "
            f"[{self.minimum:.3f}, {self.maximum:.3f}]"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Compute :class:`Summary` statistics (sample standard deviation)."""
    items = list(values)
    if not items:
        raise ExperimentError("cannot summarise an empty sample")
    n = len(items)
    mean = sum(items) / n
    if n > 1:
        variance = sum((x - mean) ** 2 for x in items) / (n - 1)
    else:
        variance = 0.0
    return Summary(
        n=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(items),
        maximum=max(items),
    )


def replicate(
    benchmark: str,
    config: SimConfig,
    seeds: Sequence[int],
    trace_length: int = 100_000,
    warmup: int = 25_000,
    vary_structure: bool = False,
) -> list[SimulationResult]:
    """Run *benchmark* under *config* once per seed.

    Each replication regenerates the dynamic trace with a fresh seed;
    with ``vary_structure`` the program's structural randomisation (code
    layout, per-site parameters) is re-drawn too — a stronger test.
    """
    if not seeds:
        raise ExperimentError("replicate needs at least one seed")
    results = []
    base_program = None if vary_structure else build_workload(benchmark)
    for seed in seeds:
        program = (
            build_workload(benchmark, seed=seed)
            if vary_structure
            else base_program
        )
        trace = generate_trace(program, trace_length, seed=seed)
        results.append(simulate(program, trace, config, warmup=warmup))
    return results


@dataclass(frozen=True, slots=True)
class ClaimCheck:
    """One headline claim checked across replications."""

    claim: str
    holds: int
    total: int

    @property
    def fraction(self) -> float:
        return self.holds / self.total if self.total else 0.0


#: The headline claims checked by the robustness experiment: name ->
#: (config A, config B, predicate on (ispi_A, ispi_B)).
def _default_claims() -> dict[str, tuple[SimConfig, SimConfig, Callable]]:
    from dataclasses import replace

    small = SimConfig()
    long = replace(SimConfig(), miss_penalty_cycles=20)
    return {
        "Resume <= Optimistic @5cyc": (
            small.with_policy(FetchPolicy.RESUME),
            small.with_policy(FetchPolicy.OPTIMISTIC),
            lambda a, b: a <= b * 1.001,
        ),
        "Optimistic < Pessimistic @5cyc": (
            small.with_policy(FetchPolicy.OPTIMISTIC),
            small.with_policy(FetchPolicy.PESSIMISTIC),
            lambda a, b: a < b,
        ),
        "Resume within 15% of Oracle @5cyc": (
            small.with_policy(FetchPolicy.RESUME),
            small.with_policy(FetchPolicy.ORACLE),
            lambda a, b: a <= 1.15 * b,
        ),
        "Pessimistic < Optimistic @20cyc": (
            long.with_policy(FetchPolicy.PESSIMISTIC),
            long.with_policy(FetchPolicy.OPTIMISTIC),
            lambda a, b: a < b,
        ),
    }


def run_robustness(
    runner=None,
    benchmarks: Sequence[str] = ("doduc", "gcc", "groff"),
    seeds: Sequence[int] = (11, 23, 37, 51, 69),
    trace_length: int | None = None,
    warmup: int | None = None,
) -> ExperimentResult:
    """Check the paper's headline claims across independent trace seeds.

    ``runner`` is accepted for registry compatibility; only its trace
    length/warmup are reused (each replication needs its own trace).
    """
    if trace_length is None:
        trace_length = runner.trace_length if runner is not None else 100_000
    if warmup is None:
        warmup = runner.warmup if runner is not None else trace_length // 4
    claims = _default_claims()
    summary_table = Table(
        headers=["Benchmark", "Policy@5cyc", "ISPI mean±95%ci", "min", "max"],
        title=f"Robustness: ISPI across {len(seeds)} trace seeds",
        float_format="{:.3f}",
    )
    claim_table = Table(
        headers=["Claim", "holds", "of"],
        title="Headline claims across (benchmark x seed) replications",
    )
    data: dict[str, object] = {"seeds": list(seeds)}
    # Cache per (benchmark, config) replication lists.
    cache: dict[tuple[str, SimConfig], list[SimulationResult]] = {}

    def results_for(name: str, config: SimConfig) -> list[SimulationResult]:
        key = (name, config)
        if key not in cache:
            cache[key] = replicate(
                name, config, seeds,
                trace_length=trace_length, warmup=warmup,
            )
        return cache[key]

    summaries: dict[str, dict[str, Summary]] = {}
    for name in benchmarks:
        summaries[name] = {}
        for policy in (FetchPolicy.ORACLE, FetchPolicy.RESUME,
                       FetchPolicy.PESSIMISTIC):
            results = results_for(name, SimConfig().with_policy(policy))
            summary = summarize([r.total_ispi for r in results])
            summaries[name][policy.value] = summary
            summary_table.add_row(
                name, policy.label, summary.format().split(" [")[0],
                summary.minimum, summary.maximum,
            )
    checks: list[ClaimCheck] = []
    for claim, (config_a, config_b, predicate) in claims.items():
        holds = 0
        total = 0
        for name in benchmarks:
            for ra, rb in zip(
                results_for(name, config_a), results_for(name, config_b)
            ):
                total += 1
                if predicate(ra.total_ispi, rb.total_ispi):
                    holds += 1
        checks.append(ClaimCheck(claim=claim, holds=holds, total=total))
        claim_table.add_row(claim, holds, total)
    data["claims"] = {c.claim: (c.holds, c.total) for c in checks}
    data["summaries"] = {
        name: {p: s.mean for p, s in by_policy.items()}
        for name, by_policy in summaries.items()
    }
    return ExperimentResult(
        experiment_id="robustness",
        title="Seed robustness of the headline claims",
        paper_ref="methodological (beyond the paper)",
        tables=[summary_table, claim_table],
        data=data,
        notes=(
            "Every claim is evaluated per (benchmark, seed) pair on "
            "matched traces; a claim that holds on most pairs is a "
            "property of the workload model, not of one lucky trace."
        ),
    )
