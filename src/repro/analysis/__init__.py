"""Statistical analysis of simulation results.

Synthetic workloads are stochastic, so every headline comparison should be
shown to be a property of the workload *model*, not of one random trace.
This package provides seed replication (:func:`replicate`), summary
statistics (:func:`summarize`), and the ``robustness`` experiment that
re-checks the paper's headline claims across independent seeds.
"""

from repro.analysis.robustness import (
    ClaimCheck,
    Summary,
    replicate,
    run_robustness,
    summarize,
)

__all__ = [
    "ClaimCheck",
    "Summary",
    "replicate",
    "run_robustness",
    "summarize",
]
