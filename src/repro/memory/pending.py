"""In-flight line fills: the resume buffer and prefetch buffer.

The paper's Resume policy needs "a buffer that can hold the missing cache
line when it is returned from memory as well as the index where it needs to
be stored" — a single-entry fill buffer that lets the front end keep
running while a wrong-path fill completes in the background.  Next-line
prefetching reuses the same mechanism for prefetched lines.

:class:`PendingFillStation` models that buffer.  The paper's machine has
exactly one entry (``capacity=1``, the default everywhere); the paper's
§6 names non-blocking I-caches with multiple outstanding requests as
future work, so the station generalises to ``capacity=N`` for the
``extension_nonblocking`` experiment.  Fills are installed into the cache
lazily once their completion time has passed.  Demand fills that the
processor blocks on never enter the station (the engine installs them
directly).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cache.icache import InstructionCache, LineOrigin
from repro.errors import ConfigError, SimulationError
from repro.obs.events import FillInstall


class FillOrigin(enum.Enum):
    """What initiated an in-flight background fill."""

    WRONG_PATH = "wrong_path"
    PREFETCH = "prefetch"


@dataclass(frozen=True, slots=True)
class PendingFill:
    """One in-flight background line fill."""

    line: int
    done_at: int
    origin: FillOrigin


class PendingFillStation:
    """Background-fill buffer (resume buffer + prefetch buffer).

    Holds at most ``capacity`` in-flight fills (1 = the paper's design).
    When *sink* is given, every install drained into the cache emits a
    :class:`repro.obs.events.FillInstall` event.
    """

    __slots__ = ("capacity", "_pending", "installed", "overwritten",
                 "overwritten_prefetch", "sink")

    def __init__(self, capacity: int = 1, sink=None) -> None:
        if capacity < 1:
            raise ConfigError(f"fill station needs capacity >= 1, got {capacity}")
        self.capacity = capacity
        self._pending: list[PendingFill] = []
        self.installed = 0
        self.overwritten = 0
        self.overwritten_prefetch = 0
        self.sink = sink

    @property
    def pending(self) -> PendingFill | None:
        """The oldest in-flight fill, if any (capacity-1 convenience)."""
        return self._pending[0] if self._pending else None

    @property
    def occupancy(self) -> int:
        """Number of fills currently buffered (completed or in flight)."""
        return len(self._pending)

    def busy(self, now: int) -> bool:
        """True if no buffer slot could accept a new fill at slot *now*.

        Completed-but-undrained fills do not block a slot (the caller is
        expected to :meth:`drain` first, which the engine does before
        every interaction).
        """
        in_flight = sum(1 for p in self._pending if p.done_at > now)
        return in_flight >= self.capacity

    def matches(self, line: int) -> bool:
        """True if *line* is currently buffered.

        This is the paper's "the index of the missing line and the index
        in the resume buffer should be checked in case they are the same
        to avoid an unnecessary memory request".
        """
        return any(p.line == line for p in self._pending)

    def done_at(self, line: int) -> int | None:
        """Completion slot of the buffered fill for *line* (None if absent)."""
        for p in self._pending:
            if p.line == line:
                return p.done_at
        return None

    def lookup(self, line: int) -> PendingFill | None:
        """The buffered fill for *line*, if any (completion time + origin)."""
        for p in self._pending:
            if p.line == line:
                return p
        return None

    def pending_prefetches(self) -> int:
        """Buffered fills of prefetch origin (used for end-of-run accounting)."""
        return sum(1 for p in self._pending if p.origin is FillOrigin.PREFETCH)

    def start(self, line: int, done_at: int, origin: FillOrigin) -> None:
        """Begin a background fill (the bus must already be reserved)."""
        if len(self._pending) >= self.capacity:
            raise SimulationError(
                "pending-fill station full; drain or check busy() first"
            )
        self._pending.append(PendingFill(line=line, done_at=done_at, origin=origin))

    def drain(self, now: int, cache: InstructionCache) -> list[PendingFill]:
        """Install every completed pending fill into *cache*.

        The paper writes the buffered line into the cache "at the next
        I-cache miss, without interference with the normal operation of
        the cache"; draining lazily before every cache interaction is
        equivalent.  Returns the fills installed.
        """
        if not self._pending:
            return []
        done = [p for p in self._pending if p.done_at <= now]
        if not done:
            return []
        # Slice-assign so the list object is stable: the engine's fast
        # path holds a reference to it as its cheap "anything in flight?"
        # emptiness probe.
        self._pending[:] = [p for p in self._pending if p.done_at > now]
        sink = self.sink
        for fill in done:
            origin = (
                LineOrigin.PREFETCH
                if fill.origin is FillOrigin.PREFETCH
                else LineOrigin.DEMAND_WRONG
            )
            cache.fill(fill.line, origin)
            self.installed += 1
            if sink is not None:
                sink.emit(
                    FillInstall(
                        t=fill.done_at, line=fill.line, origin=fill.origin.value
                    )
                )
        return done

    def discard(self, line: int | None = None) -> None:
        """Drop pending fill(s) without installing them.

        With *line* given, drops only that fill; otherwise drops all.
        Used when a demand fill overwrites the buffered frame before the
        background fill was consumed.
        """
        if line is None:
            self.overwritten += len(self._pending)
            self.overwritten_prefetch += self.pending_prefetches()
            self._pending.clear()
            return
        before = len(self._pending)
        dropped = [p for p in self._pending if p.line == line]
        self._pending[:] = [p for p in self._pending if p.line != line]
        self.overwritten += before - len(self._pending)
        self.overwritten_prefetch += sum(
            1 for p in dropped if p.origin is FillOrigin.PREFETCH
        )

    def publish_metrics(self, registry, prefix: str = "station") -> None:
        """Publish fill-station statistics into a metrics registry."""
        registry.inc(f"{prefix}.installed", self.installed)
        registry.inc(f"{prefix}.overwritten", self.overwritten)
        registry.inc(f"{prefix}.overwritten_prefetch", self.overwritten_prefetch)

    def reset(self) -> None:
        """Clear the station and statistics."""
        self._pending.clear()
        self.installed = 0
        self.overwritten = 0
        self.overwritten_prefetch = 0
