"""Instruction prefetching (§3 and §2.2 of the paper).

The paper's own prefetcher is **next-line, maximal fetchahead, first time
referenced** ("tagged" in Smith's terminology): when a line is loaded its
first-reference bit is set; the first subsequent fetch from it clears the
bit and prefetches the next sequential line, provided that line is absent
and the channel is free.  Prefetched lines install with their bit set, so
a sequential stream keeps prefetching ahead of itself.

Three further §2.2 variants are provided for ablation:

* ``always``  — every fetched line triggers a next-line attempt
  (Smith 82's unconditional prefetch);
* ``on-miss`` — only demand fills trigger the next-line attempt
  (Smith 82's prefetch-on-miss);
* ``fetchahead`` — the Smith & Hsu 92 trigger: prefetch line *i+1* when
  fetch comes within ``fetchahead_distance`` instructions of the end of
  line *i* (re-arming on every traversal, not just the first).

And, from the Smith & Hsu / Pierce & Mudge lineage, **target prefetching**
(:meth:`prefetch_target`): the engine may request a prefetch of the cache
line holding the *other* arm of a conditional branch — the path the
prediction did not follow.

All prefetches ride the background fill station, as the paper intends
("handled as in Resume").
"""

from __future__ import annotations

from collections.abc import Callable

from repro.cache.icache import InstructionCache
from repro.errors import ConfigError
from repro.memory.bus import MemoryBus
from repro.memory.pending import FillOrigin, PendingFillStation
from repro.obs.events import PrefetchIssue

#: Valid next-line trigger variants.
VARIANTS = ("tagged", "always", "on-miss", "fetchahead")

#: Fill-time provider: a fixed slot count, or a per-line callable (used
#: when a second-level cache makes latencies line-dependent).
FillDuration = int | Callable[[int], int]


def _as_duration_fn(duration: FillDuration) -> Callable[[int], int]:
    if callable(duration):
        return duration
    return lambda line: duration


class NextLinePrefetcher:
    """Trigger and issue logic for sequential and target prefetching."""

    __slots__ = (
        "cache",
        "bus",
        "station",
        "fill_duration",
        "variant",
        "next_line_enabled",
        "issued",
        "target_issued",
        "suppressed",
        "sink",
    )

    def __init__(
        self,
        cache: InstructionCache,
        bus: MemoryBus,
        station: PendingFillStation,
        penalty_slots: FillDuration,
        variant: str = "tagged",
        next_line_enabled: bool = True,
        sink=None,
    ) -> None:
        if variant not in VARIANTS:
            raise ConfigError(
                f"unknown prefetch variant {variant!r}; expected one of {VARIANTS}"
            )
        self.cache = cache
        self.bus = bus
        self.station = station
        self.fill_duration = _as_duration_fn(penalty_slots)
        self.variant = variant
        self.next_line_enabled = next_line_enabled
        self.issued = 0
        self.target_issued = 0
        self.suppressed = 0
        self.sink = sink

    # -- shared issue path -----------------------------------------------------

    def _try_issue(self, candidate: int, now: int, kind: str = "next_line") -> bool:
        """Issue a prefetch of *candidate* if resources allow."""
        self.station.drain(now, self.cache)
        if self.cache.contains(candidate) or self.station.matches(candidate):
            return False
        if self.station.busy(now) or not self.bus.is_free(now):
            # The paper's prefetcher only fires when the channel is free.
            self.suppressed += 1
            return False
        _, done = self.bus.request(now, self.fill_duration(candidate))
        self.station.start(candidate, done, FillOrigin.PREFETCH)
        if self.sink is not None:
            self.sink.emit(
                PrefetchIssue(t=now, line=candidate, kind=kind, done=done)
            )
        return True

    # -- next-line triggers ------------------------------------------------------

    def on_line_fetch(self, line: int, now: int) -> None:
        """Hook called by the engine on every fetch that hits *line*."""
        if not self.next_line_enabled:
            return
        if self.variant == "tagged":
            if not self.cache.test_and_clear_first_ref(line):
                return
        elif self.variant in ("on-miss", "fetchahead"):
            return  # these variants use the dedicated hooks below
        if self._try_issue(line + 1, now):
            self.issued += 1

    def on_demand_fill(self, line: int, now: int) -> None:
        """Hook called by the engine right after a demand fill completes."""
        if not self.next_line_enabled or self.variant != "on-miss":
            return
        if self._try_issue(line + 1, now):
            self.issued += 1

    def on_line_end_near(self, line: int, now: int) -> None:
        """Hook: fetch is within the fetchahead distance of *line*'s end."""
        if not self.next_line_enabled or self.variant != "fetchahead":
            return
        if self._try_issue(line + 1, now):
            self.issued += 1

    # -- target prefetching --------------------------------------------------------

    def prefetch_target(self, line: int, now: int) -> None:
        """Prefetch the line holding a branch's not-followed arm."""
        if self._try_issue(line, now, kind="target"):
            self.target_issued += 1

    def publish_metrics(self, registry, prefix: str = "prefetch") -> None:
        """Publish prefetch trigger/issue counters into a registry."""
        registry.inc(f"{prefix}.issued", self.issued)
        registry.inc(f"{prefix}.target_issued", self.target_issued)
        registry.inc(f"{prefix}.suppressed", self.suppressed)

    def reset(self) -> None:
        """Clear statistics (cache/bus/station are reset by their owners)."""
        self.issued = 0
        self.target_issued = 0
        self.suppressed = 0
