"""Stream buffers (Jouppi 90), the §2.2 alternative to next-line prefetch.

A stream buffer is a small FIFO that, once allocated at a missing line,
keeps prefetching the *successive* lines into its entries.  On a cache
miss the heads of all stream buffers are checked: a head hit supplies the
line (immediately if the prefetch has completed, else after the remaining
flight time), the FIFO shifts, and the freed entry prefetches the next
sequential line.  A miss in both the cache and every buffer head
reallocates the least-recently-used buffer to a new stream.

The paper cites Jouppi's result that a four-entry stream buffer removes
~85% (actually 72%+, 85% for his configuration) of the misses of a small
I-cache; the ``extension_streambuffer`` experiment measures the same
quantity on our workloads.

Prefetches contend for the same memory channel as demand fills; the
engine pumps the unit whenever time advances, and the unit only issues
when the bus is free (like the paper's next-line prefetcher).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.memory.bus import MemoryBus


@dataclass(slots=True)
class _Entry:
    line: int
    done_at: int


class _Stream:
    """One FIFO stream."""

    __slots__ = ("depth", "entries", "next_line", "last_used")

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.entries: deque[_Entry] = deque()
        #: Next sequential line this stream wants to prefetch; None = idle.
        self.next_line: int | None = None
        self.last_used = -1

    @property
    def active(self) -> bool:
        return self.next_line is not None or bool(self.entries)

    def wants_prefetch(self) -> bool:
        return self.next_line is not None and len(self.entries) < self.depth

    def reset_to(self, start_line: int, now: int) -> None:
        self.entries.clear()
        self.next_line = start_line
        self.last_used = now

    def head_match(self, line: int) -> _Entry | None:
        if self.entries and self.entries[0].line == line:
            return self.entries[0]
        return None


class StreamBufferUnit:
    """A bank of stream buffers sharing the memory channel."""

    def __init__(
        self,
        bus: MemoryBus,
        n_buffers: int = 4,
        depth: int = 4,
        penalty_slots: int | object = 20,
    ) -> None:
        from repro.memory.prefetcher import _as_duration_fn

        if n_buffers < 1:
            raise ConfigError(f"need >= 1 stream buffer, got {n_buffers}")
        if depth < 1:
            raise ConfigError(f"stream depth must be >= 1, got {depth}")
        self.bus = bus
        self.depth = depth
        self.fill_duration = _as_duration_fn(penalty_slots)
        self._streams = [_Stream(depth) for _ in range(n_buffers)]
        # Statistics.
        self.allocations = 0
        self.prefetches = 0
        self.head_hits = 0
        self.head_hits_inflight = 0

    # -- prefetch issue -----------------------------------------------------------

    def pump(self, now: int) -> None:
        """Issue at most one pending stream prefetch if the bus is free.

        Called by the engine whenever simulated time advances; issuing a
        single request per pump matches the one-port channel.
        """
        if not self.bus.is_free(now):
            return
        # Most-recently-used stream first: the stream the demand misses
        # are currently walking must keep ahead of them; stale streams
        # only fill their FIFOs when the live one is satisfied.
        candidates = [s for s in self._streams if s.wants_prefetch()]
        if not candidates:
            return
        stream = max(candidates, key=lambda s: s.last_used)
        _, done = self.bus.request(now, self.fill_duration(stream.next_line))
        stream.entries.append(_Entry(stream.next_line, done))
        stream.next_line += 1
        self.prefetches += 1

    # -- miss servicing -----------------------------------------------------------

    def probe(self, line: int, now: int) -> int | None:
        """Check every buffer head for *line* on a cache miss.

        On a head hit, consumes the entry and returns the slot at which
        the line is available (``now`` if the prefetch completed, else its
        completion time).  Returns ``None`` on a miss in all buffers.
        """
        for stream in self._streams:
            entry = stream.head_match(line)
            if entry is None:
                continue
            stream.entries.popleft()
            stream.last_used = now
            self.head_hits += 1
            if entry.done_at > now:
                self.head_hits_inflight += 1
            return max(now, entry.done_at)
        return None

    def allocate(self, miss_line: int, now: int) -> None:
        """Start a new stream at ``miss_line + 1`` (called on a full miss)."""
        stream = min(self._streams, key=lambda s: s.last_used)
        stream.reset_to(miss_line + 1, now)
        self.allocations += 1

    def reset(self) -> None:
        """Clear all streams and statistics."""
        for stream in self._streams:
            stream.entries.clear()
            stream.next_line = None
            stream.last_used = -1
        self.allocations = 0
        self.prefetches = 0
        self.head_hits = 0
        self.head_hits_inflight = 0

    def reset_stats(self) -> None:
        """Clear statistics only (keeps stream contents; warmup boundary)."""
        self.allocations = 0
        self.prefetches = 0
        self.head_hits = 0
        self.head_hits_inflight = 0
