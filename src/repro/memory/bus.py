"""The channel between the I-cache and the next memory level.

The paper models a single blocking channel: one outstanding line request
at a time (demand fill or prefetch), each occupying the channel for the
full miss penalty.  That is the default (``interleave_slots=None``).

The paper's §6 names "pipelining miss requests" as future work: with
``interleave_slots=k`` a new request may *start* every ``k`` slots while
each still takes the full latency to complete — a simple pipelined memory
interface used by the ``extension_nonblocking`` experiment.

The engine charges stall slots to different ISPI components depending on
*why* fetch had to wait, so the bus itself only tracks occupancy and
traffic counts.
"""

from __future__ import annotations

from repro.errors import ConfigError, SimulationError


class MemoryBus:
    """Line-request channel; time is measured in issue slots."""

    __slots__ = ("interleave_slots", "busy_until", "requests", "busy_wait_slots")

    def __init__(self, interleave_slots: int | None = None) -> None:
        if interleave_slots is not None and interleave_slots < 1:
            raise ConfigError(
                f"bus interleave must be >= 1 slot, got {interleave_slots}"
            )
        #: Pipelining: slots between request *starts* (None = serial, the
        #: next request starts only when the previous one completes).
        self.interleave_slots = interleave_slots
        #: Earliest slot at which a new request may start.
        self.busy_until = 0
        self.requests = 0
        self.busy_wait_slots = 0

    def free_at(self) -> int:
        """Earliest slot at which a new request may start."""
        return self.busy_until

    def is_free(self, now: int) -> bool:
        """True if a request could start at slot *now*."""
        return self.busy_until <= now

    def request(self, now: int, duration_slots: int) -> tuple[int, int]:
        """Issue a line request at or after *now*.

        Returns ``(start, done)``: the request begins once the channel can
        accept it and the data arrives ``duration_slots`` later.  On a
        serial bus the channel is held until ``done``; on a pipelined bus
        it can accept the next request ``interleave_slots`` after
        ``start``.  The caller decides how to charge any ``start - now``
        wait.
        """
        if duration_slots < 0:
            raise SimulationError(f"negative bus occupancy {duration_slots}")
        start = self.busy_until if self.busy_until > now else now
        done = start + duration_slots
        if self.interleave_slots is None:
            self.busy_until = done
        else:
            self.busy_until = start + self.interleave_slots
        self.requests += 1
        self.busy_wait_slots += start - now
        return start, done

    def publish_metrics(self, registry, prefix: str = "bus") -> None:
        """Publish channel traffic/occupancy counters into a registry."""
        registry.inc(f"{prefix}.requests", self.requests)
        registry.inc(f"{prefix}.busy_wait_slots", self.busy_wait_slots)

    def reset(self) -> None:
        """Clear occupancy and statistics."""
        self.busy_until = 0
        self.requests = 0
        self.busy_wait_slots = 0
