"""Memory-channel substrate: bus, fill station, next-line prefetcher.

Models the interface between the blocking I-cache and the next level of the
hierarchy exactly as in the paper: a single outstanding line request, a
one-entry resume/prefetch fill buffer, and the "maximal fetchahead, first
time referenced" next-line prefetcher.
"""

from repro.memory.bus import MemoryBus
from repro.memory.pending import FillOrigin, PendingFill, PendingFillStation
from repro.memory.prefetcher import NextLinePrefetcher
from repro.memory.streambuffer import StreamBufferUnit

__all__ = [
    "FillOrigin",
    "MemoryBus",
    "NextLinePrefetcher",
    "PendingFill",
    "PendingFillStation",
    "StreamBufferUnit",
]
