"""Flat, decodable code image.

The :class:`CodeImage` is the static view of a program that the front-end
simulator needs: given *any* instruction address — in particular one on a
wrong (mispredicted or misfetched) path — it decodes the instruction there
in O(1) and can tell how far the straight-line run extends before the next
control transfer.

Internally the image is a struct-of-arrays (numpy) so the wrong-path walker
does no per-instruction Python object allocation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import DecodeError, ProgramError
from repro.isa import INSTRUCTION_SIZE, Instruction, InstrKind

_NO_TARGET = -1
_NO_BEHAVIOUR = -1


class CodeImage:
    """Contiguous code region decodable at any instruction address."""

    def __init__(
        self,
        base: int,
        kinds: np.ndarray,
        targets: np.ndarray,
        behaviours: np.ndarray,
    ) -> None:
        if base < 0 or base % INSTRUCTION_SIZE:
            raise ProgramError(f"bad image base address {base:#x}")
        n = len(kinds)
        if n == 0:
            raise ProgramError("empty code image")
        if len(targets) != n or len(behaviours) != n:
            raise ProgramError("image arrays must have equal length")
        self.base = base
        self._kinds = np.ascontiguousarray(kinds, dtype=np.int8)
        self._targets = np.ascontiguousarray(targets, dtype=np.int64)
        self._behaviours = np.ascontiguousarray(behaviours, dtype=np.int32)
        self._next_ctrl = self._compute_next_control(self._kinds)
        # Plain-python mirrors: scalar indexing into lists is measurably
        # faster than numpy scalar indexing in the simulator's hot loops.
        self.kinds_list: list[int] = self._kinds.tolist()
        self.targets_list: list[int] = self._targets.tolist()
        self.behaviours_list: list[int] = self._behaviours.tolist()
        self.next_ctrl_list: list[int] = self._next_ctrl.tolist()

    @staticmethod
    def _compute_next_control(kinds: np.ndarray) -> np.ndarray:
        """For each index, the index of the next control instruction >= it.

        Indices past the last control instruction get ``n`` (one past the
        end), meaning "straight line to the end of the image".
        """
        n = len(kinds)
        next_ctrl = np.empty(n, dtype=np.int64)
        nxt = n
        is_ctrl = kinds != int(InstrKind.PLAIN)
        for i in range(n - 1, -1, -1):
            if is_ctrl[i]:
                nxt = i
            next_ctrl[i] = nxt
        return next_ctrl

    # -- construction -----------------------------------------------------

    @classmethod
    def from_instructions(cls, instructions: Iterable[Instruction]) -> CodeImage:
        """Build an image from a contiguous, address-ordered listing."""
        listing = list(instructions)
        if not listing:
            raise ProgramError("cannot build an image from no instructions")
        base = listing[0].address
        n = len(listing)
        kinds = np.empty(n, dtype=np.int8)
        targets = np.full(n, _NO_TARGET, dtype=np.int64)
        behaviours = np.full(n, _NO_BEHAVIOUR, dtype=np.int32)
        for i, instr in enumerate(listing):
            expected = base + i * INSTRUCTION_SIZE
            if instr.address != expected:
                raise ProgramError(
                    f"non-contiguous listing: expected {expected:#x}, "
                    f"got {instr.address:#x}"
                )
            kinds[i] = int(instr.kind)
            if instr.target is not None:
                targets[i] = instr.target
            if instr.behaviour is not None:
                behaviours[i] = instr.behaviour
        return cls(base, kinds, targets, behaviours)

    # -- geometry ----------------------------------------------------------

    @property
    def n_instructions(self) -> int:
        """Number of instructions in the image."""
        return len(self.kinds_list)

    @property
    def size_bytes(self) -> int:
        """Image size in bytes."""
        return self.n_instructions * INSTRUCTION_SIZE

    @property
    def end(self) -> int:
        """One past the last byte of the image."""
        return self.base + self.size_bytes

    def contains(self, address: int) -> bool:
        """True if *address* is a valid instruction address in the image."""
        return (
            self.base <= address < self.end
            and (address - self.base) % INSTRUCTION_SIZE == 0
        )

    def index_of(self, address: int) -> int:
        """Instruction index for *address*; raises :class:`DecodeError`."""
        if not self.contains(address):
            raise DecodeError(f"address {address:#x} not in image")
        return (address - self.base) // INSTRUCTION_SIZE

    def address_of(self, index: int) -> int:
        """Address of the instruction at *index*."""
        if not 0 <= index < self.n_instructions:
            raise DecodeError(f"instruction index {index} out of range")
        return self.base + index * INSTRUCTION_SIZE

    # -- decoding ----------------------------------------------------------

    def decode(self, address: int) -> Instruction:
        """Decode the instruction at *address* into an object (slow path)."""
        idx = self.index_of(address)
        kind = InstrKind(self.kinds_list[idx])
        target = self.targets_list[idx]
        behaviour = self.behaviours_list[idx]
        return Instruction(
            address=address,
            kind=kind,
            target=None if target == _NO_TARGET else target,
            behaviour=None if behaviour == _NO_BEHAVIOUR else behaviour,
        )

    def run_length(self, address: int) -> int:
        """Instructions from *address* up to and including the next control
        transfer (or to the end of the image if no control follows)."""
        idx = self.index_of(address)
        nxt = self.next_ctrl_list[idx]
        if nxt >= self.n_instructions:
            return self.n_instructions - idx
        return nxt - idx + 1

    def iter_instructions(self) -> Iterator[Instruction]:
        """Yield every instruction in address order (diagnostic use)."""
        for idx in range(self.n_instructions):
            yield self.decode(self.address_of(idx))

    def __repr__(self) -> str:
        return (
            f"CodeImage(base={self.base:#x}, "
            f"n_instructions={self.n_instructions})"
        )
