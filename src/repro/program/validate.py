"""Deep static validation of synthetic programs.

The structural checks in :mod:`repro.program.cfg` are local (labels
resolve, blocks non-empty).  This module adds whole-program analyses over
the call graph and per-function control-flow graphs (built with
networkx):

* **call-graph acyclicity** — the trace generator requires a DAG call
  graph (recursion would run its call stack away; it guards with a depth
  limit at run time, but a static check fails fast and names the cycle);
* **function reachability** — tier functions that can never execute are
  calibration bugs (their footprint counts, their dynamics don't);
* **block reachability** — dead blocks inside a function distort the
  size budgeting of the synthesiser.

`validate_deep` runs everything and returns a report; the workload test
suite asserts every shipped benchmark passes clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ProgramError
from repro.isa import InstrKind
from repro.program.cfg import ControlFlowGraph, Function
from repro.program.program import Program


def build_call_graph(cfg: ControlFlowGraph) -> "nx.DiGraph":
    """Directed call graph: function -> callee (direct and indirect)."""
    graph = nx.DiGraph()
    graph.add_nodes_from(cfg.functions)
    for name, function in cfg.functions.items():
        for block in function.blocks:
            term = block.terminator
            if term is None:
                continue
            if term.callee is not None:
                graph.add_edge(name, term.callee)
            for callee in term.indirect_callees:
                graph.add_edge(name, callee)
    return graph


def find_call_cycles(cfg: ControlFlowGraph) -> list[list[str]]:
    """All elementary cycles in the call graph (empty = DAG)."""
    return [list(cycle) for cycle in nx.simple_cycles(build_call_graph(cfg))]


def unreachable_functions(cfg: ControlFlowGraph) -> set[str]:
    """Functions not reachable from the entry via the call graph."""
    graph = build_call_graph(cfg)
    reachable = nx.descendants(graph, cfg.entry) | {cfg.entry}
    return set(cfg.functions) - reachable


def build_block_graph(function: Function) -> "nx.DiGraph":
    """Intra-function CFG: block -> successor blocks.

    Fall-through edges go to the next declared block; conditional edges go
    to both the target and the fall-through; calls fall through to the
    next block (the callee returns there); returns have no successor.
    """
    graph = nx.DiGraph()
    labels = [block.label for block in function.blocks]
    graph.add_nodes_from(labels)
    for index, block in enumerate(function.blocks):
        term = block.terminator
        nxt = labels[index + 1] if index + 1 < len(labels) else None
        if term is None:
            graph.add_edge(block.label, nxt)
            continue
        kind = term.kind
        if kind is InstrKind.COND_BRANCH:
            graph.add_edge(block.label, term.target_label)
            graph.add_edge(block.label, nxt)
        elif kind is InstrKind.JUMP:
            graph.add_edge(block.label, term.target_label)
        elif kind in (InstrKind.CALL, InstrKind.INDIRECT_CALL):
            graph.add_edge(block.label, nxt)
        # RETURN: no intra-function successor.
    return graph


def unreachable_blocks(function: Function) -> set[str]:
    """Blocks not reachable from the function's entry block."""
    if not function.blocks:
        return set()
    graph = build_block_graph(function)
    entry = function.blocks[0].label
    reachable = nx.descendants(graph, entry) | {entry}
    return {block.label for block in function.blocks} - reachable


@dataclass(slots=True)
class ValidationReport:
    """Outcome of :func:`validate_deep`."""

    call_cycles: list[list[str]] = field(default_factory=list)
    unreachable_functions: set[str] = field(default_factory=set)
    unreachable_blocks: dict[str, set[str]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True if no issue was found."""
        return (
            not self.call_cycles
            and not self.unreachable_functions
            and not self.unreachable_blocks
        )

    def describe(self) -> str:
        """Human-readable issue summary."""
        if self.clean:
            return "no issues"
        lines = []
        for cycle in self.call_cycles:
            lines.append(f"call cycle: {' -> '.join(cycle + cycle[:1])}")
        if self.unreachable_functions:
            lines.append(
                "unreachable functions: "
                + ", ".join(sorted(self.unreachable_functions))
            )
        for name, blocks in sorted(self.unreachable_blocks.items()):
            lines.append(
                f"unreachable blocks in {name}: " + ", ".join(sorted(blocks))
            )
        return "\n".join(lines)


def validate_deep(program: Program) -> ValidationReport:
    """Run all whole-program analyses on *program*.

    Requires the program to carry its CFG (anything built through
    :class:`~repro.program.builder.ProgramBuilder` does).
    """
    if program.cfg is None:
        raise ProgramError(
            f"program {program.name!r} carries no CFG; deep validation "
            "needs builder-made programs"
        )
    cfg = program.cfg
    report = ValidationReport(
        call_cycles=find_call_cycles(cfg),
        unreachable_functions=unreachable_functions(cfg),
    )
    for name, function in cfg.functions.items():
        dead = unreachable_blocks(function)
        if dead:
            report.unreachable_blocks[name] = dead
    return report


def assert_valid_deep(program: Program) -> None:
    """Raise :class:`ProgramError` if any deep-validation issue exists."""
    report = validate_deep(program)
    if not report.clean:
        raise ProgramError(
            f"program {program.name!r} failed deep validation:\n"
            + report.describe()
        )
