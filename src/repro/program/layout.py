"""Lowering a symbolic CFG to a concrete code image.

Functions are placed in their CFG insertion order, each aligned to a cache
line (as real linkers do — alignment matters to an I-cache study).  Blocks
within a function are placed back-to-back in their listed order, so a block
with no terminator falls through to the next block at the next address.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProgramError
from repro.isa import INSTRUCTION_SIZE, Instruction, InstrKind, align_up
from repro.program.cfg import ControlFlowGraph

#: Default base address for program text (matches typical Unix layouts).
DEFAULT_TEXT_BASE = 0x0001_0000

#: Default function alignment (one 32-byte I-cache line).
DEFAULT_FUNCTION_ALIGN = 32


@dataclass(frozen=True, slots=True)
class Layout:
    """Result of laying out a CFG.

    Attributes:
        instructions: the flat, address-ordered listing (contiguous; gaps
            introduced by alignment are padded with PLAIN instructions,
            just as linkers pad with nops).
        function_entries: function name -> entry address.
        block_addresses: (function name, block label) -> block start address.
        indirect_targets: address of each INDIRECT_CALL instruction ->
            tuple of candidate callee entry addresses.
    """

    instructions: tuple[Instruction, ...]
    function_entries: dict[str, int]
    block_addresses: dict[tuple[str, str], int]
    indirect_targets: dict[int, tuple[int, ...]]


def layout_cfg(
    cfg: ControlFlowGraph,
    base: int = DEFAULT_TEXT_BASE,
    function_align: int = DEFAULT_FUNCTION_ALIGN,
) -> Layout:
    """Assign addresses to every block and materialise instructions."""
    cfg.validate()
    if base % INSTRUCTION_SIZE:
        raise ProgramError(f"text base {base:#x} is not instruction-aligned")

    # Pass 1: assign addresses.
    function_entries: dict[str, int] = {}
    block_addresses: dict[tuple[str, str], int] = {}
    cursor = align_up(base, function_align)
    pad_spans: list[tuple[int, int]] = []  # (start, n_pad_instructions)
    for name, function in cfg.functions.items():
        aligned = align_up(cursor, function_align)
        if aligned > cursor:
            pad_spans.append((cursor, (aligned - cursor) // INSTRUCTION_SIZE))
        cursor = aligned
        function_entries[name] = cursor
        for block in function.blocks:
            block_addresses[(name, block.label)] = cursor
            cursor += block.n_instructions * INSTRUCTION_SIZE

    # Pass 2: emit instructions with resolved targets.
    instructions: list[Instruction] = []
    indirect_targets: dict[int, tuple[int, ...]] = {}
    pad_iter = iter(pad_spans)
    next_pad = next(pad_iter, None)

    def emit_padding_before(address: int) -> None:
        nonlocal next_pad
        while next_pad is not None and next_pad[0] < address:
            pad_start, n_pad = next_pad
            for i in range(n_pad):
                instructions.append(
                    Instruction(pad_start + i * INSTRUCTION_SIZE, InstrKind.PLAIN)
                )
            next_pad = next(pad_iter, None)

    for name, function in cfg.functions.items():
        entry = function_entries[name]
        emit_padding_before(entry)
        addr = entry
        for block in function.blocks:
            expected = block_addresses[(name, block.label)]
            if addr != expected:
                raise ProgramError(
                    f"layout drift in {name!r}/{block.label!r}: "
                    f"{addr:#x} != {expected:#x}"
                )
            for _ in range(block.n_plain):
                instructions.append(Instruction(addr, InstrKind.PLAIN))
                addr += INSTRUCTION_SIZE
            term = block.terminator
            if term is None:
                continue
            if term.kind in (InstrKind.COND_BRANCH, InstrKind.JUMP):
                target = block_addresses[(name, term.target_label)]
                instructions.append(
                    Instruction(addr, term.kind, target=target, behaviour=term.behaviour)
                )
            elif term.kind is InstrKind.CALL:
                target = function_entries[term.callee]
                instructions.append(Instruction(addr, InstrKind.CALL, target=target))
            elif term.kind is InstrKind.RETURN:
                instructions.append(Instruction(addr, InstrKind.RETURN))
            elif term.kind is InstrKind.INDIRECT_CALL:
                instructions.append(
                    Instruction(addr, InstrKind.INDIRECT_CALL, behaviour=term.behaviour)
                )
                indirect_targets[addr] = tuple(
                    function_entries[callee] for callee in term.indirect_callees
                )
            else:  # pragma: no cover - Terminator validation forbids this
                raise ProgramError(f"unexpected terminator kind {term.kind}")
            addr += INSTRUCTION_SIZE

    return Layout(
        instructions=tuple(instructions),
        function_entries=function_entries,
        block_addresses=block_addresses,
        indirect_targets=indirect_targets,
    )
