"""Synthetic-program substrate.

Builds the workloads that stand in for the paper's ATOM-traced benchmarks:
symbolic CFGs (:mod:`~repro.program.cfg`) are laid out into a decodable
:class:`~repro.program.image.CodeImage`, packaged with dynamic behaviour
models into a :class:`~repro.program.program.Program`, and tuned per paper
benchmark in :mod:`~repro.program.workloads`.
"""

from repro.program.behaviour import (
    BiasedBehaviour,
    BranchBehaviour,
    CorrelatedBehaviour,
    IndirectBehaviour,
    LoopBehaviour,
    PatternBehaviour,
)
from repro.program.builder import FunctionBuilder, ProgramBuilder
from repro.program.cfg import BasicBlock, ControlFlowGraph, Function, Terminator
from repro.program.image import CodeImage
from repro.program.layout import Layout, layout_cfg
from repro.program.program import Program
from repro.program.reorder import function_heat, reorder_program
from repro.program.synth import TierSpec, WorkloadSpec, synthesize
from repro.program.validate import (
    ValidationReport,
    assert_valid_deep,
    validate_deep,
)
from repro.program.workloads import (
    FIGURE_BENCHMARKS,
    LANGUAGE,
    PAPER_REFERENCE,
    SUITE,
    WORKLOAD_SPECS,
    build_workload,
    get_spec,
)

__all__ = [
    "BasicBlock",
    "BiasedBehaviour",
    "BranchBehaviour",
    "CodeImage",
    "ControlFlowGraph",
    "CorrelatedBehaviour",
    "FIGURE_BENCHMARKS",
    "Function",
    "FunctionBuilder",
    "IndirectBehaviour",
    "LANGUAGE",
    "Layout",
    "LoopBehaviour",
    "PAPER_REFERENCE",
    "PatternBehaviour",
    "Program",
    "ProgramBuilder",
    "SUITE",
    "Terminator",
    "TierSpec",
    "WORKLOAD_SPECS",
    "WorkloadSpec",
    "build_workload",
    "get_spec",
    "layout_cfg",
    "synthesize",
]
