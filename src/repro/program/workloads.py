"""The paper's 13-benchmark suite, as tuned synthetic workload specs.

Each spec targets the characteristics its original reports in the paper's
Tables 2 and 3: the dynamic branch percentage, the 8K/32K direct-mapped
miss-rate band, the language family's branch-predictability profile, and
the BTB pressure (misfetch rate).  The tier sizes follow the derivation in
DESIGN.md: with a per-iteration dynamic cost ``I`` and warm/cold dynamic
fractions ``fw``/``fc``, the expected miss rates of a streaming tier are
``m8 ~ (fw + fc) / ipl`` and ``m32 ~ fc / ipl`` (ipl = 8 instructions per
32-byte line), so ``fw = ipl * (m8 - m32)`` and ``fc = ipl * m32``.

Calibration (measured vs. paper targets) is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.program.program import Program
from repro.program.synth import TierSpec, WorkloadSpec, synthesize

#: Paper Table 2/3 reference numbers (for reports and calibration):
#: instructions (millions), % branches, 8K and 32K miss rates (percent).
PAPER_REFERENCE: dict[str, dict[str, float]] = {
    "doduc": {"inst_m": 1150, "pct_branches": 8.5, "miss_8k": 2.94, "miss_32k": 0.48},
    "fpppp": {"inst_m": 4330, "pct_branches": 2.8, "miss_8k": 7.27, "miss_32k": 1.08},
    "su2cor": {"inst_m": 4780, "pct_branches": 4.4, "miss_8k": 1.33, "miss_32k": 0.00},
    "ditroff": {"inst_m": 39, "pct_branches": 17.5, "miss_8k": 3.18, "miss_32k": 0.58},
    "gcc": {"inst_m": 144, "pct_branches": 16.0, "miss_8k": 4.48, "miss_32k": 1.71},
    "li": {"inst_m": 1360, "pct_branches": 17.7, "miss_8k": 3.33, "miss_32k": 0.06},
    "tex": {"inst_m": 148, "pct_branches": 10.0, "miss_8k": 2.85, "miss_32k": 1.00},
    "cfront": {"inst_m": 16.5, "pct_branches": 13.4, "miss_8k": 7.24, "miss_32k": 2.63},
    "db++": {"inst_m": 87, "pct_branches": 17.6, "miss_8k": 1.57, "miss_32k": 0.42},
    "groff": {"inst_m": 57, "pct_branches": 17.5, "miss_8k": 5.33, "miss_32k": 1.68},
    "idl": {"inst_m": 21.1, "pct_branches": 19.6, "miss_8k": 2.17, "miss_32k": 0.67},
    "lic": {"inst_m": 6, "pct_branches": 16.5, "miss_8k": 3.93, "miss_32k": 1.68},
    "porky": {"inst_m": 164, "pct_branches": 19.8, "miss_8k": 2.51, "miss_32k": 0.66},
}

WORKLOAD_SPECS: dict[str, WorkloadSpec] = {
    # ----------------------------------------------------------- Fortran --
    "doduc": WorkloadSpec(
        name="doduc",
        language="fortran",
        description="Monte Carlo thermohydraulics kernel: loop nests, "
        "moderately sized numeric routines revisited every sweep.",
        avg_block=7,
        block_jitter=2,
        flat_block_scale=2.6,
        hot=TierSpec(3, 340),
        warm=TierSpec(12, 490, period=1),
        cold=TierSpec(14, 490, period=11),
        leaf_funcs=3,
        leaf_instrs=48,
        loop_trips=40,
        loop_jitter=0,
        bias=0.96,
        bias_jitter=0.03,
        pattern_frac=0.05,
        correlated_frac=0.0,
        call_density=0.03,
        hard_frac=0.04,
        far_frac=0.50,
        far_taken=0.08,
        structure_seed=101,
    ),
    "fpppp": WorkloadSpec(
        name="fpppp",
        language="fortran",
        description="Quantum-chemistry integrals: enormous basic blocks, "
        "very few branches, streaming code footprint.",
        avg_block=24,
        block_jitter=6,
        flat_block_scale=1.4,
        hot=TierSpec(1, 600),
        warm=TierSpec(8, 530, period=1),
        cold=TierSpec(10, 740, period=14),
        leaf_funcs=2,
        leaf_instrs=80,
        loop_trips=8,
        loop_jitter=0,
        bias=0.96,
        bias_jitter=0.02,
        pattern_frac=0.05,
        correlated_frac=0.0,
        call_density=0.02,
        hard_frac=0.02,
        far_frac=0.80,
        far_taken=0.08,
        structure_seed=102,
    ),
    "su2cor": WorkloadSpec(
        name="su2cor",
        language="fortran",
        description="Quark-gluon lattice physics: long loops over a "
        "footprint that fits a 32K cache.",
        avg_block=18,
        block_jitter=4,
        flat_block_scale=2.0,
        hot=TierSpec(2, 400),
        warm=TierSpec(10, 570, period=2),
        cold=TierSpec(0, 0),
        leaf_funcs=2,
        leaf_instrs=60,
        loop_trips=50,
        loop_jitter=0,
        bias=0.96,
        bias_jitter=0.02,
        pattern_frac=0.05,
        correlated_frac=0.0,
        call_density=0.02,
        hard_frac=0.02,
        far_frac=0.70,
        far_taken=0.08,
        structure_seed=103,
    ),
    # ----------------------------------------------------------------- C --
    "ditroff": WorkloadSpec(
        name="ditroff",
        language="c",
        description="Text formatter: branchy scanning code over a "
        "medium footprint.",
        avg_block=3,
        block_jitter=1,
        hot=TierSpec(2, 240),
        warm=TierSpec(12, 410, period=4),
        cold=TierSpec(9, 450, period=24),
        leaf_funcs=5,
        leaf_instrs=36,
        loop_trips=19,
        loop_jitter=2,
        bias=0.95,
        bias_jitter=0.03,
        pattern_frac=0.05,
        correlated_frac=0.03,
        call_density=0.10,
        hard_frac=0.18,
        far_frac=0.25,
        far_taken=0.10,
        flat_block_scale=1.6,
        structure_seed=104,
    ),
    "gcc": WorkloadSpec(
        name="gcc",
        language="c",
        description="Compiler: large instruction working set, branchy, "
        "hard-to-predict data-dependent control flow.",
        avg_block=3,
        block_jitter=1,
        hot=TierSpec(2, 260),
        warm=TierSpec(14, 415, period=4),
        cold=TierSpec(18, 450, period=10),
        leaf_funcs=6,
        leaf_instrs=36,
        loop_trips=22,
        loop_jitter=2,
        bias=0.96,
        bias_jitter=0.03,
        pattern_frac=0.05,
        correlated_frac=0.03,
        call_density=0.12,
        hard_frac=0.03,
        far_frac=0.25,
        far_taken=0.10,
        flat_block_scale=1.6,
        structure_seed=105,
    ),
    "li": WorkloadSpec(
        name="li",
        language="c",
        description="Lisp interpreter: small hot dispatch core, "
        "call-heavy, modest footprint.",
        avg_block=3,
        block_jitter=1,
        hot=TierSpec(2, 250),
        warm=TierSpec(14, 420, period=4),
        cold=TierSpec(2, 340, period=24),
        leaf_funcs=6,
        leaf_instrs=36,
        loop_trips=19,
        loop_jitter=2,
        bias=0.95,
        bias_jitter=0.03,
        pattern_frac=0.05,
        correlated_frac=0.03,
        call_density=0.15,
        hard_frac=0.12,
        far_frac=0.25,
        far_taken=0.10,
        flat_block_scale=1.6,
        structure_seed=106,
    ),
    "tex": WorkloadSpec(
        name="tex",
        language="c",
        description="TeX: moderate branch density, large-ish paging "
        "footprint revisited in phases.",
        avg_block=6,
        block_jitter=2,
        hot=TierSpec(2, 260),
        warm=TierSpec(11, 420, period=5),
        cold=TierSpec(15, 470, period=10),
        leaf_funcs=5,
        leaf_instrs=40,
        loop_trips=19,
        loop_jitter=2,
        bias=0.96,
        bias_jitter=0.02,
        pattern_frac=0.05,
        correlated_frac=0.02,
        call_density=0.08,
        hard_frac=0.02,
        far_frac=0.35,
        far_taken=0.10,
        flat_block_scale=1.8,
        structure_seed=107,
    ),
    # --------------------------------------------------------------- C++ --
    "cfront": WorkloadSpec(
        name="cfront",
        language="c++",
        description="C++-to-C translator: very large footprint, heavy "
        "dispatch, the worst I-cache behaviour of the suite.",
        avg_block=4,
        block_jitter=1,
        hot=TierSpec(2, 240),
        warm=TierSpec(12, 425, period=2),
        cold=TierSpec(19, 460, period=7),
        leaf_funcs=6,
        leaf_instrs=36,
        loop_trips=13,
        loop_jitter=1,
        bias=0.95,
        bias_jitter=0.03,
        pattern_frac=0.05,
        correlated_frac=0.03,
        call_density=0.12,
        virtual_sites=3,
        virtual_degree=3,
        virtual_repeat=0.5,
        hard_frac=0.04,
        far_frac=0.20,
        far_taken=0.10,
        flat_block_scale=1.4,
        structure_seed=108,
    ),
    "db++": WorkloadSpec(
        name="db++",
        language="c++",
        description="DeltaBlue constraint solver: small hot core with "
        "virtual dispatch, modest footprint.",
        avg_block=3,
        block_jitter=1,
        hot=TierSpec(2, 250),
        warm=TierSpec(11, 400, period=8),
        cold=TierSpec(11, 440, period=24),
        leaf_funcs=5,
        leaf_instrs=36,
        loop_trips=22,
        loop_jitter=2,
        bias=0.96,
        bias_jitter=0.02,
        pattern_frac=0.05,
        correlated_frac=0.02,
        call_density=0.12,
        virtual_sites=2,
        virtual_degree=3,
        virtual_repeat=0.6,
        hard_frac=0.03,
        far_frac=0.35,
        far_taken=0.10,
        flat_block_scale=1.8,
        structure_seed=109,
    ),
    "groff": WorkloadSpec(
        name="groff",
        language="c++",
        description="groff formatter: large working set, frequent "
        "virtual dispatch, branchy.",
        avg_block=3,
        block_jitter=1,
        hot=TierSpec(2, 240),
        warm=TierSpec(13, 405, period=3),
        cold=TierSpec(18, 450, period=10),
        leaf_funcs=6,
        leaf_instrs=36,
        loop_trips=14,
        loop_jitter=2,
        bias=0.95,
        bias_jitter=0.03,
        pattern_frac=0.05,
        correlated_frac=0.03,
        call_density=0.13,
        virtual_sites=3,
        virtual_degree=3,
        virtual_repeat=0.4,
        hard_frac=0.04,
        far_frac=0.20,
        far_taken=0.10,
        flat_block_scale=1.4,
        structure_seed=110,
    ),
    "idl": WorkloadSpec(
        name="idl",
        language="c++",
        description="IDL backend: the branchiest of the suite, "
        "dispatch-dominated with a moderate footprint.",
        avg_block=3,
        block_jitter=1,
        hot=TierSpec(2, 230),
        warm=TierSpec(11, 410, period=7),
        cold=TierSpec(13, 440, period=20),
        leaf_funcs=6,
        leaf_instrs=32,
        loop_trips=13,
        loop_jitter=2,
        bias=0.97,
        bias_jitter=0.02,
        pattern_frac=0.05,
        correlated_frac=0.02,
        call_density=0.15,
        virtual_sites=3,
        virtual_degree=3,
        virtual_repeat=0.3,
        hard_frac=0.02,
        far_frac=0.60,
        far_taken=0.10,
        flat_block_scale=2.3,
        structure_seed=111,
    ),
    "lic": WorkloadSpec(
        name="lic",
        language="c++",
        description="SUIF linear-inequality calculator: large cold "
        "footprint relative to its short run.",
        avg_block=4,
        block_jitter=1,
        hot=TierSpec(2, 240),
        warm=TierSpec(13, 405, period=5),
        cold=TierSpec(17, 460, period=11),
        leaf_funcs=5,
        leaf_instrs=36,
        loop_trips=15,
        loop_jitter=2,
        bias=0.96,
        bias_jitter=0.03,
        pattern_frac=0.05,
        correlated_frac=0.03,
        call_density=0.10,
        virtual_sites=3,
        virtual_degree=3,
        virtual_repeat=0.5,
        hard_frac=0.02,
        far_frac=0.25,
        far_taken=0.10,
        flat_block_scale=1.6,
        structure_seed=112,
    ),
    "porky": WorkloadSpec(
        name="porky",
        language="c++",
        description="SUIF optimiser passes: very branchy IR walking "
        "with moderate footprint.",
        avg_block=3,
        block_jitter=1,
        hot=TierSpec(2, 240),
        warm=TierSpec(13, 390, period=6),
        cold=TierSpec(12, 460, period=18),
        leaf_funcs=6,
        leaf_instrs=32,
        loop_trips=16,
        loop_jitter=2,
        bias=0.96,
        bias_jitter=0.02,
        pattern_frac=0.05,
        correlated_frac=0.02,
        call_density=0.12,
        virtual_sites=2,
        virtual_degree=3,
        virtual_repeat=0.4,
        hard_frac=0.02,
        far_frac=0.35,
        far_taken=0.10,
        flat_block_scale=1.7,
        structure_seed=113,
    ),
}

#: All benchmark names in the paper's table order.
SUITE: tuple[str, ...] = tuple(WORKLOAD_SPECS)

#: The five benchmarks the paper's Figures 1-4 show in detail.
FIGURE_BENCHMARKS: tuple[str, ...] = ("doduc", "gcc", "li", "groff", "lic")

#: Language family per benchmark (for grouped averages, as in §5).
LANGUAGE: dict[str, str] = {
    name: spec.language for name, spec in WORKLOAD_SPECS.items()
}


def get_spec(name: str) -> WorkloadSpec:
    """The spec for benchmark *name*; raises for unknown names."""
    try:
        return WORKLOAD_SPECS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown benchmark {name!r}; expected one of {', '.join(SUITE)}"
        ) from None


def build_workload(name: str, seed: int | None = None) -> Program:
    """Synthesize the program for benchmark *name*.

    ``seed`` perturbs the structural randomisation (layout, per-site
    parameters) so sensitivity studies can regenerate variant programs;
    ``None`` uses the spec's canonical structure seed.
    """
    spec = get_spec(name)
    if seed is not None:
        from dataclasses import replace

        spec = replace(spec, structure_seed=spec.structure_seed * 1_000_003 + seed)
    return synthesize(spec)
