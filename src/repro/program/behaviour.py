"""Branch behaviour models.

The paper drives its simulator from ATOM traces of real programs, so branch
outcomes come for free.  Our synthetic substitute attaches a *behaviour
model* to every conditional branch (and every indirect-call site); the trace
generator asks the model for each dynamic outcome.

The models are chosen to span the behaviours that matter to the paper's
branch architecture (gshare PHT + BTB):

* :class:`LoopBehaviour` — classic backward loop branch: taken ``trips - 1``
  times, then not taken.  Highly predictable by 2-bit counters; dominates
  Fortran codes.
* :class:`BiasedBehaviour` — i.i.d. Bernoulli with a fixed taken
  probability.  Its predictability is exactly ``max(p, 1-p)``; models
  data-dependent C branches.
* :class:`PatternBehaviour` — a repeating outcome pattern.  Learnable by a
  global-history predictor but not by per-branch counters alone.
* :class:`CorrelatedBehaviour` — agrees (or anti-agrees) with the most
  recent global branch outcome with some probability; models the
  inter-branch correlation that motivates two-level predictors.
* :class:`IndirectBehaviour` — selects among several callees for an
  indirect call site, with a "stickiness" knob; models C++ virtual
  dispatch (monomorphic sites are BTB-friendly, polymorphic ones are not).

All models are stateful and must be :meth:`~BranchBehaviour.reset` before a
trace generation run so that repeated runs with the same seed reproduce the
same trace.
"""

from __future__ import annotations

import abc
import random

from repro.errors import ProgramError


class BranchBehaviour(abc.ABC):
    """Decides dynamic outcomes for one conditional-branch site."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Return the model to its initial state."""

    @abc.abstractmethod
    def next_outcome(self, rng: random.Random, global_history: int) -> bool:
        """Return the next dynamic outcome (True = taken).

        Args:
            rng: the trace generator's random stream.
            global_history: bitfield of recent global branch outcomes
                (bit 0 = most recent branch, 1 = taken).  Most models
                ignore it; :class:`CorrelatedBehaviour` uses it.
        """


class LoopBehaviour(BranchBehaviour):
    """Backward loop branch: taken until the trip count is exhausted.

    The trip count for each loop activation is drawn uniformly from
    ``[mean_trips - jitter, mean_trips + jitter]`` (clamped to >= 1), so
    loops with ``jitter == 0`` have a fixed, perfectly learnable trip count.
    """

    def __init__(self, mean_trips: int, jitter: int = 0) -> None:
        if mean_trips < 1:
            raise ProgramError(f"loop trip count must be >= 1, got {mean_trips}")
        if jitter < 0:
            raise ProgramError(f"loop jitter must be >= 0, got {jitter}")
        self.mean_trips = mean_trips
        self.jitter = jitter
        self._remaining = 0

    def reset(self) -> None:
        self._remaining = 0

    def _draw_trips(self, rng: random.Random) -> int:
        if self.jitter == 0:
            return self.mean_trips
        low = max(1, self.mean_trips - self.jitter)
        high = self.mean_trips + self.jitter
        return rng.randint(low, high)

    def next_outcome(self, rng: random.Random, global_history: int) -> bool:
        if self._remaining == 0:
            self._remaining = self._draw_trips(rng)
        self._remaining -= 1
        # Taken while iterations remain; the final evaluation falls through.
        return self._remaining > 0

    def __repr__(self) -> str:
        return f"LoopBehaviour(mean_trips={self.mean_trips}, jitter={self.jitter})"


class BiasedBehaviour(BranchBehaviour):
    """I.i.d. Bernoulli branch with a fixed taken probability."""

    def __init__(self, p_taken: float) -> None:
        if not 0.0 <= p_taken <= 1.0:
            raise ProgramError(f"p_taken must be in [0, 1], got {p_taken}")
        self.p_taken = p_taken

    def reset(self) -> None:
        pass

    def next_outcome(self, rng: random.Random, global_history: int) -> bool:
        return rng.random() < self.p_taken

    def __repr__(self) -> str:
        return f"BiasedBehaviour(p_taken={self.p_taken})"


class PatternBehaviour(BranchBehaviour):
    """Cyclic outcome pattern, e.g. ``(False, False, False, True)``."""

    def __init__(self, pattern: tuple[bool, ...], phase: int = 0) -> None:
        if not pattern:
            raise ProgramError("pattern must be non-empty")
        if not 0 <= phase < len(pattern):
            raise ProgramError(f"phase {phase} out of range for pattern {pattern}")
        self.pattern = tuple(bool(x) for x in pattern)
        self.phase = phase
        self._index = phase

    def reset(self) -> None:
        self._index = self.phase

    def next_outcome(self, rng: random.Random, global_history: int) -> bool:
        outcome = self.pattern[self._index]
        self._index = (self._index + 1) % len(self.pattern)
        return outcome

    def __repr__(self) -> str:
        return f"PatternBehaviour(pattern={self.pattern}, phase={self.phase})"


class CorrelatedBehaviour(BranchBehaviour):
    """Outcome correlated with the most recent global branch outcome.

    With probability ``p_agree`` the branch repeats the most recent global
    outcome (bit 0 of the history), otherwise it inverts it.  Values of
    ``p_agree`` near 1.0 (or 0.0) are learnable by a global-history
    predictor such as gshare, but look like a ~50% coin to a per-branch
    counter when the global stream itself is balanced.
    """

    def __init__(self, p_agree: float) -> None:
        if not 0.0 <= p_agree <= 1.0:
            raise ProgramError(f"p_agree must be in [0, 1], got {p_agree}")
        self.p_agree = p_agree

    def reset(self) -> None:
        pass

    def next_outcome(self, rng: random.Random, global_history: int) -> bool:
        last = bool(global_history & 1)
        agree = rng.random() < self.p_agree
        return last if agree else not last

    def __repr__(self) -> str:
        return f"CorrelatedBehaviour(p_agree={self.p_agree})"


class IndirectBehaviour(BranchBehaviour):
    """Target selector for an indirect-call site.

    ``next_target_index`` picks among ``n_targets`` candidate callees.
    With probability ``repeat_prob`` the previous target is reused
    (temporal locality of receiver types); otherwise a fresh target is
    drawn, either uniformly or weighted.

    The :class:`BranchBehaviour` interface is implemented for uniformity
    (``next_outcome`` returns True: indirect calls always transfer), but
    the trace generator calls :meth:`next_target_index`.
    """

    def __init__(
        self,
        n_targets: int,
        repeat_prob: float = 0.0,
        weights: tuple[float, ...] | None = None,
    ) -> None:
        if n_targets < 1:
            raise ProgramError(f"indirect site needs >= 1 target, got {n_targets}")
        if not 0.0 <= repeat_prob <= 1.0:
            raise ProgramError(f"repeat_prob must be in [0, 1], got {repeat_prob}")
        if weights is not None:
            if len(weights) != n_targets:
                raise ProgramError(
                    f"got {len(weights)} weights for {n_targets} targets"
                )
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ProgramError("weights must be non-negative with positive sum")
        self.n_targets = n_targets
        self.repeat_prob = repeat_prob
        self.weights = weights
        self._last: int | None = None

    def reset(self) -> None:
        self._last = None

    def next_outcome(self, rng: random.Random, global_history: int) -> bool:
        return True

    def next_target_index(self, rng: random.Random) -> int:
        """Pick the callee index for the next dynamic call."""
        if self._last is not None and rng.random() < self.repeat_prob:
            return self._last
        if self.weights is None:
            choice = rng.randrange(self.n_targets)
        else:
            choice = rng.choices(range(self.n_targets), weights=self.weights, k=1)[0]
        self._last = choice
        return choice

    def __repr__(self) -> str:
        return (
            f"IndirectBehaviour(n_targets={self.n_targets}, "
            f"repeat_prob={self.repeat_prob})"
        )
