"""Profile-driven code reordering (the paper's §6 future work).

The paper closes by asking whether "software techniques, like profile
driven basic-block reordering, will significantly improve the I-cache
performance".  This module implements the function-granularity version of
that transformation: profile a program from one of its own dynamic traces
(:func:`function_heat`), then re-lay the functions out hottest-first so
the resident working set occupies a compact, conflict-free region of the
direct-mapped cache (:func:`reorder_program`).

A ``cold-first`` strategy (pessimal: hot code scattered behind cold code)
and a seeded ``shuffle`` are provided as the comparison points used by the
``extension_reorder`` experiment.
"""

from __future__ import annotations

import bisect
import random
from collections import Counter

from repro.errors import ProgramError
from repro.program.cfg import ControlFlowGraph
from repro.program.image import CodeImage
from repro.program.layout import layout_cfg
from repro.program.program import Program
from repro.trace.event import Trace

#: Recognised orderings for :func:`reorder_program`.
STRATEGIES = ("hot-first", "cold-first", "shuffle", "original")


def function_heat(program: Program, trace: Trace) -> dict[str, int]:
    """Dynamic instruction count per function, from a profiling trace.

    Block starts are mapped to functions by address interval (functions
    are laid out contiguously, so the owning function is the one with the
    greatest entry address <= the block start).
    """
    if trace.program_name != program.name:
        raise ProgramError(
            f"trace is for {trace.program_name!r}, "
            f"program is {program.name!r}"
        )
    entries = sorted(
        (addr, name) for name, addr in program.function_entries.items()
    )
    addresses = [addr for addr, _ in entries]
    names = [name for _, name in entries]
    heat: Counter[str] = Counter()
    for record in trace.records:
        idx = bisect.bisect_right(addresses, record.start) - 1
        if idx < 0:
            raise ProgramError(
                f"block at {record.start:#x} precedes every function"
            )
        heat[names[idx]] += record.length
    # Functions never executed still appear (with zero heat).
    for name in program.function_entries:
        heat.setdefault(name, 0)
    return dict(heat)


def _ordered_names(
    program: Program,
    heat: dict[str, int],
    strategy: str,
    seed: int,
) -> list[str]:
    names = list(program.function_entries)
    if strategy == "original":
        return names
    if strategy == "shuffle":
        rng = random.Random(seed)
        shuffled = list(names)
        rng.shuffle(shuffled)
        return shuffled
    missing = [name for name in names if name not in heat]
    if missing:
        raise ProgramError(f"heat profile missing functions: {missing}")
    hot_first = sorted(names, key=lambda n: (-heat[n], n))
    if strategy == "hot-first":
        return hot_first
    return list(reversed(hot_first))  # cold-first


def reorder_program(
    program: Program,
    heat: dict[str, int] | None = None,
    strategy: str = "hot-first",
    seed: int = 0,
) -> Program:
    """Re-lay *program*'s functions according to *strategy*.

    Returns a new :class:`Program` with identical control flow and
    behaviour models but a different code layout.  ``heat`` is required
    for the profile-driven strategies (``hot-first`` / ``cold-first``)
    and ignored otherwise.
    """
    if strategy not in STRATEGIES:
        raise ProgramError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    if program.cfg is None:
        raise ProgramError(
            f"program {program.name!r} carries no CFG; only builder-made "
            "programs can be reordered"
        )
    if strategy in ("hot-first", "cold-first") and heat is None:
        raise ProgramError(f"strategy {strategy!r} needs a heat profile")
    order = _ordered_names(program, heat or {}, strategy, seed)
    reordered_cfg = ControlFlowGraph(
        functions={name: program.cfg.functions[name] for name in order},
        entry=program.cfg.entry,
    )
    laid_out = layout_cfg(reordered_cfg, base=program.image.base)
    image = CodeImage.from_instructions(laid_out.instructions)
    return Program(
        name=program.name,
        image=image,
        behaviours=program.behaviours,
        entry=laid_out.function_entries[program.cfg.entry],
        indirect_targets=dict(laid_out.indirect_targets),
        function_entries=dict(laid_out.function_entries),
        metadata={**program.metadata, "layout": strategy},
        cfg=reordered_cfg,
    )
